//! The simulated software reconfiguration path.
//!
//! One CATA software reconfiguration (Figure 2 of the paper) walks through:
//!
//! 1. the runtime's RSM critical section (decide who to accelerate —
//!    serialized by the RSM lock);
//! 2. the sysfs write and user→kernel switch;
//! 3. the cpufreq driver, which programs the DVFS controller and starts the
//!    hardware transition (the 25 µs rail ramp proceeds in hardware; see
//!    [`SoftwarePathParams::driver_waits_transition`] for the synchronous
//!    variant that holds the lock through it);
//! 4. kernel clock bookkeeping and return to user space.
//!
//! Steps 1–4 run on the *requesting* core (the task-start hook), and the
//! whole sequence is serialized across cores: concurrent updates could
//! transiently exceed the power budget. [`SoftwareDvfsPath`] models this as
//! a single FIFO resource with a deterministic service time, producing the
//! queueing delays that §V-C measures (ms-scale lock waits when barrier
//! bursts pile 32 requests onto the lock).

use cata_sim::stats::LatencySamples;
use cata_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Latency parameters of the software reconfiguration path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftwarePathParams {
    /// Runtime-side work under the RSM lock: scan core states, pick a
    /// victim, update the bookkeeping (user space).
    pub rsm_section: SimDuration,
    /// Formatting and writing the sysfs file + user→kernel transition.
    pub sysfs_write: SimDuration,
    /// cpufreq framework + driver execution before the hardware transition
    /// starts (kernel space, policy lock held).
    pub driver: SimDuration,
    /// Whether the driver synchronously waits for the hardware transition to
    /// finish before releasing the lock (true for acpi-cpufreq-style
    /// drivers; what the paper's measurements imply).
    pub driver_waits_transition: bool,
    /// Kernel bookkeeping after the transition (timekeeping, loops_per_jiffy)
    /// and return to user space.
    pub kernel_post: SimDuration,
}

impl SoftwarePathParams {
    /// Defaults calibrated against §V-C: the gem5 driver the paper built
    /// *starts* the DVFS transition and returns after the kernel updates its
    /// clock bookkeeping (Figure 2's sequence), so the serialized section is
    /// the user/kernel software work (≈6 µs per write), not the 25 µs rail
    /// ramp. An uncontended reconfiguration then costs ≈3 µs; queueing under
    /// bursty barriers produces the 11–65 µs *averages* and the
    /// multi-hundred-µs-to-ms maxima the paper measures. The RSM check that
    /// guards every task start/end holds the lock for 300 ns.
    pub fn paper_calibrated() -> Self {
        SoftwarePathParams {
            rsm_section: SimDuration::from_ns(300),
            sysfs_write: SimDuration::from_ns(1_500),
            driver: SimDuration::from_ns(1_000),
            driver_waits_transition: false,
            kernel_post: SimDuration::from_ns(500),
        }
    }

    /// A synchronous-driver variant (acpi-cpufreq style: the kernel waits
    /// for the rails inside the locked section). Used by the ablations to
    /// show how CATA degrades when the driver serializes transitions.
    pub fn synchronous_driver() -> Self {
        SoftwarePathParams {
            driver_waits_transition: true,
            ..Self::paper_calibrated()
        }
    }

    /// The service time one request holds the serialized path for, given the
    /// hardware transition latency.
    pub fn service_time(&self, hw_transition: SimDuration) -> SimDuration {
        let hw = if self.driver_waits_transition {
            hw_transition
        } else {
            SimDuration::ZERO
        };
        self.rsm_section + self.sysfs_write + self.driver + hw + self.kernel_post
    }
}

impl Default for SoftwarePathParams {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// The outcome of one software reconfiguration request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareGrant {
    /// When the requester acquired the serialized path (lock acquisition).
    pub acquired_at: SimTime,
    /// When each requested hardware transition may begin (the driver has
    /// programmed the DVFS controller for that write). One entry per
    /// operation; empty for a pure decision (lock + check, no reconfig).
    pub op_transition_starts: Vec<SimTime>,
    /// When the requesting core gets control back (syscall returns).
    pub returns_at: SimTime,
}

impl SoftwareGrant {
    /// Start of the first transition (back-compat convenience).
    pub fn transition_start(&self) -> SimTime {
        self.op_transition_starts
            .first()
            .copied()
            .unwrap_or(self.returns_at)
    }
}

impl SoftwareGrant {
    /// Time spent waiting for the serialized path.
    pub fn lock_wait(&self, requested_at: SimTime) -> SimDuration {
        self.acquired_at.since(requested_at)
    }

    /// Total latency observed by the requesting core.
    pub fn total_latency(&self, requested_at: SimTime) -> SimDuration {
        self.returns_at.since(requested_at)
    }
}

/// The serialized software DVFS path shared by all cores.
#[derive(Debug, Clone)]
pub struct SoftwareDvfsPath {
    params: SoftwarePathParams,
    hw_transition: SimDuration,
    busy_until: SimTime,
    /// Lock-wait distribution (paper §V-C: maxima of 4.8–15 ms).
    pub lock_waits: LatencySamples,
    /// End-to-end reconfiguration latency distribution (paper §V-C:
    /// averages of 11–65 µs).
    pub latencies: LatencySamples,
}

impl SoftwareDvfsPath {
    /// Creates the path model. `hw_transition` is the machine's DVFS
    /// transition latency (Table I: 25 µs).
    pub fn new(params: SoftwarePathParams, hw_transition: SimDuration) -> Self {
        SoftwareDvfsPath {
            params,
            hw_transition,
            busy_until: SimTime::ZERO,
            lock_waits: LatencySamples::new(),
            latencies: LatencySamples::new(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &SoftwarePathParams {
        &self.params
    }

    /// Issues a single-write reconfiguration request at `now` from one core.
    /// Requests are served FIFO; the caller blocks (stays busy in the
    /// runtime) until [`SoftwareGrant::returns_at`].
    pub fn request(&mut self, now: SimTime) -> SoftwareGrant {
        self.request_ops(now, 1)
    }

    /// Issues a request covering `n_ops` cpufreq writes under one RSM lock
    /// hold (a CATA displacement is two writes: decelerate the victim, then
    /// accelerate the requester). `n_ops == 0` models a pure decision — the
    /// RSM lock is still taken and still serializes, but no syscall happens.
    pub fn request_ops(&mut self, now: SimTime, n_ops: usize) -> SoftwareGrant {
        let acquired_at = now.max(self.busy_until);
        let per_op = self.params.sysfs_write
            + self.params.driver
            + if self.params.driver_waits_transition {
                self.hw_transition
            } else {
                SimDuration::ZERO
            }
            + self.params.kernel_post;

        let mut op_transition_starts = Vec::with_capacity(n_ops);
        let mut cursor = acquired_at + self.params.rsm_section;
        for _ in 0..n_ops {
            op_transition_starts.push(cursor + self.params.sysfs_write + self.params.driver);
            cursor += per_op;
        }
        let returns_at = cursor;
        self.busy_until = returns_at;

        let grant = SoftwareGrant {
            acquired_at,
            op_transition_starts,
            returns_at,
        };
        self.lock_waits.record(grant.lock_wait(now));
        if n_ops > 0 {
            self.latencies.record(grant.total_latency(now));
        }
        grant
    }

    /// The instant the path becomes free (diagnostics).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> SoftwareDvfsPath {
        SoftwareDvfsPath::new(
            SoftwarePathParams::paper_calibrated(),
            SimDuration::from_us(25),
        )
    }

    #[test]
    fn uncontended_request_costs_service_time() {
        let mut p = path();
        let g = p.request(SimTime::from_us(100));
        assert_eq!(g.acquired_at, SimTime::from_us(100));
        assert_eq!(g.lock_wait(SimTime::from_us(100)), SimDuration::ZERO);
        // 0.3 + 1.5 + 1 + 0.5 = 3.3 µs (transition ramps outside the lock).
        assert_eq!(
            g.total_latency(SimTime::from_us(100)),
            SimDuration::from_ns(3_300)
        );
        // Transition starts after the user+kernel prefix (0.3+1.5+1 = 2.8 µs).
        assert_eq!(g.transition_start(), SimTime::from_ns(102_800));
    }

    #[test]
    fn two_op_request_serializes_writes_under_one_lock_hold() {
        let mut p = path();
        let g = p.request_ops(SimTime::ZERO, 2);
        assert_eq!(g.op_transition_starts.len(), 2);
        // Op 0 transition: 0.3 (rsm) + 1.5 + 1 = 2.8 µs; op 1: 2.8 + 3 = 5.8 µs.
        assert_eq!(g.op_transition_starts[0], SimTime::from_ns(2_800));
        assert_eq!(g.op_transition_starts[1], SimTime::from_ns(5_800));
        // Return: 0.3 + 2×3 = 6.3 µs.
        assert_eq!(g.returns_at, SimTime::from_ns(6_300));
    }

    #[test]
    fn zero_op_request_takes_only_the_lock() {
        let mut p = path();
        let g = p.request_ops(SimTime::ZERO, 0);
        assert_eq!(g.returns_at, SimTime::from_ns(300)); // rsm section only
        assert!(g.op_transition_starts.is_empty());
        assert_eq!(g.transition_start(), g.returns_at);
        // Pure decisions do not count as reconfiguration latencies…
        assert_eq!(p.latencies.count(), 0);
        // …but they do contend on the lock.
        assert_eq!(p.lock_waits.count(), 1);
    }

    #[test]
    fn concurrent_requests_serialize_fifo() {
        let mut p = path();
        let t = SimTime::from_ms(1);
        let g1 = p.request(t);
        let g2 = p.request(t);
        let g3 = p.request(t);
        assert_eq!(g2.acquired_at, g1.returns_at);
        assert_eq!(g3.acquired_at, g2.returns_at);
        // Third request waited two service times: 6.6 µs.
        assert_eq!(g3.lock_wait(t), SimDuration::from_ns(6_600));
    }

    #[test]
    fn burst_of_32_reaches_millisecond_waits() {
        // The paper's barrier bursts: all cores reconfigure at once.
        let mut p = path();
        let t = SimTime::ZERO;
        let mut worst = SimDuration::ZERO;
        for _ in 0..32 {
            let g = p.request(t);
            worst = worst.max(g.lock_wait(t));
        }
        // 31 × 3.3 µs = 102.3 µs of queueing for the last request; repeated
        // overlapping bursts are what drive the paper's ms-scale maxima.
        assert_eq!(worst, SimDuration::from_ns(102_300));
        assert!(p.lock_waits.max().as_us() >= 100);
    }

    #[test]
    fn path_drains_between_bursts() {
        let mut p = path();
        let g1 = p.request(SimTime::ZERO);
        let later = g1.returns_at + SimDuration::from_us(10);
        let g2 = p.request(later);
        assert_eq!(g2.lock_wait(later), SimDuration::ZERO);
    }

    #[test]
    fn synchronous_driver_serializes_the_transition() {
        let mut p = SoftwareDvfsPath::new(
            SoftwarePathParams::synchronous_driver(),
            SimDuration::from_us(25),
        );
        let g = p.request(SimTime::ZERO);
        // 0.3 + 1.5 + 1 + 25 + 0.5 = 28.3 µs with the rail ramp in the lock.
        assert_eq!(g.total_latency(SimTime::ZERO), SimDuration::from_ns(28_300));
    }

    #[test]
    fn statistics_accumulate() {
        let mut p = path();
        for i in 0..10 {
            p.request(SimTime::from_us(i));
        }
        assert_eq!(p.latencies.count(), 10);
        assert_eq!(p.lock_waits.count(), 10);
        assert!(p.latencies.mean() >= SimDuration::from_ns(3_300));
    }
}
