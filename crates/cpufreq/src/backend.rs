//! DVFS backends for the native executor.
//!
//! The runtime only needs one operation — set a core's frequency — but where
//! that lands differs by environment: a real Linux host with the `userspace`
//! cpufreq governor accepts writes to `scaling_setspeed`; CI containers and
//! non-root shells do not. [`DvfsBackend`] abstracts the operation;
//! [`SysfsDvfs::detect`] picks the real backend when the host allows it.

use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};

/// An object that can apply per-core frequency changes.
///
/// Implementations must be cheap to share across worker threads; all methods
/// take `&self`.
pub trait DvfsBackend: Send + Sync {
    /// A short name for reports ("sysfs", "mock", "null").
    fn name(&self) -> &'static str;

    /// Requests that core `cpu` run at `khz` kilohertz.
    fn set_speed(&self, cpu: usize, khz: u32) -> io::Result<()>;

    /// Reads back the current requested speed of core `cpu`, if the backend
    /// tracks it.
    fn get_speed(&self, cpu: usize) -> io::Result<u32>;

    /// Number of cores the backend can control.
    fn num_cpus(&self) -> usize;
}

/// The real Linux cpufreq backend: writes
/// `<root>/cpu<i>/cpufreq/scaling_setspeed`, the exact mechanism the paper's
/// runtime uses (§IV: "Nanos++ requests frequency changes to the cpufreq
/// framework by writing to a specific set of files, one per core").
#[derive(Debug, Clone)]
pub struct SysfsDvfs {
    root: PathBuf,
    num_cpus: usize,
}

impl SysfsDvfs {
    /// The standard sysfs mount point for CPU devices.
    pub const DEFAULT_ROOT: &'static str = "/sys/devices/system/cpu";

    /// Creates a backend over an explicit sysfs-like directory tree (tests
    /// point this at a tempdir).
    pub fn with_root(root: impl Into<PathBuf>, num_cpus: usize) -> Self {
        SysfsDvfs {
            root: root.into(),
            num_cpus,
        }
    }

    /// Probes the host: returns a backend iff every requested core exposes a
    /// writable `scaling_setspeed` (i.e. the `userspace` governor is active
    /// and we have permission). Returns `None` otherwise, in which case
    /// callers should fall back to [`MockDvfs`] or [`NullDvfs`].
    pub fn detect(num_cpus: usize) -> Option<Self> {
        let backend = SysfsDvfs::with_root(Self::DEFAULT_ROOT, num_cpus);
        for cpu in 0..num_cpus {
            let p = backend.setspeed_path(cpu);
            let meta = std::fs::metadata(&p).ok()?;
            if meta.permissions().readonly() {
                return None;
            }
        }
        Some(backend)
    }

    fn setspeed_path(&self, cpu: usize) -> PathBuf {
        self.root
            .join(format!("cpu{cpu}"))
            .join("cpufreq")
            .join("scaling_setspeed")
    }

    fn curfreq_path(&self, cpu: usize) -> PathBuf {
        self.root
            .join(format!("cpu{cpu}"))
            .join("cpufreq")
            .join("scaling_cur_freq")
    }

    /// Creates the directory layout under a custom root — used by tests and
    /// by the examples when demonstrating the sysfs protocol without a
    /// privileged host.
    pub fn create_fake_tree(root: &Path, num_cpus: usize, initial_khz: u32) -> io::Result<()> {
        for cpu in 0..num_cpus {
            let dir = root.join(format!("cpu{cpu}")).join("cpufreq");
            std::fs::create_dir_all(&dir)?;
            std::fs::write(dir.join("scaling_setspeed"), format!("{initial_khz}\n"))?;
            std::fs::write(dir.join("scaling_cur_freq"), format!("{initial_khz}\n"))?;
            std::fs::write(dir.join("scaling_governor"), "userspace\n")?;
        }
        Ok(())
    }
}

impl DvfsBackend for SysfsDvfs {
    fn name(&self) -> &'static str {
        "sysfs"
    }

    fn set_speed(&self, cpu: usize, khz: u32) -> io::Result<()> {
        if cpu >= self.num_cpus {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cpu {cpu} out of range (have {})", self.num_cpus),
            ));
        }
        std::fs::write(self.setspeed_path(cpu), format!("{khz}\n"))?;
        // Mirror into scaling_cur_freq so get_speed round-trips on fake
        // trees; on a real host the kernel owns this file and the write is
        // ignored/overwritten, which is fine.
        let _ = std::fs::write(self.curfreq_path(cpu), format!("{khz}\n"));
        Ok(())
    }

    fn get_speed(&self, cpu: usize) -> io::Result<u32> {
        let s = std::fs::read_to_string(self.curfreq_path(cpu))?;
        s.trim()
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad freq: {e}")))
    }

    fn num_cpus(&self) -> usize {
        self.num_cpus
    }
}

/// A recording backend for tests and unprivileged hosts: remembers every
/// `set_speed` call and can inject failures.
#[derive(Debug)]
pub struct MockDvfs {
    state: Mutex<MockState>,
    num_cpus: usize,
}

#[derive(Debug)]
struct MockState {
    speeds: Vec<u32>,
    calls: Vec<(usize, u32)>,
    fail_after: Option<usize>,
    fail_next: usize,
}

impl MockDvfs {
    /// Creates a mock with all cores at `initial_khz`.
    pub fn new(num_cpus: usize, initial_khz: u32) -> Self {
        MockDvfs {
            state: Mutex::new(MockState {
                speeds: vec![initial_khz; num_cpus],
                calls: Vec::new(),
                fail_after: None,
                fail_next: 0,
            }),
            num_cpus,
        }
    }

    /// Makes every `set_speed` call after the first `n` fail with
    /// `PermissionDenied` — failure-injection for the fallback tests.
    pub fn fail_after(&self, n: usize) {
        self.state.lock().fail_after = Some(n);
    }

    /// Makes the next `k` `set_speed` calls fail transiently, then
    /// succeed again — flaky-write injection for retry tests.
    pub fn fail_next(&self, k: usize) {
        self.state.lock().fail_next = k;
    }

    /// All recorded `(cpu, khz)` calls, in order.
    pub fn calls(&self) -> Vec<(usize, u32)> {
        self.state.lock().calls.clone()
    }

    /// Number of recorded calls.
    pub fn call_count(&self) -> usize {
        self.state.lock().calls.len()
    }
}

impl DvfsBackend for MockDvfs {
    fn name(&self) -> &'static str {
        "mock"
    }

    fn set_speed(&self, cpu: usize, khz: u32) -> io::Result<()> {
        let mut st = self.state.lock();
        if cpu >= self.num_cpus {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cpu out of range",
            ));
        }
        if st.fail_next > 0 {
            st.fail_next -= 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient cpufreq failure",
            ));
        }
        if let Some(limit) = st.fail_after {
            if st.calls.len() >= limit {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "injected cpufreq failure",
                ));
            }
        }
        st.speeds[cpu] = khz;
        st.calls.push((cpu, khz));
        Ok(())
    }

    fn get_speed(&self, cpu: usize) -> io::Result<u32> {
        self.state
            .lock()
            .speeds
            .get(cpu)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "cpu out of range"))
    }

    fn num_cpus(&self) -> usize {
        self.num_cpus
    }
}

/// A backend that accepts and discards everything — for pure-scheduling runs
/// where frequency control is unavailable and irrelevant.
#[derive(Debug, Clone, Copy)]
pub struct NullDvfs {
    num_cpus: usize,
}

impl NullDvfs {
    /// Creates the null backend.
    pub fn new(num_cpus: usize) -> Self {
        NullDvfs { num_cpus }
    }
}

impl DvfsBackend for NullDvfs {
    fn name(&self) -> &'static str {
        "null"
    }

    fn set_speed(&self, _cpu: usize, _khz: u32) -> io::Result<()> {
        Ok(())
    }

    fn get_speed(&self, _cpu: usize) -> io::Result<u32> {
        Ok(0)
    }

    fn num_cpus(&self) -> usize {
        self.num_cpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_records_calls_in_order() {
        let m = MockDvfs::new(4, 1_000_000);
        m.set_speed(0, 2_000_000).unwrap();
        m.set_speed(3, 1_000_000).unwrap();
        assert_eq!(m.calls(), vec![(0, 2_000_000), (3, 1_000_000)]);
        assert_eq!(m.get_speed(0).unwrap(), 2_000_000);
        assert_eq!(m.get_speed(1).unwrap(), 1_000_000);
    }

    #[test]
    fn mock_injects_failures() {
        let m = MockDvfs::new(2, 1_000_000);
        m.fail_after(1);
        m.set_speed(0, 2_000_000).unwrap();
        let err = m.set_speed(1, 2_000_000).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(m.call_count(), 1);
    }

    #[test]
    fn mock_rejects_out_of_range() {
        let m = MockDvfs::new(2, 1_000_000);
        assert!(m.set_speed(5, 1).is_err());
        assert!(m.get_speed(5).is_err());
    }

    #[test]
    fn sysfs_round_trips_on_fake_tree() {
        let dir = std::env::temp_dir().join(format!("cata-cpufreq-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SysfsDvfs::create_fake_tree(&dir, 2, 1_000_000).unwrap();
        let b = SysfsDvfs::with_root(&dir, 2);
        assert_eq!(b.get_speed(0).unwrap(), 1_000_000);
        b.set_speed(0, 2_000_000).unwrap();
        assert_eq!(b.get_speed(0).unwrap(), 2_000_000);
        assert!(b.set_speed(7, 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn null_backend_accepts_everything() {
        let n = NullDvfs::new(8);
        n.set_speed(0, 123).unwrap();
        assert_eq!(n.num_cpus(), 8);
        assert_eq!(n.name(), "null");
    }
}
