//! # cata-cpufreq — the software DVFS stack
//!
//! CATA's pure-software variant drives frequency changes through the Linux
//! `cpufreq` framework: the runtime writes the requested speed to a per-core
//! sysfs file, the kernel runs the cpufreq driver, the driver programs the
//! DVFS controller and waits for the rails, and the kernel updates its clock
//! bookkeeping before returning to user space (§III-A, Figure 2). All of
//! that is serialized — concurrent updates could transiently exceed the
//! power budget — and §V-C measures the consequences: average
//! reconfiguration latencies of 11–65 µs and lock-acquisition maxima of
//! several *milliseconds* under bursty contention.
//!
//! This crate provides both sides of that stack:
//!
//! - [`backend`]: the real interface — [`backend::DvfsBackend`] abstracts
//!   "set core *i* to *k* kHz", with [`backend::SysfsDvfs`] writing actual
//!   `scaling_setspeed` files on a Linux host with the userspace governor
//!   (for the native executor), and [`backend::MockDvfs`] recording calls
//!   for tests and non-privileged environments.
//! - [`software_path`]: the *model* of that stack for the simulator — a
//!   serialized resource with user/kernel service phases, producing exactly
//!   the lock-wait and latency distributions §V-C reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod software_path;

pub use backend::{DvfsBackend, MockDvfs, NullDvfs, SysfsDvfs};
pub use software_path::{SoftwareDvfsPath, SoftwarePathParams};
