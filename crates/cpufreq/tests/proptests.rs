//! Property tests for the software DVFS path model and the backends.

use cata_cpufreq::backend::{DvfsBackend, MockDvfs};
use cata_cpufreq::software_path::{SoftwareDvfsPath, SoftwarePathParams};
use cata_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// FIFO service: grants never overlap, are ordered, and each request's
    /// latency decomposes into wait + service exactly.
    #[test]
    fn path_grants_are_fifo_and_non_overlapping(
        arrivals in prop::collection::vec(0u64..2_000, 1..100),
        ops in prop::collection::vec(0usize..3, 1..100),
    ) {
        let params = SoftwarePathParams::paper_calibrated();
        let hw = SimDuration::from_us(25);
        let mut path = SoftwareDvfsPath::new(params, hw);
        let mut t = 0u64;
        let mut prev_return = SimTime::ZERO;
        for (a, n) in arrivals.iter().zip(ops.iter().cycle()) {
            t += a;
            let now = SimTime::from_us(t);
            let g = path.request_ops(now, *n);
            // Service begins no earlier than both the request and the
            // previous grant's completion.
            prop_assert!(g.acquired_at >= now);
            prop_assert!(g.acquired_at >= prev_return);
            prop_assert!(g.returns_at >= g.acquired_at);
            // Latency decomposition.
            let wait = g.lock_wait(now);
            let total = g.total_latency(now);
            let service = g.returns_at.since(g.acquired_at);
            prop_assert_eq!(wait + service, total);
            // Per-op transition starts are ordered and inside the hold.
            for w in g.op_transition_starts.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            if let Some(&first) = g.op_transition_starts.first() {
                prop_assert!(first >= g.acquired_at && first <= g.returns_at);
            }
            prev_return = g.returns_at;
        }
    }

    /// The synchronous-driver variant is never faster than the asynchronous
    /// one, and the difference is exactly n_ops × hw latency.
    #[test]
    fn synchronous_driver_costs_the_transition(n in 0usize..5, at in 0u64..1000) {
        let hw = SimDuration::from_us(25);
        let now = SimTime::from_us(at);
        let mut a = SoftwareDvfsPath::new(SoftwarePathParams::paper_calibrated(), hw);
        let mut s = SoftwareDvfsPath::new(SoftwarePathParams::synchronous_driver(), hw);
        let ga = a.request_ops(now, n);
        let gs = s.request_ops(now, n);
        let diff = gs.total_latency(now).saturating_sub(ga.total_latency(now));
        prop_assert_eq!(diff, hw.saturating_mul(n as u64));
    }

    /// The mock backend stores the last write per cpu, in order, like a real
    /// sysfs file.
    #[test]
    fn mock_backend_is_a_register_file(
        writes in prop::collection::vec((0usize..8, 1u32..4_000_000), 0..200),
    ) {
        let m = MockDvfs::new(8, 1_000_000);
        let mut expect = [1_000_000u32; 8];
        for (cpu, khz) in &writes {
            m.set_speed(*cpu, *khz).unwrap();
            expect[*cpu] = *khz;
        }
        for (cpu, &khz) in expect.iter().enumerate() {
            prop_assert_eq!(m.get_speed(cpu).unwrap(), khz);
        }
        prop_assert_eq!(m.call_count(), writes.len());
    }

    /// Failure injection cuts off exactly at the configured call count.
    #[test]
    fn mock_failure_boundary(ok_calls in 0usize..20, attempts in 0usize..40) {
        let m = MockDvfs::new(1, 1);
        m.fail_after(ok_calls);
        let mut succeeded = 0;
        for _ in 0..attempts {
            if m.set_speed(0, 2).is_ok() {
                succeeded += 1;
            }
        }
        prop_assert_eq!(succeeded, ok_calls.min(attempts));
    }
}
