//! Criterion micro-benchmarks of the substrates: DES event queue, TDG
//! bottom-level maintenance, the progress model, and the native runtime —
//! the costs that bound the harness's own throughput.

use cata_core::native::{NativeRuntime, RsmMode};
use cata_sim::event::EventQueue;
use cata_sim::progress::{ExecProfile, RunningTask};
use cata_sim::time::{Frequency, SimTime};
use cata_tdg::bottom_level::BottomLevels;
use cata_tdg::TaskGraph;
use cata_workloads::micro;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    c.bench_function("substrate/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.push(SimTime::from_ns((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

fn bottom_level(c: &mut Criterion) {
    c.bench_function("substrate/bottom_level_stencil_1frame", |b| {
        b.iter(|| {
            let g = micro::fork_join(4, 64, 1000);
            let mut bl = BottomLevels::new();
            let mut graph = TaskGraph::new();
            let ty = graph.add_type("t", 0);
            for t in g.tasks() {
                let deps: Vec<_> = t.preds().to_vec();
                let id = graph.add_task(ty, t.profile.clone(), &deps);
                bl.on_submit(&graph, id);
            }
            black_box(bl.total_visits())
        });
    });
}

fn progress_model(c: &mut Criterion) {
    c.bench_function("substrate/progress_freq_changes", |b| {
        b.iter(|| {
            let p = ExecProfile::new(1_000_000, 50_000);
            let mut rt = RunningTask::start(&p, SimTime::ZERO, Frequency::from_ghz(1));
            for i in 0..100u64 {
                let f = if i % 2 == 0 {
                    Frequency::from_ghz(2)
                } else {
                    Frequency::from_ghz(1)
                };
                rt.set_frequency(SimTime::from_ns(i * 1000), f);
            }
            black_box(rt.progress())
        });
    });
}

fn native_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/native");
    group.sample_size(10);
    for mode in [RsmMode::Software, RsmMode::RsuEmulated] {
        group.bench_function(format!("spawn_1k_{mode:?}"), |b| {
            b.iter(|| {
                let rt = NativeRuntime::builder(4).budget(2).rsm_mode(mode).build();
                for i in 0..1000 {
                    rt.spawn(i % 5 == 0, &[], || {});
                }
                rt.wait_all();
                black_box(rt.metrics().tasks_run)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    event_queue,
    bottom_level,
    progress_model,
    native_runtime
);
criterion_main!(benches);
