//! Criterion benches for the ablation studies A1–A4 (budget, DVFS latency,
//! BL threshold, multi-level DVFS); each target regenerates one sweep at
//! Tiny scale and prints the Small-scale table once.

use cata_bench::sweeps;
use cata_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    println!(
        "A1 budget sweep (Swaptions):\n{}",
        sweeps::budget_sweep(Benchmark::Swaptions, Scale::Small, &[8, 16, 24]).render()
    );
    println!(
        "A2 latency sweep (Fluidanimate):\n{}",
        sweeps::latency_sweep(Benchmark::Fluidanimate, Scale::Small, &[5, 25, 200]).render()
    );
    println!(
        "A3 threshold sweep (Bodytrack):\n{}",
        sweeps::threshold_sweep(Benchmark::Bodytrack, Scale::Small, &[0.5, 1.0]).render()
    );
    println!(
        "A4 multilevel (Swaptions):\n{}",
        sweeps::multilevel_sweep(Benchmark::Swaptions, Scale::Small).render()
    );

    group.bench_function("budget_sweep", |b| {
        b.iter(|| {
            black_box(sweeps::budget_sweep(
                Benchmark::Swaptions,
                Scale::Tiny,
                &[8, 24],
            ))
        });
    });
    group.bench_function("latency_sweep", |b| {
        b.iter(|| {
            black_box(sweeps::latency_sweep(
                Benchmark::Blackscholes,
                Scale::Tiny,
                &[25, 100],
            ))
        });
    });
    group.bench_function("threshold_sweep", |b| {
        b.iter(|| {
            black_box(sweeps::threshold_sweep(
                Benchmark::Bodytrack,
                Scale::Tiny,
                &[0.5, 1.0],
            ))
        });
    });
    group.bench_function("multilevel_sweep", |b| {
        b.iter(|| black_box(sweeps::multilevel_sweep(Benchmark::Dedup, Scale::Tiny)));
    });

    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
