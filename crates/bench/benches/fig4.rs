//! Criterion bench regenerating Figure 4 cells (experiment F4a/F4b).
//!
//! Each benchmark target simulates one (benchmark, configuration) cell at 16
//! fast cores and Small scale; the measured wall time is the harness cost of
//! regenerating that cell. The derived paper metrics (speedup, normalized
//! EDP) are printed once per target so `cargo bench` output doubles as a
//! compact reproduction record.

use cata_bench::matrix::{run_one, DEFAULT_SEED};
use cata_core::RunConfig;
use cata_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for bench in Benchmark::all() {
        let fifo = run_one(bench, RunConfig::fifo(16), Scale::Small, DEFAULT_SEED);
        for cfg_of in [
            RunConfig::cats_bl as fn(usize) -> RunConfig,
            RunConfig::cats_sa,
            RunConfig::cata,
        ] {
            let cfg = cfg_of(16);
            let label = cfg.label.clone();
            let r = run_one(bench, cfg.clone(), Scale::Small, DEFAULT_SEED);
            println!(
                "fig4 {:<14} {:<8}: speedup {:.3}  norm-EDP {:.3}",
                bench.name(),
                label,
                r.speedup_over(&fifo),
                r.edp_normalized_to(&fifo).unwrap_or(f64::NAN)
            );
            group.bench_with_input(BenchmarkId::new(label, bench.name()), &cfg, |b, cfg| {
                b.iter(|| run_one(bench, cfg.clone(), Scale::Tiny, DEFAULT_SEED));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
