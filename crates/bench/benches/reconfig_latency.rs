//! Criterion bench for the §V-C reconfiguration-path analysis: measures the
//! software DVFS path model under uncontended and bursty request patterns,
//! and the RSU operation cost, printing the latency statistics the paper
//! reports.

use cata_cpufreq::software_path::{SoftwareDvfsPath, SoftwarePathParams};
use cata_rsu::unit::{Rsu, RsuConfig};
use cata_sim::time::{Frequency, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn software_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_latency");

    // Print the modelled latencies once (the paper's §V-C numbers).
    let mut p = SoftwareDvfsPath::new(
        SoftwarePathParams::paper_calibrated(),
        SimDuration::from_us(25),
    );
    let g = p.request(SimTime::ZERO);
    println!(
        "software path uncontended: total {} (paper: 11-65us averages)",
        g.total_latency(SimTime::ZERO)
    );
    let mut p = SoftwareDvfsPath::new(
        SoftwarePathParams::paper_calibrated(),
        SimDuration::from_us(25),
    );
    let mut worst = SimDuration::ZERO;
    for _ in 0..32 {
        let g = p.request(SimTime::ZERO);
        worst = worst.max(g.lock_wait(SimTime::ZERO));
    }
    println!("software path 32-burst worst lock wait: {worst} (paper: 4.8-15ms maxima)");

    group.bench_function("software_path_request", |b| {
        let mut path = SoftwareDvfsPath::new(
            SoftwarePathParams::paper_calibrated(),
            SimDuration::from_us(25),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(path.request(SimTime::from_us(t)));
        });
    });

    group.bench_function("rsu_start_end_pair", |b| {
        let mut rsu = Rsu::init(RsuConfig::paper_default(16));
        let f = Frequency::from_ghz(2);
        let mut core = 0usize;
        b.iter(|| {
            core = (core + 1) % 32;
            black_box(rsu.start_task(core, core.is_multiple_of(3), f).unwrap());
            black_box(rsu.end_task(core, f).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, software_path);
criterion_main!(benches);
