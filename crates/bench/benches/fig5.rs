//! Criterion bench regenerating Figure 5 cells (experiment F5a/F5b):
//! CATA vs CATA+RSU vs TurboMode.

use cata_bench::matrix::{run_one, DEFAULT_SEED};
use cata_core::RunConfig;
use cata_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for bench in Benchmark::all() {
        let fifo = run_one(bench, RunConfig::fifo(16), Scale::Small, DEFAULT_SEED);
        for cfg_of in [
            RunConfig::cata as fn(usize) -> RunConfig,
            RunConfig::cata_rsu,
            RunConfig::turbo,
        ] {
            let cfg = cfg_of(16);
            let label = cfg.label.clone();
            let r = run_one(bench, cfg.clone(), Scale::Small, DEFAULT_SEED);
            println!(
                "fig5 {:<14} {:<10}: speedup {:.3}  norm-EDP {:.3}",
                bench.name(),
                label,
                r.speedup_over(&fifo),
                r.edp_normalized_to(&fifo).unwrap_or(f64::NAN)
            );
            group.bench_with_input(BenchmarkId::new(label, bench.name()), &cfg, |b, cfg| {
                b.iter(|| run_one(bench, cfg.clone(), Scale::Tiny, DEFAULT_SEED));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
