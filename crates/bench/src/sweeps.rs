//! Ablation studies (experiment ids A1–A4 in DESIGN.md).

use crate::matrix::DEFAULT_SEED;
use crate::tables::{r3, Table};
use cata_core::{EstimatorKind, RunConfig, SimExecutor};
use cata_sim::machine::PowerLevel;
use cata_sim::time::{Frequency, SimDuration};
use cata_workloads::{generate, Benchmark, Scale};

/// A1: sensitivity of CATA+RSU to the power budget, on one benchmark.
/// Reports speedup over the FIFO baseline with the *same* static fast-core
/// count as the budget.
pub fn budget_sweep(bench: Benchmark, scale: Scale, budgets: &[usize]) -> Table {
    let graph = generate(bench, scale, DEFAULT_SEED);
    let mut t = Table::new(&["budget", "exec time", "speedup vs FIFO(b)", "norm EDP"]);
    for &b in budgets {
        let fifo = SimExecutor::new(RunConfig::fifo(b)).run(&graph, bench.name()).0;
        let cata = SimExecutor::new(RunConfig::cata_rsu(b)).run(&graph, bench.name()).0;
        t.row(vec![
            b.to_string(),
            cata.exec_time.to_string(),
            r3(cata.speedup_over(&fifo)),
            r3(cata.edp_normalized_to(&fifo)),
        ]);
    }
    t
}

/// A2: sensitivity of software CATA vs CATA+RSU to the DVFS transition
/// latency — the gap between them should widen as reconfigurations slow
/// down, because the software path serializes transitions.
pub fn latency_sweep(bench: Benchmark, scale: Scale, latencies_us: &[u64]) -> Table {
    let graph = generate(bench, scale, DEFAULT_SEED);
    let mut t = Table::new(&["reconfig latency", "CATA speedup", "CATA+RSU speedup", "RSU gain"]);
    for &us in latencies_us {
        let with_latency = |mut cfg: RunConfig| {
            cfg.machine.reconfig_latency = SimDuration::from_us(us);
            cfg
        };
        let fifo = SimExecutor::new(with_latency(RunConfig::fifo(16)))
            .run(&graph, bench.name())
            .0;
        let sw = SimExecutor::new(with_latency(RunConfig::cata(16)))
            .run(&graph, bench.name())
            .0;
        let hw = SimExecutor::new(with_latency(RunConfig::cata_rsu(16)))
            .run(&graph, bench.name())
            .0;
        t.row(vec![
            format!("{}us", us),
            r3(sw.speedup_over(&fifo)),
            r3(hw.speedup_over(&fifo)),
            r3(hw.speedup_over(&sw)),
        ]);
    }
    t
}

/// A3: sensitivity of CATS+BL to the bottom-level criticality threshold
/// fraction `alpha`.
pub fn threshold_sweep(bench: Benchmark, scale: Scale, alphas: &[f64]) -> Table {
    let graph = generate(bench, scale, DEFAULT_SEED);
    let fifo = SimExecutor::new(RunConfig::fifo(16)).run(&graph, bench.name()).0;
    let mut t = Table::new(&["alpha", "CATS+BL speedup", "norm EDP"]);
    for &a in alphas {
        let mut cfg = RunConfig::cats_bl(16);
        cfg.estimator = EstimatorKind::BottomLevel { alpha: a };
        let r = SimExecutor::new(cfg).run(&graph, bench.name()).0;
        t.row(vec![
            format!("{a:.2}"),
            r3(r.speedup_over(&fifo)),
            r3(r.edp_normalized_to(&fifo)),
        ]);
    }
    t
}

/// A4 (paper future work): more than two DVFS levels. The machine's fast
/// level is raised and the slow level lowered around the paper's pair,
/// approximating a 3/4-level ladder by its extremes; CATA's budget then
/// constrains the *top* level.
pub fn multilevel_sweep(bench: Benchmark, scale: Scale) -> Table {
    let graph = generate(bench, scale, DEFAULT_SEED);
    let ladders: [(&str, u32, u32, u32, u32); 3] = [
        ("2 levels (paper)", 2000, 1000, 1000, 800),
        ("3-level extremes", 2400, 1000, 900, 750),
        ("4-level extremes", 2600, 1050, 800, 700),
    ];
    let mut t = Table::new(&["ladder", "CATA+RSU speedup", "norm EDP"]);
    for (name, fast_mhz, fast_mv, slow_mhz, slow_mv) in ladders {
        let mut fifo_cfg = RunConfig::fifo(16);
        let mut cfg = RunConfig::cata_rsu(16);
        for c in [&mut fifo_cfg, &mut cfg] {
            c.machine.fast_level = PowerLevel {
                frequency: Frequency::from_mhz(fast_mhz),
                voltage_mv: fast_mv,
            };
            c.machine.slow_level = PowerLevel {
                frequency: Frequency::from_mhz(slow_mhz),
                voltage_mv: slow_mv,
            };
        }
        let fifo = SimExecutor::new(fifo_cfg).run(&graph, bench.name()).0;
        let r = SimExecutor::new(cfg).run(&graph, bench.name()).0;
        t.row(vec![
            name.to_string(),
            r3(r.speedup_over(&fifo)),
            r3(r.edp_normalized_to(&fifo)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sweep_runs() {
        let t = budget_sweep(Benchmark::Swaptions, Scale::Tiny, &[8, 16]);
        let s = t.render();
        assert!(s.contains("8"));
        assert!(s.contains("16"));
    }

    #[test]
    fn latency_sweep_runs() {
        let t = latency_sweep(Benchmark::Blackscholes, Scale::Tiny, &[5, 100]);
        assert!(t.render().contains("100us"));
    }

    #[test]
    fn threshold_sweep_runs() {
        let t = threshold_sweep(Benchmark::Bodytrack, Scale::Tiny, &[0.5, 1.0]);
        assert!(t.render().contains("0.50"));
    }

    #[test]
    fn multilevel_sweep_runs() {
        let t = multilevel_sweep(Benchmark::Dedup, Scale::Tiny);
        assert!(t.render().contains("paper"));
    }
}
