//! Ablation studies (experiment ids A1–A4 in DESIGN.md), driven through
//! the `exp` facade: every run is a [`ScenarioSpec`] executed by the
//! shared suite machinery.

use crate::matrix::{run_spec, DEFAULT_SEED};
use crate::tables::{r3, r3_opt, Table};
use cata_core::{ScenarioSpec, WorkloadSpec};
use cata_sim::machine::PowerLevel;
use cata_sim::time::{Frequency, SimDuration};
use cata_workloads::{Benchmark, Scale};

fn preset(label: &str, fast: usize, bench: Benchmark, scale: Scale) -> ScenarioSpec {
    ScenarioSpec::preset(
        label,
        fast,
        WorkloadSpec::parsec(bench, scale, DEFAULT_SEED),
    )
    .expect("paper preset exists")
}

/// A1: sensitivity of CATA+RSU to the power budget, on one benchmark.
/// Reports speedup over the FIFO baseline with the *same* static fast-core
/// count as the budget.
pub fn budget_sweep(bench: Benchmark, scale: Scale, budgets: &[usize]) -> Table {
    let mut t = Table::new(&["budget", "exec time", "speedup vs FIFO(b)", "norm EDP"]);
    for &b in budgets {
        let fifo = run_spec(preset("FIFO", b, bench, scale));
        let cata = run_spec(preset("CATA+RSU", b, bench, scale));
        t.row(vec![
            b.to_string(),
            cata.exec_time.to_string(),
            r3(cata.speedup_over(&fifo)),
            r3_opt(cata.edp_normalized_to(&fifo)),
        ]);
    }
    t
}

/// A2: sensitivity of software CATA vs CATA+RSU to the DVFS transition
/// latency — the gap between them should widen as reconfigurations slow
/// down, because the software path serializes transitions.
pub fn latency_sweep(bench: Benchmark, scale: Scale, latencies_us: &[u64]) -> Table {
    let mut t = Table::new(&[
        "reconfig latency",
        "CATA speedup",
        "CATA+RSU speedup",
        "RSU gain",
    ]);
    for &us in latencies_us {
        let with_latency = |label: &str| {
            let mut spec = preset(label, 16, bench, scale);
            spec.machine.reconfig_latency = SimDuration::from_us(us);
            spec
        };
        let fifo = run_spec(with_latency("FIFO"));
        let sw = run_spec(with_latency("CATA"));
        let hw = run_spec(with_latency("CATA+RSU"));
        t.row(vec![
            format!("{}us", us),
            r3(sw.speedup_over(&fifo)),
            r3(hw.speedup_over(&fifo)),
            r3(hw.speedup_over(&sw)),
        ]);
    }
    t
}

/// A3: sensitivity of CATS+BL to the bottom-level criticality threshold
/// fraction `alpha`.
pub fn threshold_sweep(bench: Benchmark, scale: Scale, alphas: &[f64]) -> Table {
    let fifo = run_spec(preset("FIFO", 16, bench, scale));
    let mut t = Table::new(&["alpha", "CATS+BL speedup", "norm EDP"]);
    for &a in alphas {
        let mut spec = preset("CATS+BL", 16, bench, scale);
        spec.params.get_or_insert_with(Default::default).alpha = Some(a);
        let r = run_spec(spec);
        t.row(vec![
            format!("{a:.2}"),
            r3(r.speedup_over(&fifo)),
            r3_opt(r.edp_normalized_to(&fifo)),
        ]);
    }
    t
}

/// A4 (paper future work): more than two DVFS levels. The machine's fast
/// level is raised and the slow level lowered around the paper's pair,
/// approximating a 3/4-level ladder by its extremes; CATA's budget then
/// constrains the *top* level.
pub fn multilevel_sweep(bench: Benchmark, scale: Scale) -> Table {
    let ladders: [(&str, u32, u32, u32, u32); 3] = [
        ("2 levels (paper)", 2000, 1000, 1000, 800),
        ("3-level extremes", 2400, 1000, 900, 750),
        ("4-level extremes", 2600, 1050, 800, 700),
    ];
    let mut t = Table::new(&["ladder", "CATA+RSU speedup", "norm EDP"]);
    for (name, fast_mhz, fast_mv, slow_mhz, slow_mv) in ladders {
        let with_ladder = |label: &str| {
            let mut spec = preset(label, 16, bench, scale);
            spec.machine.fast_level = PowerLevel {
                frequency: Frequency::from_mhz(fast_mhz),
                voltage_mv: fast_mv,
            };
            spec.machine.slow_level = PowerLevel {
                frequency: Frequency::from_mhz(slow_mhz),
                voltage_mv: slow_mv,
            };
            spec
        };
        let fifo = run_spec(with_ladder("FIFO"));
        let r = run_spec(with_ladder("CATA+RSU"));
        t.row(vec![
            name.to_string(),
            r3(r.speedup_over(&fifo)),
            r3_opt(r.edp_normalized_to(&fifo)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sweep_runs() {
        let t = budget_sweep(Benchmark::Swaptions, Scale::Tiny, &[8, 16]);
        let s = t.render();
        assert!(s.contains("8"));
        assert!(s.contains("16"));
    }

    #[test]
    fn latency_sweep_runs() {
        let t = latency_sweep(Benchmark::Blackscholes, Scale::Tiny, &[5, 100]);
        assert!(t.render().contains("100us"));
    }

    #[test]
    fn threshold_sweep_runs() {
        let t = threshold_sweep(Benchmark::Bodytrack, Scale::Tiny, &[0.5, 1.0]);
        assert!(t.render().contains("0.50"));
    }

    #[test]
    fn multilevel_sweep_runs() {
        let t = multilevel_sweep(Benchmark::Dedup, Scale::Tiny);
        assert!(t.render().contains("paper"));
    }
}
