//! Plain-text table rendering for the repro binary.

/// A simple aligned-column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the figures do (e.g. `1.184`).
pub fn r3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an optional ratio: `n/a` when the metric does not exist (e.g.
/// EDP normalized to an energy-less baseline). Keeps `0`, `inf` and `NaN`
/// out of every rendered table.
pub fn r3_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => r3(v),
        _ => "n/a".to_string(),
    }
}

/// Formats an absolute energy/EDP cell: `n/a` for energy-less runs instead
/// of a misleading `0.000000`, and scientific notation for tiny-but-real
/// values that fixed precision would round to zero (the shared
/// [`cata_power::fmt_metric`] policy).
pub fn fmt_energy(value: f64, has_energy: bool) -> String {
    cata_power::fmt_metric(value, has_energy, 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data rows start at the same column for field 2.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find("2.5").unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into(), "y".into()]);
        assert_eq!(t.to_csv(), "a,b\nx,y\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn optional_ratios_render_na_never_zero_inf_or_nan() {
        assert_eq!(r3_opt(Some(1.5)), "1.500");
        assert_eq!(r3_opt(None), "n/a");
        assert_eq!(r3_opt(Some(f64::INFINITY)), "n/a");
        assert_eq!(r3_opt(Some(f64::NAN)), "n/a");
        assert_eq!(fmt_energy(0.25, true), "0.250000");
        assert_eq!(fmt_energy(0.0, false), "n/a");
    }
}
