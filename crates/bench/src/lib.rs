//! # cata-bench — experiment driver
//!
//! Shared machinery for regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index):
//!
//! - [`matrix`]: runs a benchmark × fast-core-count × configuration matrix
//!   and returns the reports;
//! - [`figures`]: formats Figure 4 / Figure 5 tables (speedup and
//!   normalized EDP, FIFO-normalized) plus the §V-C latency analysis and
//!   the Table I / RSU-overhead printouts;
//! - [`sweeps`]: the ablation studies (budget, reconfiguration latency,
//!   BL threshold, multi-level DVFS);
//! - [`perf`]: the engine performance harness behind `repro perf` and
//!   `BENCH_engine.json` (events/sec per preset and workload size).
//!
//! The `repro` binary exposes all of it on the command line; the Criterion
//! benches reuse the same entry points at reduced scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod matrix;
pub mod perf;
pub mod sweeps;
pub mod tables;

pub use matrix::{cell_spec, run_matrix, run_matrix_on, run_one, run_spec, MatrixResult};
