//! Figure and table assembly (paper artifacts F4a/F4b/F5a/F5b, Table I,
//! §V-C latency analysis, §III-B-4 RSU overhead).

use crate::matrix::MatrixResult;
use crate::tables::{r3, r3_opt, Table};
use cata_core::{ScenarioSpec, WorkloadSpec};
use cata_rsu::overhead::{estimate, TechParams};
use cata_sim::machine::MachineConfig;
use cata_workloads::Benchmark;

/// The fast-core counts of the paper's heterogeneous configurations.
pub const FAST_CORE_COUNTS: [usize; 3] = [8, 16, 24];

/// Figure 4's configurations in plot order (FIFO is the baseline) — the
/// one list behind both [`fig4_configs`] and `merge --fig fig4`.
pub const FIG4_LABELS: [&str; 4] = ["FIFO", "CATS+BL", "CATS+SA", "CATA"];

/// Figure 5's configurations in plot order.
pub const FIG5_LABELS: [&str; 4] = ["FIFO", "CATA", "CATA+RSU", "TurboMode"];

fn presets(labels: &[&str], fast: usize, workload: WorkloadSpec) -> Vec<ScenarioSpec> {
    labels
        .iter()
        .map(|label| {
            ScenarioSpec::preset(label, fast, workload.clone()).expect("paper preset exists")
        })
        .collect()
}

/// The configurations of Figure 4 on `workload`, in plot order.
pub fn fig4_configs(fast: usize, workload: WorkloadSpec) -> Vec<ScenarioSpec> {
    presets(&FIG4_LABELS, fast, workload)
}

/// The configurations of Figure 5 on `workload`, in plot order (FIFO is
/// included as the normalization baseline).
pub fn fig5_configs(fast: usize, workload: WorkloadSpec) -> Vec<ScenarioSpec> {
    presets(&FIG5_LABELS, fast, workload)
}

/// Renders one speedup or EDP panel: rows = benchmark × fast-cores, columns
/// = configurations (normalized to FIFO). Uses the paper's fast-core axis;
/// [`render_panel_at`] takes an explicit axis (e.g. whatever a merged
/// store actually contains).
pub fn render_panel(
    m: &MatrixResult,
    benches: &[Benchmark],
    labels: &[&str],
    metric: Metric,
) -> Table {
    render_panel_at(m, benches, &FAST_CORE_COUNTS, labels, metric)
}

/// [`render_panel`] over an explicit fast-core axis. Undefined EDP cells
/// (energy-less baseline) render `n/a`, never `0`, `inf` or `NaN`.
pub fn render_panel_at(
    m: &MatrixResult,
    benches: &[Benchmark],
    fasts: &[usize],
    labels: &[&str],
    metric: Metric,
) -> Table {
    let mut header = vec!["benchmark".to_string(), "fast".to_string()];
    header.extend(labels.iter().map(|s| s.to_string()));
    let mut t = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &b in benches {
        for &fast in fasts {
            let mut row = vec![b.name().to_string(), fast.to_string()];
            for &l in labels {
                row.push(match metric {
                    Metric::Speedup => r3(m.speedup(b, fast, l)),
                    Metric::Edp => r3_opt(m.edp(b, fast, l)),
                });
            }
            t.row(row);
        }
    }
    // The figures' "Average" group (geometric mean across benchmarks).
    for &fast in fasts {
        let mut row = vec!["Average".to_string(), fast.to_string()];
        for &l in labels {
            row.push(match metric {
                Metric::Speedup => r3(m.avg_speedup(benches, fast, l)),
                Metric::Edp => r3_opt(m.avg_edp(benches, fast, l)),
            });
        }
        t.row(row);
    }
    t
}

/// The figure label sets, in plot order (FIFO is the baseline column) —
/// the same lists [`fig4_configs`]/[`fig5_configs`] run, so `repro fig4`
/// and `repro merge --fig fig4` can never drift apart.
pub fn figure_labels(fig: &str) -> Option<&'static [&'static str]> {
    match fig {
        "fig4" => Some(&FIG4_LABELS),
        "fig5" => Some(&FIG5_LABELS),
        _ => None,
    }
}

/// Which panel of a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Execution-time speedup over FIFO (top panels).
    Speedup,
    /// Energy-Delay Product normalized to FIFO (bottom panels).
    Edp,
}

/// Renders Table I.
pub fn render_table1() -> String {
    let cfg = MachineConfig::paper_table1();
    let mut t = Table::new(&["parameter", "value"]);
    for (k, v) in cfg.table1_rows() {
        t.row(vec![k, v]);
    }
    t.render()
}

/// Renders the §III-B-4 RSU overhead analysis.
pub fn render_rsu_overhead() -> String {
    let mut t = Table::new(&[
        "cores",
        "power states",
        "storage bits",
        "area mm^2",
        "area frac",
        "power uW",
    ]);
    for (cores, states) in [(32usize, 2usize), (32, 4), (64, 2), (128, 2), (1024, 2)] {
        let o = estimate(cores, states, &TechParams::nm22());
        t.row(vec![
            cores.to_string(),
            states.to_string(),
            o.storage_bits.to_string(),
            format!("{:.6}", o.area_mm2),
            format!("{:.2e}", o.area_fraction),
            format!("{:.2}", o.power_uw),
        ]);
    }
    let o32 = estimate(32, 2, &TechParams::nm22());
    format!(
        "{}\npaper claims at 32 cores / 2 states: 103 bits (got {}), area < 0.0001% (got {:.2e}%), power < 50uW (got {:.2}uW)\n",
        t.render(),
        o32.storage_bits,
        o32.area_fraction * 100.0,
        o32.power_uw
    )
}

/// Renders the §V-C reconfiguration-latency analysis for the CATA software
/// path across all benchmarks.
pub fn render_latency_analysis(m: &MatrixResult, benches: &[Benchmark], fast: usize) -> Table {
    let mut t = Table::new(&[
        "benchmark",
        "reconfigs",
        "avg latency",
        "max latency",
        "max lock wait",
        "overhead share",
    ]);
    for &b in benches {
        let mut r = m.get(b, fast, "CATA").clone();
        t.row(vec![
            b.name().to_string(),
            r.reconfig_latencies.count().to_string(),
            r.reconfig_latencies.mean().to_string(),
            r.reconfig_latencies.max().to_string(),
            r.lock_waits.max().to_string(),
            format!("{:.3}%", r.reconfig_time_share * 100.0),
        ]);
        let _ = r.reconfig_latencies.quantile(0.5);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;
    use cata_workloads::Scale;

    #[test]
    fn panels_render_for_a_small_matrix() {
        let benches = [Benchmark::Dedup];
        let m = run_matrix(&benches, &[8, 16, 24], fig4_configs, Scale::Tiny, 1, 2);
        let t = render_panel(&m, &benches, &["CATS+SA", "CATA"], Metric::Speedup);
        let s = t.render();
        assert!(s.contains("Dedup"));
        assert!(s.contains("Average"));
        let e = render_panel(&m, &benches, &["CATA"], Metric::Edp);
        assert!(e.render().contains("CATA"));
    }

    #[test]
    fn table1_contains_the_paper_values() {
        let s = render_table1();
        assert!(s.contains("32"));
        assert!(s.contains("2GHz"));
        assert!(s.contains("25.000us"));
    }

    #[test]
    fn rsu_overhead_matches_formula() {
        let s = render_rsu_overhead();
        assert!(s.contains("103"));
    }
}
