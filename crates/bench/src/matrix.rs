//! Running experiment matrices through the `exp` facade.
//!
//! Every cell is a [`ScenarioSpec`] executed on the shared
//! [`SimExecutor`] backend via the parallel [`Suite`] runner — no direct
//! engine construction here; custom policies registered in
//! [`PolicyRegistries`](cata_core::PolicyRegistries) work matrix-wide for
//! free.

use cata_core::exp::{Executor, Scenario, Suite};
use cata_core::{RunConfig, RunReport, ScenarioSpec, SimExecutor, WorkloadSpec};
use cata_workloads::{Benchmark, Scale};
use std::collections::HashMap;

/// Default workload seed: figures are generated from one fixed input per
/// benchmark, like the paper's simlarge runs.
pub const DEFAULT_SEED: u64 = 0x5EED_CA7A;

/// Results of a benchmark × fast-cores × configuration matrix, keyed for
/// figure assembly.
#[derive(Debug, Default)]
pub struct MatrixResult {
    /// (benchmark, fast_cores, config label) → report.
    pub reports: HashMap<(Benchmark, usize, String), RunReport>,
}

impl MatrixResult {
    /// The report of one cell.
    pub fn get(&self, b: Benchmark, fast: usize, label: &str) -> &RunReport {
        self.reports
            .get(&(b, fast, label.to_string()))
            .unwrap_or_else(|| panic!("missing cell {b:?}/{fast}/{label}"))
    }

    /// Speedup of `label` over FIFO for one cell (the Figure 4/5 y-axis).
    pub fn speedup(&self, b: Benchmark, fast: usize, label: &str) -> f64 {
        self.get(b, fast, label)
            .speedup_over(self.get(b, fast, "FIFO"))
    }

    /// Normalized EDP of `label` over FIFO for one cell.
    pub fn edp(&self, b: Benchmark, fast: usize, label: &str) -> f64 {
        self.get(b, fast, label)
            .edp_normalized_to(self.get(b, fast, "FIFO"))
    }

    /// Geometric-mean speedup over all benchmarks (the figures' "Average"
    /// group).
    pub fn avg_speedup(&self, benches: &[Benchmark], fast: usize, label: &str) -> f64 {
        let product: f64 = benches
            .iter()
            .map(|&b| self.speedup(b, fast, label))
            .product();
        product.powf(1.0 / benches.len() as f64)
    }

    /// Geometric-mean normalized EDP.
    pub fn avg_edp(&self, benches: &[Benchmark], fast: usize, label: &str) -> f64 {
        let product: f64 = benches.iter().map(|&b| self.edp(b, fast, label)).product();
        product.powf(1.0 / benches.len() as f64)
    }
}

/// The spec of one matrix cell: `config` on `bench` at `scale`.
pub fn cell_spec(bench: Benchmark, config: &RunConfig, scale: Scale, seed: u64) -> ScenarioSpec {
    config.to_spec(WorkloadSpec::parsec(bench, scale, seed))
}

/// Runs one spec on the simulator backend.
pub fn run_spec(spec: ScenarioSpec) -> RunReport {
    Scenario::from_spec(spec)
        .run(&SimExecutor::default())
        .unwrap_or_else(|e| panic!("scenario failed: {e}"))
}

/// Runs one cell: `config` on `bench` at `scale`.
pub fn run_one(bench: Benchmark, config: RunConfig, scale: Scale, seed: u64) -> RunReport {
    run_spec(cell_spec(bench, &config, scale, seed))
}

/// Runs `configs` on every benchmark at every fast-core count, fanning the
/// whole matrix across `jobs` worker threads (`0` ⇒ host parallelism,
/// `1` ⇒ serial). Each cell's spec pins its workload seed, so results are
/// identical at any parallelism.
pub fn run_matrix_on<E: Executor + ?Sized>(
    executor: &E,
    benches: &[Benchmark],
    fast_core_counts: &[usize],
    configs: impl Fn(usize, WorkloadSpec) -> Vec<ScenarioSpec>,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> MatrixResult {
    let mut keys = Vec::new();
    let mut specs = Vec::new();
    for &bench in benches {
        for &fast in fast_core_counts {
            for spec in configs(fast, WorkloadSpec::parsec(bench, scale, seed)) {
                keys.push((bench, fast, spec.name.clone()));
                specs.push(spec);
            }
        }
    }
    let reports = Suite::from_specs(specs).jobs(jobs).run_all(executor);
    let mut result = MatrixResult::default();
    for (key, report) in keys.into_iter().zip(reports) {
        result.reports.insert(key, report);
    }
    result
}

/// [`run_matrix_on`] with the simulator backend.
pub fn run_matrix(
    benches: &[Benchmark],
    fast_core_counts: &[usize],
    configs: impl Fn(usize, WorkloadSpec) -> Vec<ScenarioSpec>,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> MatrixResult {
    run_matrix_on(
        &SimExecutor::default(),
        benches,
        fast_core_counts,
        configs,
        scale,
        seed,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_configs(fast: usize, w: WorkloadSpec) -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::preset("FIFO", fast, w.clone()).unwrap(),
            ScenarioSpec::preset("CATA+RSU", fast, w).unwrap(),
        ]
    }

    #[test]
    fn matrix_runs_and_normalizes() {
        let benches = [Benchmark::Blackscholes];
        let m = run_matrix(&benches, &[8], two_configs, Scale::Tiny, 1, 1);
        let fifo_speedup = m.speedup(Benchmark::Blackscholes, 8, "FIFO");
        assert!(
            (fifo_speedup - 1.0).abs() < 1e-12,
            "FIFO self-normalizes to 1"
        );
        let edp = m.edp(Benchmark::Blackscholes, 8, "CATA+RSU");
        assert!(edp > 0.0);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let benches = [Benchmark::Blackscholes];
        let serial = run_matrix(&benches, &[8], two_configs, Scale::Tiny, 1, 1);
        let parallel = run_matrix(&benches, &[8], two_configs, Scale::Tiny, 1, 4);
        for (key, a) in &serial.reports {
            let b = &parallel.reports[key];
            assert_eq!(a.exec_time, b.exec_time, "{key:?} diverged");
            assert_eq!(a.energy.energy_j, b.energy.energy_j);
        }
    }
}
