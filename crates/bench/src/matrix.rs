//! Running experiment matrices through the `exp` facade.
//!
//! Every cell is a [`ScenarioSpec`] executed on the shared
//! [`SimExecutor`] backend via the parallel [`Suite`] runner — no direct
//! engine construction here; custom policies registered in
//! [`PolicyRegistries`](cata_core::PolicyRegistries) work matrix-wide for
//! free.

use cata_core::exp::{CellRecord, Executor, Scenario, Suite};
use cata_core::{RunConfig, RunReport, ScenarioSpec, SimExecutor, WorkloadSpec};
use cata_workloads::{Benchmark, Scale};
use std::collections::HashMap;

/// Default workload seed: figures are generated from one fixed input per
/// benchmark, like the paper's simlarge runs.
pub const DEFAULT_SEED: u64 = 0x5EED_CA7A;

/// Results of a benchmark × fast-cores × configuration matrix, keyed for
/// figure assembly.
#[derive(Debug, Default)]
pub struct MatrixResult {
    /// (benchmark, fast_cores, config label) → report.
    pub reports: HashMap<(Benchmark, usize, String), RunReport>,
}

impl MatrixResult {
    /// The report of one cell.
    pub fn get(&self, b: Benchmark, fast: usize, label: &str) -> &RunReport {
        self.reports
            .get(&(b, fast, label.to_string()))
            .unwrap_or_else(|| panic!("missing cell {b:?}/{fast}/{label}"))
    }

    /// Speedup of `label` over FIFO for one cell (the Figure 4/5 y-axis).
    pub fn speedup(&self, b: Benchmark, fast: usize, label: &str) -> f64 {
        self.get(b, fast, label)
            .speedup_over(self.get(b, fast, "FIFO"))
    }

    /// Normalized EDP of `label` over FIFO for one cell. `None` when the
    /// FIFO baseline carries no energy (it used to render as `0.000` or
    /// `inf`; figures now print `n/a`).
    pub fn edp(&self, b: Benchmark, fast: usize, label: &str) -> Option<f64> {
        self.get(b, fast, label)
            .edp_normalized_to(self.get(b, fast, "FIFO"))
    }

    /// Geometric-mean speedup over all benchmarks (the figures' "Average"
    /// group).
    pub fn avg_speedup(&self, benches: &[Benchmark], fast: usize, label: &str) -> f64 {
        let product: f64 = benches
            .iter()
            .map(|&b| self.speedup(b, fast, label))
            .product();
        product.powf(1.0 / benches.len() as f64)
    }

    /// Geometric-mean normalized EDP; `None` as soon as any cell's EDP is
    /// undefined (one energy-less baseline would otherwise poison the mean
    /// invisibly).
    pub fn avg_edp(&self, benches: &[Benchmark], fast: usize, label: &str) -> Option<f64> {
        let mut product = 1.0f64;
        for &b in benches {
            product *= self.edp(b, fast, label)?;
        }
        Some(product.powf(1.0 / benches.len() as f64))
    }

    /// The fast-core counts present, ascending — the row axis when a
    /// matrix is assembled from a store rather than a fixed plan.
    pub fn fast_core_counts(&self) -> Vec<usize> {
        let mut fasts: Vec<usize> = self.reports.keys().map(|&(_, f, _)| f).collect();
        fasts.sort_unstable();
        fasts.dedup();
        fasts
    }

    /// The benchmarks present, in `Benchmark::all` order.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        Benchmark::all()
            .into_iter()
            .filter(|&b| self.reports.keys().any(|&(rb, _, _)| rb == b))
            .collect()
    }

    /// The configuration labels present, for one figure's plot order pick
    /// the intersection with the figure's label list.
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.reports.keys().map(|(_, _, l)| l.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Assembles a matrix from merged store records — the path that lets
    /// `fig4`/`fig5` panels be rendered from sharded CI runs instead of
    /// re-simulating the grid. Cells whose workload is not one of the six
    /// paper benchmarks (micro workloads) are skipped; sim and native cells
    /// of the same `(benchmark, fast, label)` would collide, so mixed
    /// backends are an error — filter the records first.
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a CellRecord>,
    ) -> Result<MatrixResult, String> {
        let by_name: HashMap<&str, Benchmark> = Benchmark::all()
            .into_iter()
            .map(|b| (b.name(), b))
            .collect();
        let mut result = MatrixResult::default();
        for rec in records {
            let Some(&bench) = by_name.get(rec.report.workload.as_str()) else {
                continue; // micro workload: not a figure cell
            };
            let key = (bench, rec.report.fast_cores, rec.report.label.clone());
            if let Some(prev) = result.reports.insert(key, rec.report.clone()) {
                return Err(format!(
                    "duplicate matrix cell {}/{}/{} (cell {}) — merge shards first, \
                     and keep sim and native grids in separate figures",
                    prev.workload, prev.fast_cores, prev.label, rec.cell
                ));
            }
        }
        Ok(result)
    }
}

/// The spec of one matrix cell: `config` on `bench` at `scale`.
pub fn cell_spec(bench: Benchmark, config: &RunConfig, scale: Scale, seed: u64) -> ScenarioSpec {
    config.to_spec(WorkloadSpec::parsec(bench, scale, seed))
}

/// Runs one spec on the simulator backend.
pub fn run_spec(spec: ScenarioSpec) -> RunReport {
    Scenario::from_spec(spec)
        .run(&SimExecutor::default())
        .unwrap_or_else(|e| panic!("scenario failed: {e}"))
}

/// Runs one cell: `config` on `bench` at `scale`.
pub fn run_one(bench: Benchmark, config: RunConfig, scale: Scale, seed: u64) -> RunReport {
    run_spec(cell_spec(bench, &config, scale, seed))
}

/// Runs `configs` on every benchmark at every fast-core count, fanning the
/// whole matrix across `jobs` worker threads (`0` ⇒ host parallelism,
/// `1` ⇒ serial). Each cell's spec pins its workload seed, so results are
/// identical at any parallelism.
pub fn run_matrix_on<E: Executor + ?Sized>(
    executor: &E,
    benches: &[Benchmark],
    fast_core_counts: &[usize],
    configs: impl Fn(usize, WorkloadSpec) -> Vec<ScenarioSpec>,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> MatrixResult {
    let mut keys = Vec::new();
    let mut specs = Vec::new();
    for &bench in benches {
        for &fast in fast_core_counts {
            for spec in configs(fast, WorkloadSpec::parsec(bench, scale, seed)) {
                keys.push((bench, fast, spec.name.clone()));
                specs.push(spec);
            }
        }
    }
    let reports = Suite::from_specs(specs).jobs(jobs).run_all(executor);
    let mut result = MatrixResult::default();
    for (key, report) in keys.into_iter().zip(reports) {
        result.reports.insert(key, report);
    }
    result
}

/// [`run_matrix_on`] with the simulator backend.
pub fn run_matrix(
    benches: &[Benchmark],
    fast_core_counts: &[usize],
    configs: impl Fn(usize, WorkloadSpec) -> Vec<ScenarioSpec>,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> MatrixResult {
    run_matrix_on(
        &SimExecutor::default(),
        benches,
        fast_core_counts,
        configs,
        scale,
        seed,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_configs(fast: usize, w: WorkloadSpec) -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::preset("FIFO", fast, w.clone()).unwrap(),
            ScenarioSpec::preset("CATA+RSU", fast, w).unwrap(),
        ]
    }

    #[test]
    fn matrix_runs_and_normalizes() {
        let benches = [Benchmark::Blackscholes];
        let m = run_matrix(&benches, &[8], two_configs, Scale::Tiny, 1, 1);
        let fifo_speedup = m.speedup(Benchmark::Blackscholes, 8, "FIFO");
        assert!(
            (fifo_speedup - 1.0).abs() < 1e-12,
            "FIFO self-normalizes to 1"
        );
        let edp = m.edp(Benchmark::Blackscholes, 8, "CATA+RSU").unwrap();
        assert!(edp > 0.0);
        assert!(m.avg_edp(&benches, 8, "CATA+RSU").is_some());
    }

    #[test]
    fn matrix_assembles_from_store_records() {
        // Run a tiny 2-config grid through the store path, then rebuild
        // the MatrixResult purely from the records.
        let w = WorkloadSpec::parsec(Benchmark::Blackscholes, Scale::Tiny, 1);
        let specs = two_configs(8, w);
        let suite = Suite::from_specs(specs);
        let records: Vec<CellRecord> = suite
            .grid_pairs()
            .iter()
            .zip(suite.run_all(&SimExecutor::default()))
            .map(|((i, _), report)| {
                let spec = ScenarioSpec::preset(
                    &report.label,
                    8,
                    WorkloadSpec::parsec(Benchmark::Blackscholes, Scale::Tiny, 1),
                )
                .unwrap();
                CellRecord::new(*i, &spec, "g".into(), 0.0, report)
            })
            .collect();
        let m = MatrixResult::from_records(&records).unwrap();
        assert_eq!(m.benchmarks(), vec![Benchmark::Blackscholes]);
        assert_eq!(m.fast_core_counts(), vec![8]);
        let speedup = m.speedup(Benchmark::Blackscholes, 8, "CATA+RSU");
        assert!(speedup > 0.0);
        assert!(m.edp(Benchmark::Blackscholes, 8, "CATA+RSU").is_some());

        // A duplicated cell is an assembly error, not a silent overwrite.
        let doubled: Vec<CellRecord> = records.iter().chain(records.iter()).cloned().collect();
        assert!(MatrixResult::from_records(&doubled).is_err());
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let benches = [Benchmark::Blackscholes];
        let serial = run_matrix(&benches, &[8], two_configs, Scale::Tiny, 1, 1);
        let parallel = run_matrix(&benches, &[8], two_configs, Scale::Tiny, 1, 4);
        for (key, a) in &serial.reports {
            let b = &parallel.reports[key];
            assert_eq!(a.exec_time, b.exec_time, "{key:?} diverged");
            assert_eq!(a.energy.energy_j, b.energy.energy_j);
        }
    }
}
