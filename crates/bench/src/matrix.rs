//! Running experiment matrices.

use cata_core::{RunConfig, RunReport, SimExecutor};
use cata_workloads::{generate, Benchmark, Scale};
use std::collections::HashMap;

/// Default workload seed: figures are generated from one fixed input per
/// benchmark, like the paper's simlarge runs.
pub const DEFAULT_SEED: u64 = 0x5EED_CA7A;

/// Results of a benchmark × fast-cores × configuration matrix, keyed for
/// figure assembly.
#[derive(Debug, Default)]
pub struct MatrixResult {
    /// (benchmark, fast_cores, config label) → report.
    pub reports: HashMap<(Benchmark, usize, String), RunReport>,
}

impl MatrixResult {
    /// The report of one cell.
    pub fn get(&self, b: Benchmark, fast: usize, label: &str) -> &RunReport {
        self.reports
            .get(&(b, fast, label.to_string()))
            .unwrap_or_else(|| panic!("missing cell {b:?}/{fast}/{label}"))
    }

    /// Speedup of `label` over FIFO for one cell (the Figure 4/5 y-axis).
    pub fn speedup(&self, b: Benchmark, fast: usize, label: &str) -> f64 {
        self.get(b, fast, label)
            .speedup_over(self.get(b, fast, "FIFO"))
    }

    /// Normalized EDP of `label` over FIFO for one cell.
    pub fn edp(&self, b: Benchmark, fast: usize, label: &str) -> f64 {
        self.get(b, fast, label)
            .edp_normalized_to(self.get(b, fast, "FIFO"))
    }

    /// Geometric-mean speedup over all benchmarks (the figures' "Average"
    /// group).
    pub fn avg_speedup(&self, benches: &[Benchmark], fast: usize, label: &str) -> f64 {
        let product: f64 = benches
            .iter()
            .map(|&b| self.speedup(b, fast, label))
            .product();
        product.powf(1.0 / benches.len() as f64)
    }

    /// Geometric-mean normalized EDP.
    pub fn avg_edp(&self, benches: &[Benchmark], fast: usize, label: &str) -> f64 {
        let product: f64 = benches.iter().map(|&b| self.edp(b, fast, label)).product();
        product.powf(1.0 / benches.len() as f64)
    }
}

/// Runs one cell: `config` on `bench` at `scale`.
pub fn run_one(bench: Benchmark, config: RunConfig, scale: Scale, seed: u64) -> RunReport {
    let graph = generate(bench, scale, seed);
    SimExecutor::new(config).run(&graph, bench.name()).0
}

/// Runs `configs` on every benchmark at every fast-core count.
///
/// Graphs are generated once per benchmark and shared across configurations
/// so every configuration executes the identical task set.
pub fn run_matrix(
    benches: &[Benchmark],
    fast_core_counts: &[usize],
    configs: impl Fn(usize) -> Vec<RunConfig>,
    scale: Scale,
    seed: u64,
) -> MatrixResult {
    let mut result = MatrixResult::default();
    for &bench in benches {
        let graph = generate(bench, scale, seed);
        for &fast in fast_core_counts {
            for cfg in configs(fast) {
                let label = cfg.label.clone();
                let report = SimExecutor::new(cfg).run(&graph, bench.name()).0;
                result.reports.insert((bench, fast, label), report);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_and_normalizes() {
        let benches = [Benchmark::Blackscholes];
        let m = run_matrix(
            &benches,
            &[8],
            |fast| vec![RunConfig::fifo(fast), RunConfig::cata_rsu(fast)],
            Scale::Tiny,
            1,
        );
        let fifo_speedup = m.speedup(Benchmark::Blackscholes, 8, "FIFO");
        assert!((fifo_speedup - 1.0).abs() < 1e-12, "FIFO self-normalizes to 1");
        let edp = m.edp(Benchmark::Blackscholes, 8, "CATA+RSU");
        assert!(edp > 0.0);
    }
}
