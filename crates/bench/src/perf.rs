//! Engine performance harness: events/sec and wall time per paper preset.
//!
//! The north star demands an engine that runs "as fast as the hardware
//! allows"; this module measures it. Each of the six paper presets runs a
//! generated workload at three sizes (`small`/`medium`/`large`) with
//! tracing off, the wall clock is taken around the simulation only (graphs
//! are pre-generated and cached), and the throughput metric is
//! `Counters::sim_events / wall` — discrete events processed per second.
//!
//! The resulting [`PerfReport`] serializes to `BENCH_engine.json` so every
//! PR appends a point to the engine's performance trajectory. A previous
//! report can be passed in as the *baseline*: its medium-workload summary
//! is embedded into the new report together with the speedup ratio, which
//! is how the repo tracks "no perf regressions, only trajectories".

use cata_core::exp::{ScenarioSpec, WorkloadSpec};
use cata_core::SimExecutor;
use cata_sim::trace::TraceMode;
use cata_workloads::{Benchmark, Scale};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The fixed workload-generation seed of the harness (same as the figure
/// matrix default, so graphs are shared with other tooling).
pub const PERF_SEED: u64 = 42;

/// One measured (workload, preset) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfRun {
    /// Workload size label (`small`/`medium`/`large`).
    pub workload: String,
    /// Paper preset label (`FIFO`, `CATA`, …).
    pub preset: String,
    /// Tasks in the generated graph.
    pub tasks: u64,
    /// Discrete events processed by one run.
    pub events: u64,
    /// Best wall time over the measured repetitions, in seconds.
    pub wall_s: f64,
    /// `events / wall_s`.
    pub events_per_sec: f64,
}

/// Aggregate over every preset of one workload size: total events divided
/// by total (best-rep) wall time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSummary {
    /// Workload size label.
    pub workload: String,
    /// Sum of per-preset event counts.
    pub events: u64,
    /// Sum of per-preset best wall times, in seconds.
    pub wall_s: f64,
    /// `events / wall_s`.
    pub events_per_sec: f64,
}

/// One point of the append-only perf trajectory: a harness run boiled
/// down to its per-size aggregates, stored as a single JSONL line so
/// every PR/CI run *appends* to the history instead of overwriting it.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Format tag.
    pub schema: String,
    /// `full` or `smoke`.
    pub mode: String,
    /// Timing repetitions per cell.
    pub reps: u64,
    /// Per-size aggregates of the run.
    pub summaries: Vec<PerfSummary>,
    /// Medium-workload speedup over the baseline the run was gated
    /// against, if one was given.
    pub speedup_vs_baseline: Option<f64>,
    /// Fingerprint of the measuring host
    /// ([`cata_core::exp::host_fingerprint`]) — events/sec on two
    /// different machines is not one trajectory, and the `repro watch`
    /// sparkline refuses to plot a cross-host mix. `None` on points
    /// appended before this field existed.
    pub host: Option<String>,
    /// Wall-clock append time, milliseconds since the Unix epoch (gives
    /// the trajectory an x-axis). `None` on legacy points.
    pub unix_ms: Option<u64>,
}

// Serde is hand-written so the provenance fields are *omitted* — not
// `null` — when absent, and legacy trajectory lines (which predate them)
// keep parsing.
impl Serialize for PerfPoint {
    fn to_value(&self) -> serde::Value {
        let mut m: Vec<(String, serde::Value)> = vec![
            ("schema".into(), self.schema.to_value()),
            ("mode".into(), self.mode.to_value()),
            ("reps".into(), self.reps.to_value()),
            ("summaries".into(), self.summaries.to_value()),
            (
                "speedup_vs_baseline".into(),
                self.speedup_vs_baseline.to_value(),
            ),
        ];
        if let Some(h) = &self.host {
            m.push(("host".into(), h.to_value()));
        }
        if let Some(ms) = self.unix_ms {
            m.push(("unix_ms".into(), ms.to_value()));
        }
        serde::Value::Map(m)
    }
}

impl Deserialize for PerfPoint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v.as_map_for("PerfPoint")?;
        Ok(PerfPoint {
            schema: serde::field(m, "schema", "PerfPoint")?,
            mode: serde::field(m, "mode", "PerfPoint")?,
            reps: serde::field(m, "reps", "PerfPoint")?,
            summaries: serde::field(m, "summaries", "PerfPoint")?,
            speedup_vs_baseline: serde::field(m, "speedup_vs_baseline", "PerfPoint")?,
            host: serde::field(m, "host", "PerfPoint")?,
            unix_ms: serde::field(m, "unix_ms", "PerfPoint")?,
        })
    }
}

/// Schema tag of [`PerfPoint`] trajectory records.
pub const TRAJECTORY_SCHEMA: &str = "cata-perf-point/v1";

/// Appends `report` to the JSONL trajectory at `path` (one atomic line:
/// serialize + `\n`, a single `write_all` on an append handle).
pub fn append_trajectory(path: &str, report: &PerfReport) -> Result<(), String> {
    use std::io::Write as _;
    let mut line = serde_json::to_string(&report.trajectory_point()).map_err(|e| e.to_string())?;
    line.push('\n');
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| e.to_string())?;
    f.write_all(line.as_bytes()).map_err(|e| e.to_string())
}

/// The full harness output (`BENCH_engine.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Format tag.
    pub schema: String,
    /// `full` or `smoke` (CI runs smoke).
    pub mode: String,
    /// Timing repetitions per cell (best is kept).
    pub reps: u64,
    /// Trace mode of the measured runs (always `off`).
    pub trace: String,
    /// Every measured cell.
    pub runs: Vec<PerfRun>,
    /// Per-size aggregates.
    pub summaries: Vec<PerfSummary>,
    /// The previous report's medium-workload summary, if one was given.
    pub baseline_medium: Option<PerfSummary>,
    /// `medium events/sec ÷ baseline medium events/sec`.
    pub speedup_vs_baseline: Option<f64>,
}

/// The harness workloads: the paper's Dedup pipeline at the three
/// generator scales. Smoke mode drops `large` to stay CI-fast.
pub fn perf_workloads(smoke: bool) -> Vec<(&'static str, WorkloadSpec)> {
    let mut w = vec![
        (
            "small",
            WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, PERF_SEED),
        ),
        (
            "medium",
            WorkloadSpec::parsec(Benchmark::Dedup, Scale::Small, PERF_SEED),
        ),
    ];
    if !smoke {
        w.push((
            "large",
            WorkloadSpec::parsec(Benchmark::Dedup, Scale::Paper, PERF_SEED),
        ));
    }
    w
}

/// Runs the full measurement matrix: every paper preset on every harness
/// workload, `reps` timed repetitions each (plus one untimed warm-up that
/// also populates the shared graph cache), tracing off.
pub fn run_perf(smoke: bool, reps: usize) -> PerfReport {
    let reps = reps.max(1);
    let exec = SimExecutor::default();
    let registries = cata_core::exp::default_registries();
    let mut runs = Vec::new();
    let mut summaries = Vec::new();

    for (size, workload) in perf_workloads(smoke) {
        let mut size_events = 0u64;
        let mut size_wall = 0.0f64;
        for preset in cata_core::exp::spec::PAPER_PRESETS {
            let mut spec =
                ScenarioSpec::preset(preset, 16, workload.clone()).expect("paper preset resolves");
            spec.trace = TraceMode::Off;

            // Warm up: generates + caches the graph and faults in code.
            let warm = exec
                .run_spec(&spec, registries)
                .unwrap_or_else(|e| panic!("{preset}/{size}: {e}"))
                .0;
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let _ = std::hint::black_box(
                    exec.run_spec(&spec, registries)
                        .unwrap_or_else(|e| panic!("{preset}/{size}: {e}")),
                );
                best = best.min(t0.elapsed().as_secs_f64());
            }
            let events = warm.counters.sim_events;
            size_events += events;
            size_wall += best;
            runs.push(PerfRun {
                workload: size.to_string(),
                preset: preset.to_string(),
                tasks: warm.tasks as u64,
                events,
                wall_s: best,
                events_per_sec: events as f64 / best.max(1e-12),
            });
        }
        summaries.push(PerfSummary {
            workload: size.to_string(),
            events: size_events,
            wall_s: size_wall,
            events_per_sec: size_events as f64 / size_wall.max(1e-12),
        });
    }

    PerfReport {
        schema: "cata-bench-engine/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        reps: reps as u64,
        trace: "off".to_string(),
        runs,
        summaries,
        baseline_medium: None,
        speedup_vs_baseline: None,
    }
}

impl PerfReport {
    /// The medium-workload aggregate. Reports produced by [`run_perf`]
    /// always have one (smoke keeps medium), but a hand-edited or foreign
    /// baseline file may not.
    pub fn medium(&self) -> Option<&PerfSummary> {
        self.summaries.iter().find(|s| s.workload == "medium")
    }

    /// Embeds `baseline`'s medium summary and the speedup ratio. A
    /// baseline without a medium summary is ignored (fields stay `None`).
    pub fn with_baseline(mut self, baseline: &PerfReport) -> Self {
        let (Some(cur), Some(base)) = (self.medium(), baseline.medium()) else {
            return self;
        };
        let ratio = cur.events_per_sec / base.events_per_sec.max(1e-12);
        self.baseline_medium = Some(base.clone());
        self.speedup_vs_baseline = Some(ratio);
        self
    }

    /// Boils the report down to its trajectory point (see [`PerfPoint`]),
    /// stamped with the measuring host's fingerprint and the wall clock.
    pub fn trajectory_point(&self) -> PerfPoint {
        PerfPoint {
            schema: TRAJECTORY_SCHEMA.to_string(),
            mode: self.mode.clone(),
            reps: self.reps,
            summaries: self.summaries.clone(),
            speedup_vs_baseline: self.speedup_vs_baseline,
            host: Some(cata_core::exp::host_fingerprint()),
            unix_ms: Some(cata_core::exp::now_unix_ms()),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("perf report serializes")
    }

    /// Parses a report (e.g. a previous `BENCH_engine.json`).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Human-readable table for the console.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:<10} {:>7} {:>10} {:>9} {:>13}",
            "size", "preset", "tasks", "events", "wall ms", "events/sec"
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "{:<8} {:<10} {:>7} {:>10} {:>9.2} {:>13.0}",
                r.workload,
                r.preset,
                r.tasks,
                r.events,
                r.wall_s * 1e3,
                r.events_per_sec
            );
        }
        for s in &self.summaries {
            let _ = writeln!(
                out,
                "{:<8} {:<10} {:>7} {:>10} {:>9.2} {:>13.0}",
                s.workload,
                "TOTAL",
                "",
                s.events,
                s.wall_s * 1e3,
                s.events_per_sec
            );
        }
        if let (Some(base), Some(speedup), Some(cur)) = (
            &self.baseline_medium,
            self.speedup_vs_baseline,
            self.medium(),
        ) {
            let _ = writeln!(
                out,
                "medium vs baseline: {:.0} -> {:.0} events/sec ({speedup:.2}x)",
                base.events_per_sec, cur.events_per_sec
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_point_carries_provenance_and_legacy_lines_parse() {
        let point = PerfPoint {
            schema: TRAJECTORY_SCHEMA.into(),
            mode: "smoke".into(),
            reps: 1,
            summaries: vec![PerfSummary {
                workload: "medium".into(),
                events: 10,
                wall_s: 0.5,
                events_per_sec: 20.0,
            }],
            speedup_vs_baseline: None,
            host: Some("deadbeefdeadbeef".into()),
            unix_ms: Some(1_700_000_000_000),
        };
        let json = serde_json::to_string(&point).unwrap();
        assert!(json.contains("\"host\""), "{json}");
        let back: PerfPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.host.as_deref(), Some("deadbeefdeadbeef"));
        assert_eq!(back.unix_ms, Some(1_700_000_000_000));

        // A pre-provenance trajectory line (no host/unix_ms, null speedup)
        // must keep parsing.
        let legacy = r#"{"schema":"cata-perf-point/v1","mode":"smoke","reps":1,
            "summaries":[],"speedup_vs_baseline":null}"#;
        let old: PerfPoint = serde_json::from_str(legacy).unwrap();
        assert!(old.host.is_none() && old.unix_ms.is_none());

        // Fresh reports stamp both fields.
        let stamped = run_perf(true, 1).trajectory_point();
        assert_eq!(stamped.host, Some(cata_core::exp::host_fingerprint()));
        assert!(stamped.unix_ms.is_some());
    }

    #[test]
    fn smoke_report_round_trips() {
        let report = run_perf(true, 1);
        assert_eq!(report.runs.len(), 12, "6 presets x 2 smoke workloads");
        let medium = report.medium().expect("smoke keeps the medium workload");
        assert!(medium.events > 0);
        assert!(medium.events_per_sec > 0.0);
        let json = report.to_json_pretty();
        let parsed = PerfReport::from_json(&json).expect("report parses");
        assert_eq!(parsed.runs.len(), report.runs.len());
        assert_eq!(
            parsed.medium().map(|m| m.events),
            report.medium().map(|m| m.events)
        );

        let chained = run_perf(true, 1).with_baseline(&report);
        assert!(chained.speedup_vs_baseline.unwrap() > 0.0);
        assert!(chained.baseline_medium.is_some());

        // A baseline without a medium summary is ignored, not a panic.
        let mut no_medium = report.clone();
        no_medium.summaries.retain(|s| s.workload != "medium");
        let unchained = run_perf(true, 1).with_baseline(&no_medium);
        assert!(unchained.baseline_medium.is_none());
        assert!(unchained.speedup_vs_baseline.is_none());
    }
}
