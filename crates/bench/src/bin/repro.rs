//! `repro` — regenerates every table and figure of the paper, and runs
//! arbitrary `ScenarioSpec` files, through the `exp` facade.
//!
//! ```text
//! repro table1          Table I (processor configuration)
//! repro fig4            Figure 4 (FIFO/CATS+BL/CATS+SA/CATA, speedup + EDP)
//! repro fig5            Figure 5 (CATA/CATA+RSU/TurboMode, speedup + EDP)
//! repro latency         §V-C reconfiguration latency / lock contention
//! repro rsu-overhead    §III-B-4 RSU storage/area/power
//! repro sweep-budget    A1: power-budget sensitivity
//! repro sweep-latency   A2: DVFS-latency sensitivity
//! repro sweep-threshold A3: BL threshold sensitivity
//! repro multilevel      A4: multi-level DVFS extension
//! repro all             everything above
//! repro run SPEC...     run scenario spec files (.json/.toml) as a suite
//! repro preset NAME...  run paper presets by label (FIFO, CATA, ...)
//! repro spec NAME       print a preset's spec as JSON (edit → `repro run`)
//! repro merge STORE...  merge JSONL result shards, render, gate vs baseline
//! repro perf            engine perf harness: events/sec -> BENCH_engine.json
//! ```
//!
//! Options: `--scale tiny|small|paper` (default `paper`), `--seed N`,
//! `--csv DIR` (also writes CSV files), `--jobs N` (parallel suite
//! workers; 0 = all host cores, default 0), `--bench NAME` (workload for
//! `preset`/`spec`), `--fast N` (fast cores for `preset`/`spec`),
//! `--toml` (emit TOML from `spec`).
//!
//! Sharded/stored suites (`run`/`preset`): `--shard K/N` keeps the
//! deterministic `K`-th of `N` slices of the cell grid, `--store FILE`
//! streams each completed cell into a JSONL results store and *resumes*
//! from it (already-completed cells are loaded, not re-run). `merge`
//! combines shard stores, prints the suite table from the store, writes
//! `--out FILE` if given, and — with `--baseline BENCH_engine.json` —
//! fails (exit 1) when merged events/sec drops below `--min-ratio`
//! (default 0.75) of the baseline's medium summary: the CI perf gate.
//!
//! `perf` options: `--smoke` (CI-sized), `--reps N` (timing repetitions,
//! default 5), `--out FILE` (default `BENCH_engine.json`), `--baseline
//! FILE` (embed a previous report's medium summary + speedup),
//! `--trajectory FILE` (append this run as one JSONL point to the
//! append-only perf trajectory).

use cata_bench::figures::{
    fig4_configs, fig5_configs, render_latency_analysis, render_panel, render_rsu_overhead,
    render_table1, Metric, FAST_CORE_COUNTS,
};
use cata_bench::matrix::{run_matrix, DEFAULT_SEED};
use cata_bench::sweeps;
use cata_bench::tables::Table;
use cata_core::exp::{CellRecord, ResultsStore, ScenarioSpec, Suite, WorkloadSpec};
use cata_core::{RunReport, SimExecutor};
use cata_workloads::{Benchmark, Scale};
use std::time::Instant;

struct Opts {
    cmd: String,
    /// Spec files (`run`), preset labels (`preset`/`spec`), or shard
    /// stores (`merge`).
    args: Vec<String>,
    scale: Scale,
    seed: u64,
    csv_dir: Option<String>,
    jobs: usize,
    bench: Benchmark,
    fast: usize,
    emit_toml: bool,
    smoke: bool,
    reps: usize,
    out: Option<String>,
    baseline: Option<String>,
    shard: Option<(usize, usize)>,
    store: Option<String>,
    min_ratio: f64,
    trajectory: Option<String>,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut cmd = None;
    let mut rest = Vec::new();
    let mut scale = Scale::Paper;
    let mut seed = DEFAULT_SEED;
    let mut csv_dir = None;
    let mut jobs = 0usize;
    let mut bench = Benchmark::Dedup;
    let mut fast = 16usize;
    let mut emit_toml = false;
    let mut smoke = false;
    let mut reps = 5usize;
    let mut out = None;
    let mut baseline = None;
    let mut shard = None;
    let mut store = None;
    let mut min_ratio = 0.75f64;
    let mut trajectory = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => die(&format!("bad --scale {other:?}")),
                }
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --seed"));
            }
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| die("missing --csv dir")));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --jobs"));
            }
            "--fast" => {
                fast = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --fast"));
            }
            "--bench" => {
                let name = args.next().unwrap_or_else(|| die("missing --bench name"));
                bench = Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| die(&format!("unknown benchmark {name}")));
            }
            "--toml" => emit_toml = true,
            "--smoke" => smoke = true,
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --reps"));
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| die("missing --out path")));
            }
            "--baseline" => {
                baseline = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --baseline path")),
                );
            }
            "--shard" => {
                let text = args.next().unwrap_or_else(|| die("missing --shard K/N"));
                let parsed = text
                    .split_once('/')
                    .and_then(|(k, n)| Some((k.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
                shard = Some(parsed.unwrap_or_else(|| die(&format!("bad --shard {text}"))));
            }
            "--store" => {
                store = Some(args.next().unwrap_or_else(|| die("missing --store path")));
            }
            "--min-ratio" => {
                min_ratio = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --min-ratio"));
            }
            "--trajectory" => {
                trajectory = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --trajectory path")),
                );
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_string()),
            other
                if matches!(cmd.as_deref(), Some("run" | "preset" | "spec" | "merge"))
                    && !other.starts_with('-') =>
            {
                rest.push(other.to_string())
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    Opts {
        cmd: cmd.unwrap_or_else(|| "all".into()),
        args: rest,
        scale,
        seed,
        csv_dir,
        jobs,
        bench,
        fast,
        emit_toml,
        smoke,
        reps,
        out,
        baseline,
        shard,
        store,
        min_ratio,
        trajectory,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_help();
    std::process::exit(2);
}

fn print_help() {
    eprintln!(
        "usage: repro [COMMAND] [ARGS] [--scale tiny|small|paper] [--seed N] [--csv DIR]\n\
         \x20             [--jobs N] [--bench NAME] [--fast N] [--toml]\n\
         commands: table1 fig4 fig5 latency rsu-overhead sweep-budget sweep-latency\n\
         \x20         sweep-threshold multilevel all\n\
         \x20         run SPEC.json|SPEC.toml...   preset LABEL...   spec LABEL\n\
         \x20             [--shard K/N] [--store FILE.jsonl]\n\
         \x20         merge STORE.jsonl... [--out FILE] [--baseline FILE] [--min-ratio R]\n\
         \x20         perf [--smoke] [--reps N] [--out FILE] [--baseline FILE]\n\
         \x20             [--trajectory FILE]"
    );
}

fn emit(opts: &Opts, name: &str, table: &Table, title: &str) {
    println!("== {title} ==\n{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
}

fn load_spec(path: &str) -> ScenarioSpec {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let parsed = if path.ends_with(".toml") {
        ScenarioSpec::from_toml(&text)
    } else {
        ScenarioSpec::from_json(&text)
    };
    parsed.unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// The run-summary table every suite/merge rendering shares.
fn report_table<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> Table {
    let mut table = Table::new(&[
        "config",
        "workload",
        "fast",
        "time",
        "energy J",
        "EDP",
        "tasks",
        "reconfigs",
    ]);
    for report in reports {
        table.row(vec![
            report.label.clone(),
            report.workload.clone(),
            report.fast_cores.to_string(),
            report.exec_time.to_string(),
            format!("{:.6}", report.energy.energy_j),
            format!("{:.6}", report.energy.edp),
            report.tasks.to_string(),
            report.counters.reconfigs_applied.to_string(),
        ]);
    }
    table
}

/// `repro run a.json b.toml …`: parse specs, fan them across the suite —
/// optionally a `--shard K/N` slice streamed into/resumed from a
/// `--store` JSONL file — and print one summary line per run.
fn run_specs(opts: &Opts, specs: Vec<ScenarioSpec>) {
    if specs.is_empty() {
        die("no specs given");
    }
    let mut suite = Suite::from_specs(specs).jobs(opts.jobs);
    if let Some((k, n)) = opts.shard {
        suite = suite.shard(k, n).unwrap_or_else(|e| die(&e.to_string()));
        println!("[shard {k}/{n}: {} of the grid's cells]", suite.len());
    }
    let exec = SimExecutor::default();
    let results = match &opts.store {
        Some(path) => {
            let store = ResultsStore::open(path).unwrap_or_else(|e| die(&e.to_string()));
            if store.recovered_torn_tail() {
                eprintln!("[store {path}: discarded a torn trailing line]");
            }
            let outcome = suite.run_with_store(&exec, &store);
            println!(
                "[store {path}: {} resumed, {} executed]",
                outcome.resumed, outcome.executed
            );
            outcome.results
        }
        None => suite.run(&exec),
    };
    let mut ok = Vec::new();
    let mut failed = 0;
    for result in results {
        match result {
            Ok(report) => {
                println!("{}", report.summary());
                ok.push(report);
            }
            Err(e) => {
                failed += 1;
                eprintln!("error: {e}");
            }
        }
    }
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/runs.csv");
        std::fs::write(&path, report_table(&ok).to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

/// `repro merge a.jsonl b.jsonl …`: combine shard stores, render the
/// suite table from the store, optionally write the merged store and gate
/// merged events/sec against a perf baseline.
fn merge_stores(opts: &Opts) {
    if opts.args.is_empty() {
        die("merge needs at least one store file");
    }
    let merged = ResultsStore::merge_files(&opts.args).unwrap_or_else(|e| die(&e.to_string()));
    if merged.truncated_shards > 0 {
        eprintln!(
            "[warning: {} shard(s) ended in a torn line — those cells are missing]",
            merged.truncated_shards
        );
    }
    if merged.distinct_grids > 1 {
        eprintln!(
            "[warning: records from {} distinct grids — shards of different \
             experiments may have been mixed, or a store was resumed after a \
             spec edit]",
            merged.distinct_grids
        );
    }
    println!(
        "[merged {} cells from {} shard(s), {} duplicate(s) collapsed]",
        merged.records.len(),
        opts.args.len(),
        merged.duplicates
    );
    let table = report_table(merged.records.iter().map(|r: &CellRecord| &r.report));
    println!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/merged.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
    if let Some(out) = &opts.out {
        ResultsStore::write_all(out, &merged.records).unwrap_or_else(|e| die(&e.to_string()));
        println!("[wrote {out}]");
    }
    if let Some(bpath) = &opts.baseline {
        let text = std::fs::read_to_string(bpath)
            .unwrap_or_else(|e| die(&format!("cannot read {bpath}: {e}")));
        let base = cata_bench::perf::PerfReport::from_json(&text)
            .unwrap_or_else(|e| die(&format!("{bpath}: {e}")));
        let Some(base_medium) = base.medium() else {
            eprintln!("[gate skipped: {bpath} has no medium summary]");
            return;
        };
        let events: u64 = merged
            .records
            .iter()
            .map(|r| r.report.counters.sim_events)
            .sum();
        let wall: f64 = merged.records.iter().map(|r| r.wall_s).sum();
        let eps = events as f64 / wall.max(1e-12);
        let ratio = eps / base_medium.events_per_sec.max(1e-12);
        println!(
            "[gate: merged {eps:.0} events/sec vs baseline {:.0} = {ratio:.2}x (min {:.2})]",
            base_medium.events_per_sec, opts.min_ratio
        );
        if ratio < opts.min_ratio {
            eprintln!(
                "error: merged throughput regressed below {:.0}% of the baseline",
                opts.min_ratio * 100.0
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let opts = parse_args();
    let benches = Benchmark::all();
    let t0 = Instant::now();
    let all = opts.cmd == "all";

    match opts.cmd.as_str() {
        "run" => {
            let specs = opts.args.iter().map(|p| load_spec(p)).collect();
            run_specs(&opts, specs);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "preset" => {
            let workload = WorkloadSpec::parsec(opts.bench, opts.scale, opts.seed);
            let labels: Vec<String> = if opts.args.is_empty() {
                [
                    "FIFO",
                    "CATS+BL",
                    "CATS+SA",
                    "CATA",
                    "CATA+RSU",
                    "TurboMode",
                ]
                .map(String::from)
                .to_vec()
            } else {
                opts.args.clone()
            };
            let specs = labels
                .iter()
                .map(|label| {
                    ScenarioSpec::preset(label, opts.fast, workload.clone())
                        .unwrap_or_else(|e| die(&e.to_string()))
                })
                .collect();
            run_specs(&opts, specs);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "spec" => {
            let label = opts.args.first().map(String::as_str).unwrap_or("CATA");
            let workload = WorkloadSpec::parsec(opts.bench, opts.scale, opts.seed);
            let spec = ScenarioSpec::preset(label, opts.fast, workload)
                .unwrap_or_else(|e| die(&e.to_string()));
            if opts.emit_toml {
                println!("{}", spec.to_toml());
            } else {
                println!("{}", spec.to_json_pretty());
            }
            return;
        }
        "merge" => {
            merge_stores(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "perf" => {
            println!(
                "[perf: {} mode, {} reps per cell, trace off]",
                if opts.smoke { "smoke" } else { "full" },
                opts.reps
            );
            let mut report = cata_bench::perf::run_perf(opts.smoke, opts.reps);
            if let Some(path) = &opts.baseline {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                let base = cata_bench::perf::PerfReport::from_json(&text)
                    .unwrap_or_else(|e| die(&format!("{path}: {e}")));
                report = report.with_baseline(&base);
            }
            print!("{}", report.render());
            let out = opts.out.as_deref().unwrap_or("BENCH_engine.json");
            std::fs::write(out, report.to_json_pretty()).expect("write perf report");
            println!("[wrote {out}]");
            if let Some(path) = &opts.trajectory {
                cata_bench::perf::append_trajectory(path, &report)
                    .unwrap_or_else(|e| die(&format!("{path}: {e}")));
                println!("[appended trajectory point to {path}]");
            }
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        _ => {}
    }

    if all || opts.cmd == "table1" {
        println!(
            "== Table I: processor configuration ==\n{}",
            render_table1()
        );
    }

    if all || opts.cmd == "fig4" {
        println!(
            "[fig4: running 4 configs x 6 benchmarks x {:?} fast cores at {} scale, jobs={}]",
            FAST_CORE_COUNTS,
            opts.scale.name(),
            opts.jobs
        );
        let m = run_matrix(
            &benches,
            &FAST_CORE_COUNTS,
            fig4_configs,
            opts.scale,
            opts.seed,
            opts.jobs,
        );
        let labels = ["FIFO", "CATS+BL", "CATS+SA", "CATA"];
        emit(
            &opts,
            "fig4_speedup",
            &render_panel(&m, &benches, &labels, Metric::Speedup),
            "Figure 4 (top): speedup over FIFO",
        );
        emit(
            &opts,
            "fig4_edp",
            &render_panel(&m, &benches, &labels, Metric::Edp),
            "Figure 4 (bottom): normalized EDP",
        );
    }

    if all || opts.cmd == "fig5" || opts.cmd == "latency" {
        println!(
            "[fig5: running 4 configs x 6 benchmarks x {:?} fast cores at {} scale, jobs={}]",
            FAST_CORE_COUNTS,
            opts.scale.name(),
            opts.jobs
        );
        let m = run_matrix(
            &benches,
            &FAST_CORE_COUNTS,
            fig5_configs,
            opts.scale,
            opts.seed,
            opts.jobs,
        );
        if all || opts.cmd == "fig5" {
            let labels = ["CATA", "CATA+RSU", "TurboMode"];
            emit(
                &opts,
                "fig5_speedup",
                &render_panel(&m, &benches, &labels, Metric::Speedup),
                "Figure 5 (top): speedup over FIFO",
            );
            emit(
                &opts,
                "fig5_edp",
                &render_panel(&m, &benches, &labels, Metric::Edp),
                "Figure 5 (bottom): normalized EDP",
            );
        }
        if all || opts.cmd == "latency" {
            emit(
                &opts,
                "latency",
                &render_latency_analysis(&m, &benches, 16),
                "Section V-C: software reconfiguration path analysis (16 fast cores)",
            );
        }
    }

    if all || opts.cmd == "rsu-overhead" {
        println!(
            "== Section III-B-4: RSU overhead ==\n{}",
            render_rsu_overhead()
        );
    }

    if all || opts.cmd == "sweep-budget" {
        emit(
            &opts,
            "sweep_budget",
            &sweeps::budget_sweep(
                Benchmark::Swaptions,
                opts.scale,
                &[4, 8, 12, 16, 20, 24, 28, 32],
            ),
            "Ablation A1: power-budget sweep (Swaptions, CATA+RSU)",
        );
    }

    if all || opts.cmd == "sweep-latency" {
        emit(
            &opts,
            "sweep_latency",
            &sweeps::latency_sweep(
                Benchmark::Fluidanimate,
                opts.scale,
                &[1, 5, 25, 100, 400, 1000],
            ),
            "Ablation A2: DVFS transition latency sweep (Fluidanimate, 16 fast)",
        );
    }

    if all || opts.cmd == "sweep-threshold" {
        emit(
            &opts,
            "sweep_threshold",
            &sweeps::threshold_sweep(
                Benchmark::Bodytrack,
                opts.scale,
                &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            ),
            "Ablation A3: bottom-level criticality threshold sweep (Bodytrack)",
        );
    }

    if all || opts.cmd == "multilevel" {
        emit(
            &opts,
            "multilevel",
            &sweeps::multilevel_sweep(Benchmark::Swaptions, opts.scale),
            "Ablation A4: multi-level DVFS extension (Swaptions)",
        );
    }

    if !all
        && ![
            "table1",
            "fig4",
            "fig5",
            "latency",
            "rsu-overhead",
            "sweep-budget",
            "sweep-latency",
            "sweep-threshold",
            "multilevel",
        ]
        .contains(&opts.cmd.as_str())
    {
        die(&format!("unknown command {}", opts.cmd));
    }

    eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
