//! `repro` — regenerates every table and figure of the paper, and runs
//! arbitrary `ScenarioSpec` files, through the `exp` facade.
//!
//! ```text
//! repro table1          Table I (processor configuration)
//! repro fig4            Figure 4 (FIFO/CATS+BL/CATS+SA/CATA, speedup + EDP)
//! repro fig5            Figure 5 (CATA/CATA+RSU/TurboMode, speedup + EDP)
//! repro latency         §V-C reconfiguration latency / lock contention
//! repro rsu-overhead    §III-B-4 RSU storage/area/power
//! repro sweep-budget    A1: power-budget sensitivity
//! repro sweep-latency   A2: DVFS-latency sensitivity
//! repro sweep-threshold A3: BL threshold sensitivity
//! repro multilevel      A4: multi-level DVFS extension
//! repro all             everything above
//! repro run SPEC...     run scenario spec files (.json/.toml) as a suite
//! repro serve TARGET    open-system service run (streaming arrivals)
//! repro preset NAME...  run paper presets by label (FIFO, CATA, ...)
//! repro spec NAME       print a preset's spec as JSON (edit → `repro run`)
//! repro export [SPEC]   write a workload's task graph as a .tdg.json
//! repro record TARGET   run + capture the graph as a calibrated .tdg.json
//! repro merge STORE...  merge JSONL result shards, render, gate vs baseline
//! repro gc STORE SPEC.. drop stored cells whose grid no longer names them
//! repro perf            engine perf harness: events/sec -> BENCH_engine.json
//! repro watch STORE...  operator console: live-tail stores + progress streams
//! repro replay KEY      re-run a stored cell bit-identically, diff the reports
//! ```
//!
//! Options: `--scale tiny|small|paper` (default `paper`), `--seed N`,
//! `--csv DIR` (also writes CSV files), `--jobs N` (parallel suite
//! workers; 0 = all host cores, default 0), `--bench NAME` (workload for
//! `preset`/`spec`), `--fast N` (fast cores for `preset`/`spec`),
//! `--toml` (emit TOML from `spec`).
//!
//! TDG capture & replay: `export` serializes a workload's task graph —
//! the `--bench`/`--scale`/`--seed` generator, or the workload of a given
//! spec file — to a digest-pinned `.tdg.json` ([`cata_tdg::TdgFile`]).
//! `record TARGET` (a preset label or a spec file) *executes* the scenario
//! and captures the graph it ran — on the native backend each task's
//! profile carries the *observed* wall duration, so the artifact replays
//! host-calibrated on the simulator. Replay goes through the existing
//! paths: `--tdg FILE` makes `preset`/`spec` use the file (content-digest
//! pinned) as their workload, and `run` accepts spec files whose workload
//! is `Inline`/`File`. An exported generator replayed from its `.tdg.json`
//! produces a bit-identical sim report.
//!
//! Service mode (`serve`): `repro serve TARGET` — a preset label or a
//! `ServiceSpec` JSON file — runs the open-system engine, where graph
//! instances *arrive continuously* instead of one graph running to
//! completion. Traffic comes from exactly one source: `--rate R`
//! arrivals/sec (`--arrival poisson|fixed`, default poisson, over
//! `--duration T`, e.g. `50ms`), or `--tape FILE` replaying a recorded
//! traffic tape (digest-pinned, bit-identical). `--record-tape FILE`
//! saves a generated run's traffic for later replay; `--admission P`
//! (`admit-all`/`queue-cap`/`shed-noncritical`) and `--queue-cap N`
//! pick the front-door policy; `--store FILE` appends the run as a
//! JSONL cell. The report adds p50/p99/p999 response time, queue-wait
//! vs service-time split, sustained graphs/sec, and drop accounting.
//!
//! Fault injection (`run`/`preset`/`serve`): `--faults FILE.json` loads a
//! `FaultSpec`, `--fault-cores 0@1ms,3@2ms+5ms` schedules core fail-stop /
//! fail-recover events, `--fault-rate P` injects transient task faults,
//! `--recovery KEY` picks the displaced-work policy (`retry-same-core`,
//! `reroute-prefer-fast`, `shed-noncritical-on-degraded`). Faulted runs
//! print a `fault:` accounting line ending in the deterministic
//! `FaultReport` digest; `--fault-axis` (run/preset) pairs every cell
//! with its fault-free twin in the grid.
//!
//! Memory interference (`run`/`preset`/`serve`): `--mem-slots N` bounds
//! the shared memory subsystem's concurrent accesses (comma list expands
//! the grid; `inf` = uncontended), `--arbitration KEY` picks who waits
//! (`fifo`, `crit-first`, `round-robin`). Contended runs print a
//! `memory:` accounting line ending in the deterministic `MemoryReport`
//! digest; `--mem-axis` (run/preset) keeps every cell's memory-free twin
//! first in the grid.
//!
//! Backends (`run`/`preset`/`gc`): `--backend sim|native|both` selects the
//! executor per cell (`both` duplicates every spec into a sim + native
//! pair, side by side in the grid); native cells run the thread-pool
//! runtime on a mock DVFS backend and report calibrated modeled energy —
//! or RAPL-measured joules with `--native-energy auto` on a host whose
//! powercap counters are readable.
//!
//! Sharded/stored suites (`run`/`preset`): `--shard K/N` keeps the
//! deterministic `K`-th of `N` slices of the cell grid (`--shard-order
//! snake` deals cells cost-aware serpentine instead of `i % N` striping;
//! `--calibrate-costs PRIOR.jsonl` fits the ranking's generator cost
//! weights from a prior sweep's recorded wall times — pass the same store
//! to every shard), `--store FILE` streams each completed cell into a
//! JSONL results store
//! and *resumes* from it (already-completed cells are loaded, not
//! re-run). `merge` combines shard stores, prints the suite table from
//! the store, writes `--out FILE` if given, renders paper-figure panels
//! from the records with `--fig fig4|fig5`, and — with `--baseline
//! BENCH_engine.json` — fails (exit 1) when merged events/sec drops below
//! `--min-ratio` (default 0.75) of the baseline's medium summary: the CI
//! perf gate. `gc STORE SPEC... [--spec FILE]` rewrites a store keeping
//! only records whose `(index, spec_digest)` the given grid still names.
//!
//! `perf` options: `--smoke` (CI-sized), `--reps N` (timing repetitions,
//! default 5), `--out FILE` (default `BENCH_engine.json`), `--baseline
//! FILE` (embed a previous report's medium summary + speedup),
//! `--trajectory FILE` (append this run as one JSONL point to the
//! append-only perf trajectory).
//!
//! Operator console (`watch`): `repro watch [STORE.jsonl...]` live-tails
//! one or more shard stores — plus `--progress FILE` heartbeat sidecars
//! and a `--trajectory FILE` perf series — into a terminal dashboard:
//! grid-completion heatmap, events/sec sparkline, per-cell accounting,
//! `Enter` for a finished cell's detail pane. `--once` renders a single
//! headless frame to stdout (CI-friendly, auto-sized so every cell gets a
//! table row); `--until-done [--timeout S]` polls headlessly until the
//! grid completes, then prints the final frame; `--interval-ms N`,
//! `--width N`, `--height N` tune the loop. Runs *emit* the heartbeats:
//! `run`/`preset` (with `--store`) and `serve` accept `--progress FILE`
//! and stream `cata-progress/v1` records — cell-start / cell-finish /
//! grid / service snapshots — with the store's atomic-append discipline.
//! Telemetry is best-effort and purely observational: results, digests,
//! and stores are byte-identical with or without it.
//!
//! Replay (`replay`): `repro replay CELL_KEY --store FILE.jsonl` finds
//! the stored cell (by exact key or grid index), re-runs its embedded
//! spec on the deterministic sim backend, and diffs the fresh report
//! against the stored one — exit 0 on a bit-identical match, 1 on
//! divergence. Records predating spec embedding (or `serve` cells, whose
//! service spec is not a scenario spec) are refused with a clear error.

use cata_bench::figures::{
    fig4_configs, fig5_configs, figure_labels, render_latency_analysis, render_panel,
    render_panel_at, render_rsu_overhead, render_table1, Metric, FAST_CORE_COUNTS,
};
use cata_bench::matrix::{run_matrix, MatrixResult, DEFAULT_SEED};
use cata_bench::sweeps;
use cata_bench::tables::{fmt_energy, Table};
use cata_core::exp::{
    spec_digest, Backend, BackendDispatch, CellRecord, CostCalibration, EnergySource, Executor,
    NativeExecutor, ProgressWriter, ResultsStore, Scenario, ScenarioSpec, ShardOrder, Suite,
    WorkloadSpec, STORE_SCHEMA,
};
use cata_core::fault::FaultSpec;
use cata_core::mem::{default_arbitration_registry, MemorySpec};
use cata_core::service::{
    default_admission_registry, replay_tape_observed, run_service_observed, AdmissionParams,
    ArrivalSpec, ServiceSpec, TrafficTape,
};
use cata_core::{
    exp::{default_registries, host_fingerprint, now_unix_ms},
    RunReport, SimExecutor,
};
use cata_cpufreq::backend::{DvfsBackend, MockDvfs};
use cata_obs::{run_watch, WatchConfig};
use cata_sim::time::SimDuration;
use cata_tdg::TdgFile;
use cata_workloads::{Benchmark, Scale};
use std::sync::Arc;
use std::time::Instant;

struct Opts {
    cmd: String,
    /// Spec files (`run`/`gc`), preset labels (`preset`/`spec`), or shard
    /// stores (`merge`).
    args: Vec<String>,
    scale: Scale,
    seed: u64,
    csv_dir: Option<String>,
    jobs: usize,
    bench: Benchmark,
    fast: usize,
    emit_toml: bool,
    smoke: bool,
    reps: usize,
    out: Option<String>,
    baseline: Option<String>,
    shard: Option<(usize, usize)>,
    shard_order: ShardOrder,
    store: Option<String>,
    /// `--calibrate-costs FILE.jsonl`: fit snake-shard cost multipliers
    /// from a prior sweep's recorded wall times (every shard of one grid
    /// must pass the same store).
    calibrate_costs: Option<String>,
    /// `--event-queue KEY`: pin every cell's event-queue backend
    /// (`heap`/`calendar-wheel`). A speed knob only — reports are
    /// bit-identical across backends — but pinned specs serialize the key
    /// and so digest differently from default ones.
    event_queue: Option<String>,
    min_ratio: f64,
    trajectory: Option<String>,
    /// `--progress FILE`: heartbeat sidecars. Emitters (`run`/`preset`
    /// with `--store`, `serve`) accept exactly one; `watch` tails many
    /// (repeat the flag, one per shard).
    progress: Vec<String>,
    /// `watch --once`: render one headless frame and exit.
    watch_once: bool,
    /// `watch --until-done`: poll headlessly until the grid completes.
    watch_until_done: bool,
    /// `watch --timeout S`: give up on `--until-done` after S seconds.
    watch_timeout_s: Option<u64>,
    /// `watch --interval-ms N`: tail-poll cadence (default 250).
    watch_interval_ms: Option<u64>,
    /// `watch --width N` / `--height N`: frame-size overrides.
    watch_width: Option<usize>,
    watch_height: Option<usize>,
    /// Which backend(s) `run`/`preset`/`gc` grids use. `None` (no
    /// `--backend` flag) keeps each spec's own backend field — a spec
    /// file that says `"backend": "native"` runs native; `both`
    /// duplicates every spec into a sim + native pair.
    backend: Option<BackendSel>,
    /// Native energy policy (`auto` = RAPL when readable, else model).
    native_energy: EnergySource,
    /// `--spec FILE` grid files for `gc`.
    spec_files: Vec<String>,
    /// `merge --fig fig4|fig5`: render figure panels from the merged store.
    fig: Option<String>,
    /// `--tdg FILE`: replay this TDG file as the workload of
    /// `preset`/`spec`/`serve` (content-digest pinned at parse time).
    tdg: Option<String>,
    /// `serve --rate R`: generated arrival rate, graph instances/sec.
    rate: Option<f64>,
    /// `serve --arrival poisson|fixed`: shape of generated traffic.
    arrival: Option<ArrivalKind>,
    /// `serve --tape FILE`: replay this traffic tape instead of
    /// generating arrivals (mutually exclusive with `--rate`).
    tape: Option<String>,
    /// `serve --duration T`: arrival window (`50ms`, `2s`, `500us`;
    /// a bare number is milliseconds).
    duration: Option<SimDuration>,
    /// `serve --admission P`: admission-policy registry key.
    admission: Option<String>,
    /// `serve --queue-cap N`: in-flight cap for the bounded policies.
    queue_cap: Option<usize>,
    /// `serve --record-tape FILE`: save the generated traffic tape.
    record_tape: Option<String>,
    /// `--faults FILE.json`: load a [`FaultSpec`] file (run/preset/serve).
    faults: Option<String>,
    /// `--fault-cores LIST`: core fail-stop shorthand (`0@1ms,3@2ms+5ms`).
    fault_cores: Option<String>,
    /// `--fault-rate P`: transient task-fault probability per completion.
    fault_rate: Option<f64>,
    /// `--recovery KEY`: recovery-policy registry key for displaced work.
    recovery: Option<String>,
    /// `--fault-axis`: run each cell twice — fault-free twin, then the
    /// faulted cell — side by side in the suite grid.
    fault_axis: bool,
    /// `--mem-slots LIST`: shared-memory bandwidth slots (`1`, `2,4`,
    /// `inf`; `inf`/`0` = uncontended). A comma list expands the grid.
    mem_slots: Option<Vec<u64>>,
    /// `--arbitration LIST`: memory arbitration keys (comma list expands
    /// the grid; default `fifo`).
    arbitration: Option<Vec<String>>,
    /// `--mem-axis`: keep each cell's memory-free twin first, then the
    /// contended variants — side by side in the suite grid.
    mem_axis: bool,
    /// Generator flags the user passed *explicitly* (`--bench`,
    /// `--scale`, `--seed`), so commands that take a SPEC file can
    /// reject them instead of silently ignoring a conflicting source.
    generator_flags: Vec<&'static str>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArrivalKind {
    Poisson,
    Fixed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendSel {
    Sim,
    Native,
    Both,
}

impl BackendSel {
    /// Expands one spec into the selected backend cells (`both` keeps the
    /// sim cell first, then its native twin — side by side in the grid).
    fn expand(self, spec: ScenarioSpec) -> Vec<ScenarioSpec> {
        match self {
            BackendSel::Sim => vec![spec.with_backend(Backend::Sim)],
            BackendSel::Native => vec![spec.with_backend(Backend::Native)],
            BackendSel::Both => vec![
                spec.clone().with_backend(Backend::Sim),
                spec.with_backend(Backend::Native),
            ],
        }
    }
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut cmd = None;
    let mut rest = Vec::new();
    let mut scale = Scale::Paper;
    let mut seed = DEFAULT_SEED;
    let mut csv_dir = None;
    let mut jobs = 0usize;
    let mut bench = Benchmark::Dedup;
    let mut fast = 16usize;
    let mut emit_toml = false;
    let mut smoke = false;
    let mut reps = 5usize;
    let mut out = None;
    let mut baseline = None;
    let mut shard = None;
    let mut shard_order = ShardOrder::Striped;
    let mut store = None;
    let mut calibrate_costs = None;
    let mut event_queue = None;
    let mut min_ratio = 0.75f64;
    let mut trajectory = None;
    let mut progress = Vec::new();
    let mut watch_once = false;
    let mut watch_until_done = false;
    let mut watch_timeout_s = None;
    let mut watch_interval_ms = None;
    let mut watch_width = None;
    let mut watch_height = None;
    let mut backend = None;
    let mut native_energy = EnergySource::Auto;
    let mut spec_files = Vec::new();
    let mut fig = None;
    let mut tdg = None;
    let mut rate = None;
    let mut arrival = None;
    let mut tape = None;
    let mut duration = None;
    let mut admission = None;
    let mut queue_cap = None;
    let mut record_tape = None;
    let mut faults = None;
    let mut fault_cores = None;
    let mut fault_rate = None;
    let mut recovery = None;
    let mut fault_axis = false;
    let mut mem_slots = None;
    let mut arbitration = None;
    let mut mem_axis = false;
    let mut generator_flags = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                generator_flags.push("--scale");
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => die(&format!("bad --scale {other:?}")),
                }
            }
            "--seed" => {
                generator_flags.push("--seed");
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --seed"));
            }
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| die("missing --csv dir")));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --jobs"));
            }
            "--fast" => {
                fast = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --fast"));
            }
            "--bench" => {
                generator_flags.push("--bench");
                let name = args.next().unwrap_or_else(|| die("missing --bench name"));
                bench = Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| die(&format!("unknown benchmark {name}")));
            }
            "--toml" => emit_toml = true,
            "--smoke" => smoke = true,
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --reps"));
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| die("missing --out path")));
            }
            "--baseline" => {
                baseline = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --baseline path")),
                );
            }
            "--shard" => {
                let text = args.next().unwrap_or_else(|| die("missing --shard K/N"));
                let parsed = text
                    .split_once('/')
                    .and_then(|(k, n)| Some((k.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
                shard = Some(parsed.unwrap_or_else(|| die(&format!("bad --shard {text}"))));
            }
            "--store" => {
                store = Some(args.next().unwrap_or_else(|| die("missing --store path")));
            }
            "--calibrate-costs" => {
                calibrate_costs = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --calibrate-costs store")),
                );
            }
            "--event-queue" => {
                let key = args
                    .next()
                    .unwrap_or_else(|| die("missing --event-queue key"));
                // Validate up front so a typo dies naming the known
                // backends instead of failing mid-suite.
                cata_core::exp::default_event_queue_registry()
                    .resolve(&key)
                    .unwrap_or_else(|e| die(&e.to_string()));
                event_queue = Some(key);
            }
            "--shard-order" => {
                let text = args
                    .next()
                    .unwrap_or_else(|| die("missing --shard-order striped|snake"));
                shard_order = text.parse().unwrap_or_else(|e: String| die(&e));
            }
            "--backend" => {
                backend = Some(match args.next().as_deref() {
                    Some("sim") => BackendSel::Sim,
                    Some("native") => BackendSel::Native,
                    Some("both") => BackendSel::Both,
                    other => die(&format!("bad --backend {other:?} (want sim|native|both)")),
                });
            }
            "--native-energy" => {
                native_energy = match args.next().as_deref() {
                    Some("auto") => EnergySource::Auto,
                    Some("model") => EnergySource::Model,
                    other => die(&format!("bad --native-energy {other:?} (want auto|model)")),
                };
            }
            "--spec" => {
                spec_files.push(args.next().unwrap_or_else(|| die("missing --spec file")));
            }
            "--tdg" => {
                tdg = Some(args.next().unwrap_or_else(|| die("missing --tdg file")));
            }
            "--rate" => {
                let r: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --rate (want arrivals/sec)"));
                if !r.is_finite() || r <= 0.0 {
                    die(&format!("bad --rate {r} (want a positive arrivals/sec)"));
                }
                rate = Some(r);
            }
            "--arrival" => {
                arrival = Some(match args.next().as_deref() {
                    Some("poisson") => ArrivalKind::Poisson,
                    Some("fixed") => ArrivalKind::Fixed,
                    other => die(&format!("bad --arrival {other:?} (want poisson|fixed)")),
                });
            }
            "--tape" => {
                tape = Some(args.next().unwrap_or_else(|| die("missing --tape file")));
            }
            "--duration" => {
                let text = args
                    .next()
                    .unwrap_or_else(|| die("missing --duration (e.g. 50ms, 2s, 500us)"));
                duration = Some(
                    parse_duration(&text).unwrap_or_else(|| die(&format!("bad --duration {text}"))),
                );
            }
            "--admission" => {
                admission = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --admission key")),
                );
            }
            "--queue-cap" => {
                queue_cap = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("bad --queue-cap")),
                );
            }
            "--record-tape" => {
                record_tape = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --record-tape path")),
                );
            }
            "--faults" => {
                faults = Some(args.next().unwrap_or_else(|| die("missing --faults file")));
            }
            "--fault-cores" => {
                fault_cores =
                    Some(args.next().unwrap_or_else(|| {
                        die("missing --fault-cores list (e.g. 0@1ms,3@2ms+5ms)")
                    }));
            }
            "--fault-rate" => {
                let p: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --fault-rate (want a probability)"));
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    die(&format!(
                        "bad --fault-rate {p} (want a probability in [0, 1])"
                    ));
                }
                fault_rate = Some(p);
            }
            "--recovery" => {
                recovery = Some(args.next().unwrap_or_else(|| die("missing --recovery key")));
            }
            "--fault-axis" => fault_axis = true,
            "--mem-slots" => {
                let text = args
                    .next()
                    .unwrap_or_else(|| die("missing --mem-slots list (e.g. 1 or 2,4,inf)"));
                let parsed: Vec<u64> = text
                    .split(',')
                    .map(|s| match s.trim() {
                        "inf" | "unlimited" => 0,
                        n => n
                            .parse()
                            .unwrap_or_else(|_| die(&format!("bad --mem-slots entry {n:?}"))),
                    })
                    .collect();
                if parsed.is_empty() {
                    die("empty --mem-slots list");
                }
                mem_slots = Some(parsed);
            }
            "--arbitration" => {
                let text = args
                    .next()
                    .unwrap_or_else(|| die("missing --arbitration key(s)"));
                let keys: Vec<String> = text.split(',').map(|s| s.trim().to_string()).collect();
                // Validate up front so a typo dies naming the known
                // policies instead of failing mid-suite.
                for key in &keys {
                    default_arbitration_registry()
                        .build(key, &MemorySpec::default())
                        .unwrap_or_else(|e| die(&e.to_string()));
                }
                arbitration = Some(keys);
            }
            "--mem-axis" => mem_axis = true,
            "--fig" => {
                let name = args.next().unwrap_or_else(|| die("missing --fig name"));
                if figure_labels(&name).is_none() {
                    die(&format!("bad --fig {name} (want fig4|fig5)"));
                }
                fig = Some(name);
            }
            "--min-ratio" => {
                min_ratio = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --min-ratio"));
            }
            "--trajectory" => {
                trajectory = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --trajectory path")),
                );
            }
            "--progress" => {
                progress.push(
                    args.next()
                        .unwrap_or_else(|| die("missing --progress path")),
                );
            }
            "--once" => watch_once = true,
            "--until-done" => watch_until_done = true,
            "--timeout" => {
                watch_timeout_s = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("bad --timeout (want seconds)")),
                );
            }
            "--interval-ms" => {
                watch_interval_ms = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("bad --interval-ms")),
                );
            }
            "--width" => {
                watch_width = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("bad --width")),
                );
            }
            "--height" => {
                watch_height = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("bad --height")),
                );
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_string()),
            other
                if matches!(
                    cmd.as_deref(),
                    Some(
                        "run"
                            | "preset"
                            | "spec"
                            | "merge"
                            | "gc"
                            | "export"
                            | "record"
                            | "serve"
                            | "watch"
                            | "replay"
                    )
                ) && !other.starts_with('-') =>
            {
                rest.push(other.to_string())
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    Opts {
        cmd: cmd.unwrap_or_else(|| "all".into()),
        args: rest,
        scale,
        seed,
        csv_dir,
        jobs,
        bench,
        fast,
        emit_toml,
        smoke,
        reps,
        out,
        baseline,
        shard,
        shard_order,
        store,
        calibrate_costs,
        event_queue,
        min_ratio,
        trajectory,
        progress,
        watch_once,
        watch_until_done,
        watch_timeout_s,
        watch_interval_ms,
        watch_width,
        watch_height,
        backend,
        native_energy,
        spec_files,
        fig,
        tdg,
        rate,
        arrival,
        tape,
        duration,
        admission,
        queue_cap,
        record_tape,
        faults,
        fault_cores,
        fault_rate,
        recovery,
        fault_axis,
        mem_slots,
        arbitration,
        mem_axis,
        generator_flags,
    }
}

/// Parses a human duration (`50ms`, `2s`, `500us`, `1000ns`, `250ps`);
/// a bare number is milliseconds.
fn parse_duration(text: &str) -> Option<SimDuration> {
    let (num, ps_per_unit) = if let Some(t) = text.strip_suffix("ms") {
        (t, 1e9)
    } else if let Some(t) = text.strip_suffix("us") {
        (t, 1e6)
    } else if let Some(t) = text.strip_suffix("ns") {
        (t, 1e3)
    } else if let Some(t) = text.strip_suffix("ps") {
        (t, 1.0)
    } else if let Some(t) = text.strip_suffix('s') {
        (t, 1e12)
    } else {
        (text, 1e9)
    };
    let v: f64 = num.trim().parse().ok()?;
    if !v.is_finite() || v <= 0.0 {
        return None;
    }
    Some(SimDuration::from_ps((v * ps_per_unit).round() as u64))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_help();
    std::process::exit(2);
}

fn print_help() {
    eprintln!(
        "usage: repro [COMMAND] [ARGS] [--scale tiny|small|paper] [--seed N] [--csv DIR]\n\
         \x20             [--jobs N] [--bench NAME] [--fast N] [--toml]\n\
         commands: table1 fig4 fig5 latency rsu-overhead sweep-budget sweep-latency\n\
         \x20         sweep-threshold multilevel all\n\
         \x20         run SPEC.json|SPEC.toml...   preset LABEL...   spec LABEL\n\
         \x20             [--backend sim|native|both] [--native-energy auto|model]\n\
         \x20             [--shard K/N] [--shard-order striped|snake] [--store FILE.jsonl]\n\
         \x20             [--calibrate-costs PRIOR.jsonl]  (fit snake costs from wall times)\n\
         \x20             [--event-queue heap|calendar-wheel]  (run/preset/spec/serve)\n\
         \x20             [--tdg FILE.tdg.json]  (preset/spec: replay this TDG as the workload)\n\
         \x20         serve LABEL|SPEC.json [--rate R | --tape FILE.tape.jsonl]\n\
         \x20             [--arrival poisson|fixed] [--duration T] [--admission P]\n\
         \x20             [--queue-cap N] [--record-tape FILE] [--store FILE.jsonl]\n\
         \x20         run/preset/serve fault injection: [--faults FILE.json]\n\
         \x20             [--fault-cores 0@1ms,3@2ms+5ms] [--fault-rate P] [--recovery KEY]\n\
         \x20             [--fault-axis]  (run/preset: add the fault-free twin cells)\n\
         \x20         run/preset/serve memory interference: [--mem-slots 1|2,4,inf]\n\
         \x20             [--arbitration fifo|crit-first|round-robin]\n\
         \x20             [--mem-axis]  (run/preset: add the memory-free twin cells)\n\
         \x20         env: CATA_EVENT_QUEUE=heap|calendar-wheel  (backend when no\n\
         \x20             --event-queue flag or spec field pins one)\n\
         \x20         export [SPEC.json] [--out FILE.tdg.json]   (workload -> TDG file)\n\
         \x20         record LABEL|SPEC.json [--backend sim|native] [--out FILE.tdg.json]\n\
         \x20         merge STORE.jsonl... [--out FILE] [--baseline FILE] [--min-ratio R]\n\
         \x20             [--fig fig4|fig5]\n\
         \x20         gc STORE.jsonl SPEC... [--spec FILE] [--backend sim|native|both]\n\
         \x20         perf [--smoke] [--reps N] [--out FILE] [--baseline FILE]\n\
         \x20             [--trajectory FILE]\n\
         \x20         watch [STORE.jsonl...] [--progress FILE]... [--trajectory FILE]\n\
         \x20             [--once | --until-done [--timeout S]] [--interval-ms N]\n\
         \x20             [--width N] [--height N]   (operator console; q/j/k/Enter)\n\
         \x20         replay CELL_KEY|INDEX --store FILE.jsonl   (re-run a stored cell\n\
         \x20             bit-identically on the sim backend; exit 1 on divergence)\n\
         \x20         run/preset (with --store) and serve emit heartbeats with\n\
         \x20             [--progress FILE.progress.jsonl]  (cata-progress/v1 sidecar)"
    );
}

fn emit(opts: &Opts, name: &str, table: &Table, title: &str) {
    println!("== {title} ==\n{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
}

fn load_spec(path: &str) -> ScenarioSpec {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let parsed = if path.ends_with(".toml") {
        ScenarioSpec::from_toml(&text)
    } else {
        ScenarioSpec::from_json(&text)
    };
    parsed.unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// The run-summary table every suite/merge rendering shares. Energy-less
/// runs (legacy 0 J native records) render `n/a` in the energy/EDP columns
/// instead of `0.000000`, the `src` column names each cell's energy
/// provenance (simulated / modeled / rapl / none), and `cores` shows the
/// *effective* worker count where the executor clamped the spec's machine
/// to the host (`-` when the spec machine ran verbatim) — so a 32-core
/// spec run on an 8-core box is visibly an 8-core result.
fn report_table<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> Table {
    let mut table = Table::new(&[
        "config",
        "workload",
        "fast",
        "cores",
        "time",
        "energy J",
        "EDP",
        "src",
        "tasks",
        "reconfigs",
    ]);
    for report in reports {
        let has = report.energy.has_energy();
        table.row(vec![
            report.label.clone(),
            report.workload.clone(),
            report.fast_cores.to_string(),
            report
                .effective_cores
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".to_string()),
            report.exec_time.to_string(),
            fmt_energy(report.energy.energy_j, has),
            fmt_energy(report.energy.edp, has),
            report.energy.measurement.name().to_string(),
            report.tasks.to_string(),
            report.counters.reconfigs_applied.to_string(),
        ]);
    }
    table
}

/// Expands a spec list across the selected backends. Without `--backend`
/// each spec keeps its own backend field (a spec file that names
/// `"backend": "native"` runs native — and `gc` keeps its records);
/// `--backend both` interleaves each spec's sim and native cells so they
/// sit side by side in the grid and in every rendered table.
fn expand_backends(opts: &Opts, specs: Vec<ScenarioSpec>) -> Vec<ScenarioSpec> {
    match opts.backend {
        None => specs,
        Some(sel) => specs.into_iter().flat_map(|s| sel.expand(s)).collect(),
    }
}

/// The backend-aware executor `run`/`preset` fan suites across: sim cells
/// hit the simulator, native cells the thread-pool runtime driving a mock
/// DVFS backend (a real sysfs backend needs root; the mock records the
/// same decisions) with the configured energy source.
fn dispatch_executor(opts: &Opts) -> BackendDispatch {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    BackendDispatch::new().with_native(
        NativeExecutor::new()
            .energy_source(opts.native_energy)
            .backend(Arc::new(MockDvfs::new(workers, 1_000_000)) as Arc<dyn DvfsBackend>),
    )
}

/// The fault schedule the CLI flags describe, if any: `--faults FILE`
/// loads a [`FaultSpec`] JSON file, then `--fault-cores`, `--fault-rate`
/// and `--recovery` overlay individual fields (flags-only works too —
/// the rest of the spec defaults).
fn fault_overlay(opts: &Opts) -> Option<FaultSpec> {
    if opts.faults.is_none()
        && opts.fault_cores.is_none()
        && opts.fault_rate.is_none()
        && opts.recovery.is_none()
    {
        return None;
    }
    let mut spec = match &opts.faults {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            FaultSpec::from_json(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
        }
        None => FaultSpec::default(),
    };
    if let Some(text) = &opts.fault_cores {
        spec.core_failures = FaultSpec::parse_cores(text)
            .unwrap_or_else(|e| die(&format!("bad --fault-cores: {e}")));
    }
    if let Some(p) = opts.fault_rate {
        spec.task_fault_p = p;
    }
    if let Some(key) = &opts.recovery {
        spec.recovery = key.clone();
    }
    Some(spec)
}

/// Prints a run's fault accounting — the summary line plus the report
/// digest CI greps to assert same-seed determinism.
fn print_fault(report: &RunReport) {
    if let Some(f) = &report.fault {
        println!("fault: {} digest {}", f.summary(), f.digest());
    }
}

/// Applies the CLI fault schedule to a spec grid. With `--fault-axis`
/// each cell expands into its fault-free twin followed by the faulted
/// cell (named `LABEL+faults`), side by side in the grid — the
/// degradation comparison as one suite.
fn apply_faults(opts: &Opts, specs: Vec<ScenarioSpec>) -> Vec<ScenarioSpec> {
    let Some(f) = fault_overlay(opts) else {
        if opts.fault_axis {
            die("--fault-axis needs a fault schedule (--faults/--fault-cores/--fault-rate)");
        }
        return specs;
    };
    specs
        .into_iter()
        .flat_map(|spec| {
            let mut faulted = spec.clone();
            faulted.faults = Some(f.clone());
            if opts.fault_axis {
                faulted.name = format!("{}+faults", faulted.name);
                vec![spec, faulted]
            } else {
                vec![faulted]
            }
        })
        .collect()
}

/// The shared-memory configurations the CLI flags describe: the cross
/// product of `--mem-slots` and `--arbitration` (default `fifo`).
/// `--arbitration` alone is rejected — a policy needs contention to
/// arbitrate.
fn memory_overlay(opts: &Opts) -> Option<Vec<MemorySpec>> {
    let Some(slots) = &opts.mem_slots else {
        if opts.arbitration.is_some() {
            die("--arbitration needs --mem-slots N (a policy needs contention to arbitrate)");
        }
        return None;
    };
    let keys = opts
        .arbitration
        .clone()
        .unwrap_or_else(|| vec![cata_core::mem::DEFAULT_ARBITRATION.to_string()]);
    let mut specs = Vec::new();
    for &n in slots {
        for key in &keys {
            specs.push(MemorySpec {
                slots: n,
                arbitration: key.clone(),
            });
        }
    }
    Some(specs)
}

/// `inf` for the unlimited sentinel, the count otherwise — the cell-name
/// suffix and the summary tables read the same way.
fn fmt_slots(slots: u64) -> String {
    if slots == 0 {
        "inf".to_string()
    } else {
        slots.to_string()
    }
}

/// Applies the CLI memory configurations to a spec grid. One
/// configuration replaces each cell in place (same name — the
/// uncontended digest check in CI relies on `slots=inf` serializing yet
/// reporting identically); several, or `--mem-axis`, expand each cell
/// into named `LABEL+memN/KEY` variants — with the memory-free twin kept
/// first under `--mem-axis` — side by side in the grid.
fn apply_memory(opts: &Opts, specs: Vec<ScenarioSpec>) -> Vec<ScenarioSpec> {
    let Some(mems) = memory_overlay(opts) else {
        if opts.mem_axis {
            die("--mem-axis needs --mem-slots N (and optionally --arbitration)");
        }
        return specs;
    };
    let rename = opts.mem_axis || mems.len() > 1;
    specs
        .into_iter()
        .flat_map(|spec| {
            let mut cells = Vec::new();
            if opts.mem_axis {
                cells.push(spec.clone());
            }
            for m in &mems {
                let mut contended = spec.clone();
                if rename {
                    contended.name = format!(
                        "{}+mem{}/{}",
                        contended.name,
                        fmt_slots(m.slots),
                        m.arbitration
                    );
                }
                contended.memory = Some(m.clone());
                cells.push(contended);
            }
            cells
        })
        .collect()
}

/// Prints a run's memory-interference accounting — the summary line plus
/// the report digest CI greps to compare arbitration policies.
fn print_memory(report: &RunReport) {
    if let Some(m) = &report.memory {
        println!("memory: {} digest {}", m.summary(), m.digest());
    }
}

/// Applies `--event-queue KEY` to every cell of a grid (the key was
/// validated at parse time).
fn apply_event_queue(opts: &Opts, specs: Vec<ScenarioSpec>) -> Vec<ScenarioSpec> {
    let Some(key) = &opts.event_queue else {
        return specs;
    };
    specs
        .into_iter()
        .map(|s| s.with_event_queue(key.clone()))
        .collect()
}

/// `repro run a.json b.toml …`: parse specs, fan them across the suite —
/// optionally a `--shard K/N` slice streamed into/resumed from a
/// `--store` JSONL file — and print one summary line per run.
fn run_specs(opts: &Opts, specs: Vec<ScenarioSpec>) {
    if specs.is_empty() {
        die("no specs given");
    }
    let specs = apply_faults(opts, specs);
    let specs = apply_memory(opts, specs);
    let specs = apply_event_queue(opts, specs);
    let specs = expand_backends(opts, specs);
    let calibration = opts.calibrate_costs.as_ref().map(|path| {
        let (records, _) = ResultsStore::load(path).unwrap_or_else(|e| die(&e.to_string()));
        let cal = CostCalibration::fit(&records, &specs);
        println!(
            "[calibrated {} cost families from {} of {} records in {path}]",
            cal.scale.len(),
            cal.observations,
            records.len()
        );
        cal
    });
    let mut suite = Suite::from_specs(specs).jobs(opts.jobs);
    if let Some(cal) = calibration {
        suite = suite.calibrate_costs(cal);
    }
    if let Some((k, n)) = opts.shard {
        suite = suite
            .shard_ordered(k, n, opts.shard_order)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!("[shard {k}/{n}: {} of the grid's cells]", suite.len());
    }
    let exec = dispatch_executor(opts);
    let results = match &opts.store {
        Some(path) => {
            let store = ResultsStore::open(path).unwrap_or_else(|e| die(&e.to_string()));
            if store.recovered_torn_tail() {
                eprintln!("[store {path}: discarded a torn trailing line]");
            }
            let progress = progress_writer(opts);
            let outcome = suite.run_with_store_observed(&exec, &store, progress.as_ref());
            println!(
                "[store {path}: {} resumed, {} executed]",
                outcome.resumed, outcome.executed
            );
            outcome.results
        }
        None => suite.run(&exec),
    };
    let mut ok = Vec::new();
    let mut failed = 0;
    for result in results {
        match result {
            Ok(report) => {
                println!("{}", report.summary());
                print_fault(&report);
                print_memory(&report);
                ok.push(report);
            }
            Err(e) => {
                failed += 1;
                eprintln!("error: {e}");
            }
        }
    }
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/runs.csv");
        std::fs::write(&path, report_table(&ok).to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Opens the `--progress` heartbeat sidecar, if one was requested. The
/// writer's shard id matches `--shard K/N` so a multi-shard watch can
/// tell the streams apart; emission itself is best-effort downstream.
fn progress_writer(opts: &Opts) -> Option<ProgressWriter> {
    let path = opts.progress.first()?;
    let shard = opts.shard.map(|(k, _)| k as u64).unwrap_or(0);
    Some(ProgressWriter::open(path, shard).unwrap_or_else(|e| die(&e.to_string())))
}

/// `repro serve TARGET`: run the open-system service engine — graph
/// instances arriving continuously into one simulation — from a preset
/// label or a `ServiceSpec` JSON file. Traffic comes from exactly one
/// source: `--rate` (generated, optionally `--record-tape`d) or
/// `--tape` (replayed, digest-pinned); mixing them is rejected up
/// front rather than silently preferring one.
fn serve_service(opts: &Opts) {
    let Some(target) = opts.args.first() else {
        die("serve needs a preset label or a ServiceSpec JSON file");
    };
    // The two traffic sources are mutually exclusive — and the flags
    // that shape *generated* traffic make no sense next to a tape,
    // whose records already are the window and the arrival pattern.
    if opts.tape.is_some() {
        if opts.rate.is_some() {
            die(
                "serve: --rate conflicts with --tape — generate traffic at a rate, \
                 or replay a recorded tape, but not both (pick one source)",
            );
        }
        if opts.arrival.is_some() {
            die("serve: --arrival shapes generated traffic and conflicts with --tape");
        }
        if opts.duration.is_some() {
            die("serve: --duration conflicts with --tape — the tape is the observation window");
        }
        if opts.record_tape.is_some() {
            die("serve: --record-tape conflicts with --tape — the run would re-record its input");
        }
    }
    if opts.arrival.is_some() && opts.rate.is_none() {
        die("serve: --arrival needs --rate R to generate traffic");
    }

    let is_spec_file = target.ends_with(".json") || target.ends_with(".toml");
    let mut spec = if is_spec_file {
        if target.ends_with(".toml") {
            die("serve specs are JSON (`ServiceSpec` has no TOML form)");
        }
        reject_conflicting_sources(opts, "serve");
        let text = std::fs::read_to_string(target)
            .unwrap_or_else(|e| die(&format!("cannot read {target}: {e}")));
        ServiceSpec::from_json(&text).unwrap_or_else(|e| die(&format!("{target}: {e}")))
    } else {
        if opts.rate.is_none() && opts.tape.is_none() {
            die(&format!(
                "serve {target}: pass --rate R (generated traffic) or --tape FILE \
                 (replayed traffic)"
            ));
        }
        let mut base = ScenarioSpec::preset(target, opts.fast, base_workload(opts))
            .unwrap_or_else(|e| die(&e.to_string()));
        base.seed = opts.seed;
        if let Some(key) = &opts.event_queue {
            base = base.with_event_queue(key.clone());
        }
        // The arrival fields below are overwritten by the flag block;
        // the placeholder only exists so tape-only runs validate.
        ServiceSpec::new(
            base,
            ArrivalSpec::Tape {
                digest: String::new(),
            },
            SimDuration::from_ms(100),
        )
    };

    if let Some(rate_hz) = opts.rate {
        spec.arrival = match opts.arrival.unwrap_or(ArrivalKind::Poisson) {
            ArrivalKind::Poisson => ArrivalSpec::Poisson { rate_hz },
            ArrivalKind::Fixed => ArrivalSpec::Fixed { rate_hz },
        };
        if opts.duration.is_none() && !is_spec_file {
            println!("[no --duration given: defaulting to 100ms of arrivals]");
        }
    }
    if let Some(d) = opts.duration {
        spec.duration = d;
    }
    if let Some(key) = &opts.admission {
        spec.admission = key.clone();
    }
    if let Some(cap) = opts.queue_cap {
        spec.admission_params = Some(AdmissionParams {
            queue_cap: Some(cap),
        });
    }
    if let Some(f) = fault_overlay(opts) {
        spec.base.faults = Some(f);
    }
    if let Some(mems) = memory_overlay(opts) {
        if mems.len() > 1 {
            die("serve is a single run — pass one --mem-slots value and one --arbitration key");
        }
        spec.base.memory = mems.into_iter().next();
    }

    let progress = progress_writer(opts);
    let started_ms = now_unix_ms();
    let t0 = Instant::now();
    let report = match &opts.tape {
        Some(path) => {
            let (tape, truncated) = TrafficTape::load(path).unwrap_or_else(|e| die(&e.to_string()));
            if truncated {
                eprintln!("[tape {path}: discarded a torn trailing record]");
            }
            // A spec whose arrival already pins a tape digest keeps its
            // pin (replay enforces it); any other arrival is replaced by
            // an unpinned tape arrival — the authoring flow.
            if !matches!(spec.arrival, ArrivalSpec::Tape { .. }) {
                spec.arrival = ArrivalSpec::Tape {
                    digest: String::new(),
                };
            }
            println!(
                "[replaying {path}: {} arrivals, digest {}]",
                tape.records.len(),
                tape.digest
            );
            replay_tape_observed(
                &spec,
                &tape,
                default_registries(),
                default_admission_registry(),
                progress.as_ref(),
            )
            .unwrap_or_else(|e| die(&e.to_string()))
        }
        None => {
            if matches!(spec.arrival, ArrivalSpec::Tape { .. }) {
                die(&format!(
                    "serve {target}: the spec's arrival is a tape; pass --tape FILE with \
                     the recorded traffic (or --rate R to generate instead)"
                ));
            }
            let (report, tape) = run_service_observed(
                &spec,
                default_registries(),
                default_admission_registry(),
                progress.as_ref(),
            )
            .unwrap_or_else(|e| die(&e.to_string()));
            if let Some(out) = &opts.record_tape {
                std::fs::write(out, tape.to_jsonl())
                    .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
                println!(
                    "[recorded tape: {} arrivals, digest {} -> {out}]",
                    tape.records.len(),
                    tape.digest
                );
            }
            report
        }
    };
    let wall_s = t0.elapsed().as_secs_f64();

    println!("{}", report.summary());
    print_fault(&report);
    print_memory(&report);
    let service = report
        .service
        .as_ref()
        .expect("service runs always carry service metrics");
    println!("service: {}", service.summary());
    let mut table = Table::new(&["metric", "count", "p50", "p99", "p999", "mean", "max"]);
    for (name, h) in [
        ("response", &service.latency),
        ("queue wait", &service.queue_wait),
        ("service time", &service.service_time),
    ] {
        table.row(vec![
            name.to_string(),
            h.count().to_string(),
            h.quantile(0.5).to_string(),
            h.quantile(0.99).to_string(),
            h.quantile(0.999).to_string(),
            h.mean().to_string(),
            h.max().to_string(),
        ]);
    }
    println!("{}", table.render());

    if let Some(path) = &opts.store {
        let store = ResultsStore::open(path).unwrap_or_else(|e| die(&e.to_string()));
        let digest = spec.digest();
        // Service runs are single cells, not suite-grid members: the
        // spec digest is both the cell's identity and its "grid", and
        // the index is the digest reinterpreted — collision-free per
        // distinct spec, stable across re-runs (resume-friendly).
        // `spec: None` deliberately: a `ServiceSpec` is not a
        // `ScenarioSpec`, so serve cells are not `repro replay`able —
        // replay refuses them with a clear error instead.
        let record = CellRecord {
            schema: STORE_SCHEMA.to_string(),
            index: u64::from_str_radix(&digest, 16).unwrap_or(0),
            cell: format!(
                "{}@{}/f{}/serve",
                spec.base.name, report.workload, spec.base.fast_cores
            ),
            grid: digest.clone(),
            spec_digest: digest,
            seed: spec.base.seed,
            wall_s,
            report: report.clone(),
            host: Some(host_fingerprint()),
            started_unix_ms: Some(started_ms),
            finished_unix_ms: Some(now_unix_ms()),
            spec: None,
        };
        store
            .append(&record)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!("[stored service cell {} in {path}]", record.cell);
    }
}

/// `repro merge a.jsonl b.jsonl …`: combine shard stores, render the
/// suite table from the store, optionally write the merged store and gate
/// merged events/sec against a perf baseline.
fn merge_stores(opts: &Opts) {
    if opts.args.is_empty() {
        die("merge needs at least one store file");
    }
    let merged = ResultsStore::merge_files(&opts.args).unwrap_or_else(|e| die(&e.to_string()));
    if merged.truncated_shards > 0 {
        eprintln!(
            "[warning: {} shard(s) ended in a torn line — those cells are missing]",
            merged.truncated_shards
        );
    }
    if merged.distinct_grids > 1 {
        eprintln!(
            "[warning: records from {} distinct grids — shards of different \
             experiments may have been mixed, or a store was resumed after a \
             spec edit]",
            merged.distinct_grids
        );
    }
    println!(
        "[merged {} cells from {} shard(s), {} duplicate(s) collapsed]",
        merged.records.len(),
        opts.args.len(),
        merged.duplicates
    );
    let table = report_table(merged.records.iter().map(|r: &CellRecord| &r.report));
    println!("{}", table.render());
    // Contended cells carry memory-interference accounting: render the
    // policy comparison (critical wait under fifo vs crit-first sits
    // side by side when the store came from a `--mem-axis` sweep).
    if merged.records.iter().any(|r| r.report.memory.is_some()) {
        let mut mem_table = Table::new(&[
            "config",
            "slots",
            "arbitration",
            "requests",
            "waited",
            "total wait",
            "max wait",
            "crit req",
            "crit wait",
        ]);
        for rec in &merged.records {
            let Some(m) = &rec.report.memory else {
                continue;
            };
            mem_table.row(vec![
                rec.report.label.clone(),
                fmt_slots(m.slots),
                m.arbitration.clone(),
                m.requests.to_string(),
                m.waited.to_string(),
                m.total_wait.to_string(),
                m.max_wait.to_string(),
                m.crit_requests.to_string(),
                m.crit_wait.to_string(),
            ]);
        }
        println!("== memory interference ==\n{}", mem_table.render());
    }
    if let Some(fig) = &opts.fig {
        render_figure_from_records(opts, fig, &merged.records);
    }
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/merged.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
    if let Some(out) = &opts.out {
        ResultsStore::write_all(out, &merged.records).unwrap_or_else(|e| die(&e.to_string()));
        println!("[wrote {out}]");
    }
    if let Some(bpath) = &opts.baseline {
        let text = std::fs::read_to_string(bpath)
            .unwrap_or_else(|e| die(&format!("cannot read {bpath}: {e}")));
        let base = cata_bench::perf::PerfReport::from_json(&text)
            .unwrap_or_else(|e| die(&format!("{bpath}: {e}")));
        let Some(base_medium) = base.medium() else {
            eprintln!("[gate skipped: {bpath} has no medium summary]");
            return;
        };
        let events: u64 = merged
            .records
            .iter()
            .map(|r| r.report.counters.sim_events)
            .sum();
        let wall: f64 = merged.records.iter().map(|r| r.wall_s).sum();
        let eps = events as f64 / wall.max(1e-12);
        let ratio = eps / base_medium.events_per_sec.max(1e-12);
        println!(
            "[gate: merged {eps:.0} events/sec vs baseline {:.0} = {ratio:.2}x (min {:.2})]",
            base_medium.events_per_sec, opts.min_ratio
        );
        if ratio < opts.min_ratio {
            eprintln!(
                "error: merged throughput regressed below {:.0}% of the baseline",
                opts.min_ratio * 100.0
            );
            std::process::exit(1);
        }
    }
}

/// The backend a stored cell ran on, recovered from its cell key
/// (`label@workload/fN/backend`; legacy records lack the suffix = sim).
fn record_backend(rec: &CellRecord) -> &str {
    match rec.cell.rsplit('/').next() {
        Some("native") => "native",
        _ => "sim",
    }
}

/// `repro merge … --fig fig4|fig5`: assemble a `MatrixResult` from the
/// merged records and render the figure's speedup + EDP panels — paper
/// figures straight from sharded CI stores, no re-simulation. A
/// two-backend store renders one figure per backend (sim and native cells
/// share `(benchmark, fast, label)` and must not be mixed in one panel).
fn render_figure_from_records(opts: &Opts, fig: &str, records: &[CellRecord]) {
    let labels = figure_labels(fig).expect("validated at parse time");
    for backend in ["sim", "native"] {
        let subset: Vec<&CellRecord> = records
            .iter()
            .filter(|r| record_backend(r) == backend)
            .collect();
        if subset.is_empty() {
            continue;
        }
        let m = MatrixResult::from_records(subset.iter().copied())
            .unwrap_or_else(|e| die(&format!("--fig {fig} [{backend}]: {e}")));
        let benches = m.benchmarks();
        let fasts = m.fast_core_counts();
        if benches.is_empty() || fasts.is_empty() {
            die(&format!(
                "--fig {fig} [{backend}]: the merged store has no paper-benchmark cells"
            ));
        }
        let present: Vec<&str> = labels
            .iter()
            .copied()
            .filter(|l| m.labels().iter().any(|have| have == l))
            .collect();
        if !present.contains(&"FIFO") {
            die(&format!(
                "--fig {fig} [{backend}]: the store has no FIFO cells to normalize against"
            ));
        }
        // Figures iterate the full benchmark × fast × label cross product;
        // a partial store (one shard, or an interrupted sweep) must be a
        // clear error, not a "missing cell" panic mid-render.
        let mut missing = Vec::new();
        for &b in &benches {
            for &f in &fasts {
                for &l in &present {
                    if !m.reports.contains_key(&(b, f, l.to_string())) {
                        missing.push(format!("{}/{f}/{l}", b.name()));
                    }
                }
            }
        }
        if !missing.is_empty() {
            die(&format!(
                "--fig {fig} [{backend}]: store is not a complete grid — merge all \
                 shards first ({} missing cell(s), e.g. {})",
                missing.len(),
                missing[..missing.len().min(4)].join(", ")
            ));
        }
        for (metric, title) in [
            (Metric::Speedup, "speedup over FIFO"),
            (Metric::Edp, "normalized EDP"),
        ] {
            let panel = render_panel_at(&m, &benches, &fasts, &present, metric);
            let suffix = if metric == Metric::Speedup {
                "speedup"
            } else {
                "edp"
            };
            emit(
                opts,
                &format!("{fig}_{suffix}_{backend}_merged"),
                &panel,
                &format!("{fig} ({title}) from merged store [{backend}]"),
            );
        }
    }
}

/// The workload `preset`/`spec`/`export`/`record` operate on: the
/// `--bench/--scale/--seed` generator, or — with `--tdg FILE` — the
/// digest-pinned replay of a TDG file.
fn base_workload(opts: &Opts) -> WorkloadSpec {
    match &opts.tdg {
        Some(path) => {
            // Same rule as the SPEC-file guard: an explicit generator
            // flag next to --tdg would be silently ignored — the TDG
            // file already pins the whole graph.
            if !opts.generator_flags.is_empty() {
                die(&format!(
                    "{} conflict(s) with --tdg — the TDG file already pins the \
                     workload (pick one source)",
                    opts.generator_flags.join("/")
                ));
            }
            WorkloadSpec::tdg_file_pinned(path).unwrap_or_else(|e| die(&e.to_string()))
        }
        None => WorkloadSpec::parsec(opts.bench, opts.scale, opts.seed),
    }
}

/// A SPEC-file argument fully determines the workload; any *explicit*
/// alternative-source flag alongside it (`--tdg`, `--bench`, `--scale`,
/// `--seed`) would be silently ignored — reject the combination instead
/// so the user never exports/records a different graph than they named.
fn reject_conflicting_sources(opts: &Opts, cmd: &str) {
    if opts.tdg.is_some() {
        die(&format!(
            "{cmd}: --tdg conflicts with a SPEC argument (pick one workload source)"
        ));
    }
    if !opts.generator_flags.is_empty() {
        die(&format!(
            "{cmd}: {} conflict(s) with a SPEC argument — the spec file already \
             pins the workload (pick one source)",
            opts.generator_flags.join("/")
        ));
    }
}

/// True when `a` and `b` name the same file (the destination may not
/// exist yet, so its parent is canonicalized instead).
fn same_file(a: &str, b: &str) -> bool {
    fn canon(p: &str) -> Option<std::path::PathBuf> {
        let path = std::path::Path::new(p);
        path.canonicalize().ok().or_else(|| {
            let parent = match path.parent() {
                Some(d) if !d.as_os_str().is_empty() => d,
                _ => std::path::Path::new("."),
            };
            Some(parent.canonicalize().ok()?.join(path.file_name()?))
        })
    }
    match (canon(a), canon(b)) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

/// Writes a TDG artifact in the format its extension names — the same
/// dispatch every loader uses, so an exported file always loads back.
fn write_tdg(out: &str, tdg: &TdgFile) {
    let text = if out.ends_with(".toml") {
        tdg.to_toml()
    } else {
        tdg.to_json_pretty()
    };
    std::fs::write(out, text).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
}

/// `repro export [SPEC.json] [--out FILE]`: serialize a workload's task
/// graph — the flag-selected generator, or the workload of a given spec
/// file — as a digest-pinned `.tdg.json`, ready to edit and replay.
fn export_tdg(opts: &Opts) {
    let workload = match opts.args.first() {
        Some(path) => {
            reject_conflicting_sources(opts, "export");
            load_spec(path).workload
        }
        None => base_workload(opts),
    };
    // `capture()` produces the artifact from one workload load — a
    // separate graph build + label lookup would read an unpinned file
    // twice and could mix revisions.
    let (_graph, tdg) = workload.capture().unwrap_or_else(|e| die(&e.to_string()));
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.tdg.json", tdg.name));
    // The default name can collide with the very file the workload came
    // from (`export --tdg app.tdg.json` for a TDG named "app") — refuse
    // to clobber the source unless --out names it explicitly.
    if opts.out.is_none() {
        let source = opts.tdg.as_deref().or(match &workload {
            WorkloadSpec::File { path, .. } => Some(path.as_str()),
            _ => None,
        });
        if let Some(src) = source {
            if same_file(src, &out) {
                die(&format!(
                    "export would overwrite its own input {src}; pass --out to choose \
                     a destination"
                ));
            }
        }
    }
    write_tdg(&out, &tdg);
    println!(
        "[exported {}: {} tasks, {} types, digest {} -> {out}]",
        tdg.name,
        tdg.num_tasks(),
        tdg.types.len(),
        tdg.digest
    );
}

/// `repro record LABEL|SPEC.json [--backend sim|native] [--out FILE]`:
/// execute the scenario *and capture the graph it ran* as a replayable
/// `.tdg.json`. On the native backend each task's profile carries its
/// observed wall duration (host-calibrated replay); on the simulator the
/// capture equals the spec's graph and replays bit-identically.
fn record_tdg(opts: &Opts) {
    let Some(target) = opts.args.first() else {
        die("record needs a preset label or a spec file");
    };
    let mut spec = if target.ends_with(".json") || target.ends_with(".toml") {
        reject_conflicting_sources(opts, "record");
        load_spec(target)
    } else {
        ScenarioSpec::preset(target, opts.fast, base_workload(opts))
            .unwrap_or_else(|e| die(&e.to_string()))
    };
    match opts.backend {
        None => {}
        Some(BackendSel::Sim) => spec.backend = Backend::Sim,
        Some(BackendSel::Native) => spec.backend = Backend::Native,
        Some(BackendSel::Both) => die("record captures one run; use --backend sim|native"),
    }
    // The path the workload replays from, if any — `--tdg FILE`, or a
    // SPEC file whose workload is `File { path }` — so the output guard
    // below can refuse to clobber it.
    let replay_source: Option<String> = opts.tdg.clone().or(match &spec.workload {
        WorkloadSpec::File { path, .. } => Some(path.clone()),
        _ => None,
    });
    let scenario = Scenario::from_spec(spec);
    let exec = dispatch_executor(opts);
    let (report, captured) = exec
        .execute_captured(&scenario)
        .unwrap_or_else(|e| die(&e.to_string()));
    println!("{}", report.summary());
    // The default name is distinct from `export`'s `{name}.tdg.json`, so
    // `record CATA --tdg Dedup.tdg.json` cannot clobber the replay
    // source — but re-recording a *previously recorded* artifact (via
    // `--tdg` or a spec whose `File` workload names one) would default
    // to its own input path, so the collision is checked explicitly like
    // `export` does.
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.recorded.tdg.json", captured.tdg.name));
    if opts.out.is_none() {
        if let Some(src) = replay_source.as_deref() {
            if same_file(src, &out) {
                die(&format!(
                    "record would overwrite its own input {src}; pass --out to choose \
                     a destination"
                ));
            }
        }
    }
    write_tdg(&out, &captured.tdg);
    println!(
        "[recorded {} on {}{}: {} tasks, digest {} -> {out}]",
        captured.tdg.name,
        captured.backend,
        if captured.calibrated {
            ", observed durations"
        } else {
            ", spec profiles"
        },
        captured.tdg.num_tasks(),
        captured.tdg.digest
    );
}

/// `repro gc STORE SPEC…`: drop records whose `(index, spec_digest)` no
/// longer appears in the grid the spec files (expanded across `--backend`)
/// describe — store hygiene after spec edits or grid reshapes.
fn gc_store(opts: &Opts) {
    let Some((store_path, rest)) = opts.args.split_first() else {
        die("gc needs a store file (repro gc STORE.jsonl SPEC... [--spec FILE])");
    };
    let spec_paths: Vec<&String> = rest.iter().chain(&opts.spec_files).collect();
    if spec_paths.is_empty() {
        die("gc needs at least one spec file describing the current grid");
    }
    let specs: Vec<ScenarioSpec> = spec_paths.iter().map(|p| load_spec(p)).collect();
    let suite = Suite::from_specs(expand_backends(opts, specs));
    let (kept, dropped) =
        ResultsStore::gc(store_path, &suite.grid_pairs()).unwrap_or_else(|e| die(&e.to_string()));
    println!("[gc {store_path}: kept {kept}, dropped {dropped} stale record(s)]");
}

/// `repro watch [STORE...]`: the operator console. Tails the given
/// stores (positional or `--store`), `--progress` sidecars, and the
/// `--trajectory` perf series into the live dashboard — or a headless
/// frame with `--once`/`--until-done`.
fn watch_dashboard(opts: &Opts) {
    let mut stores: Vec<std::path::PathBuf> =
        opts.args.iter().map(std::path::PathBuf::from).collect();
    if let Some(s) = &opts.store {
        stores.push(std::path::PathBuf::from(s));
    }
    let progress: Vec<std::path::PathBuf> =
        opts.progress.iter().map(std::path::PathBuf::from).collect();
    let trajectory = opts.trajectory.as_ref().map(std::path::PathBuf::from);
    if stores.is_empty() && progress.is_empty() && trajectory.is_none() {
        die(
            "watch needs something to tail: store files (positional or --store), \
             --progress FILE sidecars, or a --trajectory FILE",
        );
    }
    if opts.watch_once && opts.watch_until_done {
        die("watch: --once renders immediately and conflicts with --until-done");
    }
    if opts.watch_timeout_s.is_some() && !opts.watch_until_done {
        die("watch: --timeout only bounds --until-done");
    }
    let cfg = WatchConfig {
        stores,
        progress,
        trajectory,
        interval_ms: opts.watch_interval_ms.unwrap_or(250),
        once: opts.watch_once,
        until_done: opts.watch_until_done,
        timeout_s: opts.watch_timeout_s,
        width: opts.watch_width,
        height: opts.watch_height,
    };
    if let Err(e) = run_watch(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// `repro replay CELL_KEY --store FILE`: re-run a stored cell from its
/// embedded spec on the deterministic sim backend and diff the fresh
/// report against the stored one. Exit 0 when bit-identical, 1 on
/// divergence — the store's own determinism check.
fn replay_stored_cell(opts: &Opts) {
    let Some(key) = opts.args.first() else {
        die("replay needs a cell key (or grid index) from the store");
    };
    let Some(store_path) = &opts.store else {
        die("replay needs --store FILE.jsonl naming the results store");
    };
    let (records, truncated) =
        ResultsStore::load(store_path).unwrap_or_else(|e| die(&e.to_string()));
    if truncated {
        eprintln!("[store {store_path}: discarded a torn trailing line]");
    }
    let index: Option<u64> = key.parse().ok();
    // Last match wins: a resumed store may hold several attempts of one
    // cell, and the newest is the one the suite would have kept.
    let record = records
        .iter()
        .rev()
        .find(|r| r.cell == **key || Some(r.index) == index)
        .unwrap_or_else(|| {
            let known: Vec<&str> = records.iter().map(|r| r.cell.as_str()).take(8).collect();
            die(&format!(
                "no cell {key:?} in {store_path} (first cells: {})",
                known.join(", ")
            ))
        });
    let Some(spec) = &record.spec else {
        die(&format!(
            "cell {} carries no embedded spec — records from pre-observability \
             sweeps and `serve` cells cannot be replayed (re-run the sweep to \
             stamp specs into the store)",
            record.cell
        ));
    };
    if spec_digest(spec) != record.spec_digest {
        die(&format!(
            "cell {}: embedded spec digests to {} but the record pins {} — \
             the store is corrupt",
            record.cell,
            spec_digest(spec),
            record.spec_digest
        ));
    }
    if spec.backend == Backend::Native {
        die(&format!(
            "cell {} ran on the native backend, which is host-timed and not \
             bit-replayable; only sim cells replay deterministically",
            record.cell
        ));
    }
    println!(
        "[replaying cell {} (index {}, seed {}, spec {})]",
        record.cell, record.index, record.seed, record.spec_digest
    );
    let fresh = SimExecutor::default()
        .execute(&Scenario::from_spec(spec.clone()))
        .unwrap_or_else(|e| die(&e.to_string()));
    let fresh_json = serde_json::to_string(&fresh).expect("report serializes");
    let stored_json = serde_json::to_string(&record.report).expect("report serializes");
    if fresh_json == stored_json {
        println!(
            "[replay OK: report bit-identical to the stored cell ({} bytes)]",
            stored_json.len()
        );
    } else {
        eprintln!(
            "error: replay diverged from the stored report\n  stored: {} bytes, digest {}\n  fresh:  {} bytes, digest {}",
            stored_json.len(),
            cata_tdg::fnv1a_hex(stored_json.bytes()),
            fresh_json.len(),
            cata_tdg::fnv1a_hex(fresh_json.bytes()),
        );
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_args();
    // `--tdg` replaces the generator workload of the commands that build
    // one; accepting it anywhere else would silently run something other
    // than what the user asked to replay (`run`/`gc` take spec files —
    // put the TDG in the spec's workload there).
    if opts.tdg.is_some()
        && !matches!(
            opts.cmd.as_str(),
            "preset" | "spec" | "export" | "record" | "serve"
        )
    {
        die(&format!(
            "--tdg is not used by `{}` (only preset/spec/export/record/serve replay a TDG file)",
            opts.cmd
        ));
    }
    // Fault flags only shape run/preset/serve cells; anywhere else they
    // would be silently ignored.
    let has_fault_flags = opts.faults.is_some()
        || opts.fault_cores.is_some()
        || opts.fault_rate.is_some()
        || opts.recovery.is_some()
        || opts.fault_axis;
    if has_fault_flags && !matches!(opts.cmd.as_str(), "run" | "preset" | "serve") {
        die(&format!(
            "fault flags are not used by `{}` (only run/preset/serve inject faults)",
            opts.cmd
        ));
    }
    if opts.fault_axis && opts.cmd == "serve" {
        die("--fault-axis expands suite grids; `serve` is a single run (drop the flag)");
    }
    // Memory flags gate the same way: only run/preset/serve build the
    // cells they shape.
    let has_mem_flags = opts.mem_slots.is_some() || opts.arbitration.is_some() || opts.mem_axis;
    if has_mem_flags && !matches!(opts.cmd.as_str(), "run" | "preset" | "serve") {
        die(&format!(
            "memory flags are not used by `{}` (only run/preset/serve model interference)",
            opts.cmd
        ));
    }
    if opts.mem_axis && opts.cmd == "serve" {
        die("--mem-axis expands suite grids; `serve` is a single run (drop the flag)");
    }
    // Same silent-ignore class: `run`/`gc` operate on spec files whose
    // workloads are fully pinned, so an explicit generator flag next to
    // them would change nothing — reject it rather than run a workload
    // other than the one the flags described.
    if matches!(opts.cmd.as_str(), "run" | "gc") && !opts.generator_flags.is_empty() {
        die(&format!(
            "{} have no effect on `{}` — its spec files already pin the workload",
            opts.generator_flags.join("/"),
            opts.cmd
        ));
    }
    // Heartbeat sidecars: only run/preset/serve emit them and only watch
    // tails them; anywhere else the flag would be silently ignored.
    if !opts.progress.is_empty()
        && !matches!(opts.cmd.as_str(), "run" | "preset" | "serve" | "watch")
    {
        die(&format!(
            "--progress is not used by `{}` (run/preset/serve emit heartbeats, watch tails them)",
            opts.cmd
        ));
    }
    if matches!(opts.cmd.as_str(), "run" | "preset" | "serve") {
        if opts.progress.len() > 1 {
            die(&format!(
                "`{}` emits one heartbeat stream — pass --progress once (watch tails many)",
                opts.cmd
            ));
        }
        if !opts.progress.is_empty() && opts.cmd != "serve" && opts.store.is_none() {
            die(&format!(
                "`{}` --progress rides the store path — add --store FILE.jsonl",
                opts.cmd
            ));
        }
    }
    // Watch presentation flags shape only the dashboard loop.
    let has_watch_flags = opts.watch_once
        || opts.watch_until_done
        || opts.watch_timeout_s.is_some()
        || opts.watch_interval_ms.is_some()
        || opts.watch_width.is_some()
        || opts.watch_height.is_some();
    if has_watch_flags && opts.cmd != "watch" {
        die(&format!(
            "--once/--until-done/--timeout/--interval-ms/--width/--height only shape \
             `watch`, not `{}`",
            opts.cmd
        ));
    }
    let benches = Benchmark::all();
    let t0 = Instant::now();
    let all = opts.cmd == "all";

    match opts.cmd.as_str() {
        "run" => {
            let specs = opts.args.iter().map(|p| load_spec(p)).collect();
            run_specs(&opts, specs);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "preset" => {
            let workload = base_workload(&opts);
            let labels: Vec<String> = if opts.args.is_empty() {
                [
                    "FIFO",
                    "CATS+BL",
                    "CATS+SA",
                    "CATA",
                    "CATA+RSU",
                    "TurboMode",
                ]
                .map(String::from)
                .to_vec()
            } else {
                opts.args.clone()
            };
            let specs = labels
                .iter()
                .map(|label| {
                    ScenarioSpec::preset(label, opts.fast, workload.clone())
                        .unwrap_or_else(|e| die(&e.to_string()))
                })
                .collect();
            run_specs(&opts, specs);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "spec" => {
            let label = opts.args.first().map(String::as_str).unwrap_or("CATA");
            let workload = base_workload(&opts);
            let mut spec = ScenarioSpec::preset(label, opts.fast, workload)
                .unwrap_or_else(|e| die(&e.to_string()));
            if let Some(key) = &opts.event_queue {
                spec = spec.with_event_queue(key.clone());
            }
            if opts.emit_toml {
                println!("{}", spec.to_toml());
            } else {
                println!("{}", spec.to_json_pretty());
            }
            return;
        }
        "serve" => {
            serve_service(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "watch" => {
            watch_dashboard(&opts);
            return;
        }
        "replay" => {
            replay_stored_cell(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "export" => {
            export_tdg(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "record" => {
            record_tdg(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "merge" => {
            merge_stores(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "gc" => {
            gc_store(&opts);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "perf" => {
            println!(
                "[perf: {} mode, {} reps per cell, trace off]",
                if opts.smoke { "smoke" } else { "full" },
                opts.reps
            );
            let mut report = cata_bench::perf::run_perf(opts.smoke, opts.reps);
            if let Some(path) = &opts.baseline {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                let base = cata_bench::perf::PerfReport::from_json(&text)
                    .unwrap_or_else(|e| die(&format!("{path}: {e}")));
                report = report.with_baseline(&base);
                // Regression gate, per size: every workload size present
                // in both reports must hold `--min-ratio` of the
                // baseline's events/sec. Full mode therefore gates
                // `large` directly instead of via the medium proxy.
                let mut worst: Option<(&str, f64)> = None;
                for cur in &report.summaries {
                    let Some(b) = base.summaries.iter().find(|s| s.workload == cur.workload) else {
                        continue;
                    };
                    let ratio = cur.events_per_sec / b.events_per_sec.max(1e-12);
                    println!(
                        "[gate {}: {:.0} vs baseline {:.0} events/sec = {ratio:.2}x (min {:.2})]",
                        cur.workload, cur.events_per_sec, b.events_per_sec, opts.min_ratio
                    );
                    if ratio < opts.min_ratio && worst.is_none_or(|(_, w)| ratio < w) {
                        worst = Some((&cur.workload, ratio));
                    }
                }
                if let Some((size, ratio)) = worst {
                    eprintln!(
                        "error: {size} throughput regressed to {:.0}% of the baseline \
                         (min {:.0}%)",
                        ratio * 100.0,
                        opts.min_ratio * 100.0
                    );
                    std::process::exit(1);
                }
            }
            print!("{}", report.render());
            let out = opts.out.as_deref().unwrap_or("BENCH_engine.json");
            std::fs::write(out, report.to_json_pretty()).expect("write perf report");
            println!("[wrote {out}]");
            if let Some(path) = &opts.trajectory {
                cata_bench::perf::append_trajectory(path, &report)
                    .unwrap_or_else(|e| die(&format!("{path}: {e}")));
                println!("[appended trajectory point to {path}]");
            }
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        _ => {}
    }

    if all || opts.cmd == "table1" {
        println!(
            "== Table I: processor configuration ==\n{}",
            render_table1()
        );
    }

    if all || opts.cmd == "fig4" {
        println!(
            "[fig4: running 4 configs x 6 benchmarks x {:?} fast cores at {} scale, jobs={}]",
            FAST_CORE_COUNTS,
            opts.scale.name(),
            opts.jobs
        );
        let m = run_matrix(
            &benches,
            &FAST_CORE_COUNTS,
            fig4_configs,
            opts.scale,
            opts.seed,
            opts.jobs,
        );
        let labels = ["FIFO", "CATS+BL", "CATS+SA", "CATA"];
        emit(
            &opts,
            "fig4_speedup",
            &render_panel(&m, &benches, &labels, Metric::Speedup),
            "Figure 4 (top): speedup over FIFO",
        );
        emit(
            &opts,
            "fig4_edp",
            &render_panel(&m, &benches, &labels, Metric::Edp),
            "Figure 4 (bottom): normalized EDP",
        );
    }

    if all || opts.cmd == "fig5" || opts.cmd == "latency" {
        println!(
            "[fig5: running 4 configs x 6 benchmarks x {:?} fast cores at {} scale, jobs={}]",
            FAST_CORE_COUNTS,
            opts.scale.name(),
            opts.jobs
        );
        let m = run_matrix(
            &benches,
            &FAST_CORE_COUNTS,
            fig5_configs,
            opts.scale,
            opts.seed,
            opts.jobs,
        );
        if all || opts.cmd == "fig5" {
            let labels = ["CATA", "CATA+RSU", "TurboMode"];
            emit(
                &opts,
                "fig5_speedup",
                &render_panel(&m, &benches, &labels, Metric::Speedup),
                "Figure 5 (top): speedup over FIFO",
            );
            emit(
                &opts,
                "fig5_edp",
                &render_panel(&m, &benches, &labels, Metric::Edp),
                "Figure 5 (bottom): normalized EDP",
            );
        }
        if all || opts.cmd == "latency" {
            emit(
                &opts,
                "latency",
                &render_latency_analysis(&m, &benches, 16),
                "Section V-C: software reconfiguration path analysis (16 fast cores)",
            );
        }
    }

    if all || opts.cmd == "rsu-overhead" {
        println!(
            "== Section III-B-4: RSU overhead ==\n{}",
            render_rsu_overhead()
        );
    }

    if all || opts.cmd == "sweep-budget" {
        emit(
            &opts,
            "sweep_budget",
            &sweeps::budget_sweep(
                Benchmark::Swaptions,
                opts.scale,
                &[4, 8, 12, 16, 20, 24, 28, 32],
            ),
            "Ablation A1: power-budget sweep (Swaptions, CATA+RSU)",
        );
    }

    if all || opts.cmd == "sweep-latency" {
        emit(
            &opts,
            "sweep_latency",
            &sweeps::latency_sweep(
                Benchmark::Fluidanimate,
                opts.scale,
                &[1, 5, 25, 100, 400, 1000],
            ),
            "Ablation A2: DVFS transition latency sweep (Fluidanimate, 16 fast)",
        );
    }

    if all || opts.cmd == "sweep-threshold" {
        emit(
            &opts,
            "sweep_threshold",
            &sweeps::threshold_sweep(
                Benchmark::Bodytrack,
                opts.scale,
                &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            ),
            "Ablation A3: bottom-level criticality threshold sweep (Bodytrack)",
        );
    }

    if all || opts.cmd == "multilevel" {
        emit(
            &opts,
            "multilevel",
            &sweeps::multilevel_sweep(Benchmark::Swaptions, opts.scale),
            "Ablation A4: multi-level DVFS extension (Swaptions)",
        );
    }

    if !all
        && ![
            "table1",
            "fig4",
            "fig5",
            "latency",
            "rsu-overhead",
            "sweep-budget",
            "sweep-latency",
            "sweep-threshold",
            "multilevel",
        ]
        .contains(&opts.cmd.as_str())
    {
        die(&format!("unknown command {}", opts.cmd));
    }

    eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
