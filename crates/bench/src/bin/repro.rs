//! `repro` — regenerates every table and figure of the paper, and runs
//! arbitrary `ScenarioSpec` files, through the `exp` facade.
//!
//! ```text
//! repro table1          Table I (processor configuration)
//! repro fig4            Figure 4 (FIFO/CATS+BL/CATS+SA/CATA, speedup + EDP)
//! repro fig5            Figure 5 (CATA/CATA+RSU/TurboMode, speedup + EDP)
//! repro latency         §V-C reconfiguration latency / lock contention
//! repro rsu-overhead    §III-B-4 RSU storage/area/power
//! repro sweep-budget    A1: power-budget sensitivity
//! repro sweep-latency   A2: DVFS-latency sensitivity
//! repro sweep-threshold A3: BL threshold sensitivity
//! repro multilevel      A4: multi-level DVFS extension
//! repro all             everything above
//! repro run SPEC...     run scenario spec files (.json/.toml) as a suite
//! repro preset NAME...  run paper presets by label (FIFO, CATA, ...)
//! repro spec NAME       print a preset's spec as JSON (edit → `repro run`)
//! repro perf            engine perf harness: events/sec -> BENCH_engine.json
//! ```
//!
//! Options: `--scale tiny|small|paper` (default `paper`), `--seed N`,
//! `--csv DIR` (also writes CSV files), `--jobs N` (parallel suite
//! workers; 0 = all host cores, default 0), `--bench NAME` (workload for
//! `preset`/`spec`), `--fast N` (fast cores for `preset`/`spec`),
//! `--toml` (emit TOML from `spec`). `perf` options: `--smoke` (CI-sized),
//! `--reps N` (timing repetitions, default 5), `--out FILE` (default
//! `BENCH_engine.json`), `--baseline FILE` (embed a previous report's
//! medium summary + speedup).

use cata_bench::figures::{
    fig4_configs, fig5_configs, render_latency_analysis, render_panel, render_rsu_overhead,
    render_table1, Metric, FAST_CORE_COUNTS,
};
use cata_bench::matrix::{run_matrix, DEFAULT_SEED};
use cata_bench::sweeps;
use cata_bench::tables::Table;
use cata_core::exp::{ScenarioSpec, Suite, WorkloadSpec};
use cata_core::SimExecutor;
use cata_workloads::{Benchmark, Scale};
use std::time::Instant;

struct Opts {
    cmd: String,
    /// Spec files (`run`) or preset labels (`preset`/`spec`).
    args: Vec<String>,
    scale: Scale,
    seed: u64,
    csv_dir: Option<String>,
    jobs: usize,
    bench: Benchmark,
    fast: usize,
    emit_toml: bool,
    smoke: bool,
    reps: usize,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut cmd = None;
    let mut rest = Vec::new();
    let mut scale = Scale::Paper;
    let mut seed = DEFAULT_SEED;
    let mut csv_dir = None;
    let mut jobs = 0usize;
    let mut bench = Benchmark::Dedup;
    let mut fast = 16usize;
    let mut emit_toml = false;
    let mut smoke = false;
    let mut reps = 5usize;
    let mut out = "BENCH_engine.json".to_string();
    let mut baseline = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => die(&format!("bad --scale {other:?}")),
                }
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --seed"));
            }
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| die("missing --csv dir")));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --jobs"));
            }
            "--fast" => {
                fast = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --fast"));
            }
            "--bench" => {
                let name = args.next().unwrap_or_else(|| die("missing --bench name"));
                bench = Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| die(&format!("unknown benchmark {name}")));
            }
            "--toml" => emit_toml = true,
            "--smoke" => smoke = true,
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("bad --reps"));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("missing --out path"));
            }
            "--baseline" => {
                baseline = Some(
                    args.next()
                        .unwrap_or_else(|| die("missing --baseline path")),
                );
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_string()),
            other
                if matches!(cmd.as_deref(), Some("run" | "preset" | "spec"))
                    && !other.starts_with('-') =>
            {
                rest.push(other.to_string())
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    Opts {
        cmd: cmd.unwrap_or_else(|| "all".into()),
        args: rest,
        scale,
        seed,
        csv_dir,
        jobs,
        bench,
        fast,
        emit_toml,
        smoke,
        reps,
        out,
        baseline,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_help();
    std::process::exit(2);
}

fn print_help() {
    eprintln!(
        "usage: repro [COMMAND] [ARGS] [--scale tiny|small|paper] [--seed N] [--csv DIR]\n\
         \x20             [--jobs N] [--bench NAME] [--fast N] [--toml]\n\
         commands: table1 fig4 fig5 latency rsu-overhead sweep-budget sweep-latency\n\
         \x20         sweep-threshold multilevel all\n\
         \x20         run SPEC.json|SPEC.toml...   preset LABEL...   spec LABEL\n\
         \x20         perf [--smoke] [--reps N] [--out FILE] [--baseline FILE]"
    );
}

fn emit(opts: &Opts, name: &str, table: &Table, title: &str) {
    println!("== {title} ==\n{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
}

fn load_spec(path: &str) -> ScenarioSpec {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let parsed = if path.ends_with(".toml") {
        ScenarioSpec::from_toml(&text)
    } else {
        ScenarioSpec::from_json(&text)
    };
    parsed.unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// `repro run a.json b.toml …`: parse specs, fan them across the suite,
/// print one summary line per run.
fn run_specs(opts: &Opts, specs: Vec<ScenarioSpec>) {
    if specs.is_empty() {
        die("no specs given");
    }
    let suite = Suite::from_specs(specs).jobs(opts.jobs);
    let results = suite.run(&SimExecutor::default());
    let mut table = Table::new(&[
        "config",
        "workload",
        "fast",
        "time",
        "energy J",
        "EDP",
        "tasks",
        "reconfigs",
    ]);
    let mut failed = 0;
    for result in results {
        match result {
            Ok(report) => {
                println!("{}", report.summary());
                table.row(vec![
                    report.label.clone(),
                    report.workload.clone(),
                    report.fast_cores.to_string(),
                    report.exec_time.to_string(),
                    format!("{:.6}", report.energy.energy_j),
                    format!("{:.6}", report.energy.edp),
                    report.tasks.to_string(),
                    report.counters.reconfigs_applied.to_string(),
                ]);
            }
            Err(e) => {
                failed += 1;
                eprintln!("error: {e}");
            }
        }
    }
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/runs.csv");
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("[wrote {path}]");
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_args();
    let benches = Benchmark::all();
    let t0 = Instant::now();
    let all = opts.cmd == "all";

    match opts.cmd.as_str() {
        "run" => {
            let specs = opts.args.iter().map(|p| load_spec(p)).collect();
            run_specs(&opts, specs);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "preset" => {
            let workload = WorkloadSpec::parsec(opts.bench, opts.scale, opts.seed);
            let labels: Vec<String> = if opts.args.is_empty() {
                [
                    "FIFO",
                    "CATS+BL",
                    "CATS+SA",
                    "CATA",
                    "CATA+RSU",
                    "TurboMode",
                ]
                .map(String::from)
                .to_vec()
            } else {
                opts.args.clone()
            };
            let specs = labels
                .iter()
                .map(|label| {
                    ScenarioSpec::preset(label, opts.fast, workload.clone())
                        .unwrap_or_else(|e| die(&e.to_string()))
                })
                .collect();
            run_specs(&opts, specs);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        "spec" => {
            let label = opts.args.first().map(String::as_str).unwrap_or("CATA");
            let workload = WorkloadSpec::parsec(opts.bench, opts.scale, opts.seed);
            let spec = ScenarioSpec::preset(label, opts.fast, workload)
                .unwrap_or_else(|e| die(&e.to_string()));
            if opts.emit_toml {
                println!("{}", spec.to_toml());
            } else {
                println!("{}", spec.to_json_pretty());
            }
            return;
        }
        "perf" => {
            println!(
                "[perf: {} mode, {} reps per cell, trace off]",
                if opts.smoke { "smoke" } else { "full" },
                opts.reps
            );
            let mut report = cata_bench::perf::run_perf(opts.smoke, opts.reps);
            if let Some(path) = &opts.baseline {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                let base = cata_bench::perf::PerfReport::from_json(&text)
                    .unwrap_or_else(|e| die(&format!("{path}: {e}")));
                report = report.with_baseline(&base);
            }
            print!("{}", report.render());
            std::fs::write(&opts.out, report.to_json_pretty()).expect("write perf report");
            println!("[wrote {}]", opts.out);
            eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
            return;
        }
        _ => {}
    }

    if all || opts.cmd == "table1" {
        println!(
            "== Table I: processor configuration ==\n{}",
            render_table1()
        );
    }

    if all || opts.cmd == "fig4" {
        println!(
            "[fig4: running 4 configs x 6 benchmarks x {:?} fast cores at {} scale, jobs={}]",
            FAST_CORE_COUNTS,
            opts.scale.name(),
            opts.jobs
        );
        let m = run_matrix(
            &benches,
            &FAST_CORE_COUNTS,
            fig4_configs,
            opts.scale,
            opts.seed,
            opts.jobs,
        );
        let labels = ["FIFO", "CATS+BL", "CATS+SA", "CATA"];
        emit(
            &opts,
            "fig4_speedup",
            &render_panel(&m, &benches, &labels, Metric::Speedup),
            "Figure 4 (top): speedup over FIFO",
        );
        emit(
            &opts,
            "fig4_edp",
            &render_panel(&m, &benches, &labels, Metric::Edp),
            "Figure 4 (bottom): normalized EDP",
        );
    }

    if all || opts.cmd == "fig5" || opts.cmd == "latency" {
        println!(
            "[fig5: running 4 configs x 6 benchmarks x {:?} fast cores at {} scale, jobs={}]",
            FAST_CORE_COUNTS,
            opts.scale.name(),
            opts.jobs
        );
        let m = run_matrix(
            &benches,
            &FAST_CORE_COUNTS,
            fig5_configs,
            opts.scale,
            opts.seed,
            opts.jobs,
        );
        if all || opts.cmd == "fig5" {
            let labels = ["CATA", "CATA+RSU", "TurboMode"];
            emit(
                &opts,
                "fig5_speedup",
                &render_panel(&m, &benches, &labels, Metric::Speedup),
                "Figure 5 (top): speedup over FIFO",
            );
            emit(
                &opts,
                "fig5_edp",
                &render_panel(&m, &benches, &labels, Metric::Edp),
                "Figure 5 (bottom): normalized EDP",
            );
        }
        if all || opts.cmd == "latency" {
            emit(
                &opts,
                "latency",
                &render_latency_analysis(&m, &benches, 16),
                "Section V-C: software reconfiguration path analysis (16 fast cores)",
            );
        }
    }

    if all || opts.cmd == "rsu-overhead" {
        println!(
            "== Section III-B-4: RSU overhead ==\n{}",
            render_rsu_overhead()
        );
    }

    if all || opts.cmd == "sweep-budget" {
        emit(
            &opts,
            "sweep_budget",
            &sweeps::budget_sweep(
                Benchmark::Swaptions,
                opts.scale,
                &[4, 8, 12, 16, 20, 24, 28, 32],
            ),
            "Ablation A1: power-budget sweep (Swaptions, CATA+RSU)",
        );
    }

    if all || opts.cmd == "sweep-latency" {
        emit(
            &opts,
            "sweep_latency",
            &sweeps::latency_sweep(
                Benchmark::Fluidanimate,
                opts.scale,
                &[1, 5, 25, 100, 400, 1000],
            ),
            "Ablation A2: DVFS transition latency sweep (Fluidanimate, 16 fast)",
        );
    }

    if all || opts.cmd == "sweep-threshold" {
        emit(
            &opts,
            "sweep_threshold",
            &sweeps::threshold_sweep(
                Benchmark::Bodytrack,
                opts.scale,
                &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            ),
            "Ablation A3: bottom-level criticality threshold sweep (Bodytrack)",
        );
    }

    if all || opts.cmd == "multilevel" {
        emit(
            &opts,
            "multilevel",
            &sweeps::multilevel_sweep(Benchmark::Swaptions, opts.scale),
            "Ablation A4: multi-level DVFS extension (Swaptions)",
        );
    }

    if !all
        && ![
            "table1",
            "fig4",
            "fig5",
            "latency",
            "rsu-overhead",
            "sweep-budget",
            "sweep-latency",
            "sweep-threshold",
            "multilevel",
        ]
        .contains(&opts.cmd.as_str())
    {
        die(&format!("unknown command {}", opts.cmd));
    }

    eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
