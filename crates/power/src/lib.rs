//! # cata-power — analytic power and energy model
//!
//! The paper evaluates power with McPAT at 22 nm, using the default clock
//! gating scheme. This crate is the stand-in: a per-core analytic model of
//! dynamic and static power as a function of the operating point
//! (voltage/frequency) and activity, plus an uncore (L2 NUCA, directory,
//! NoC) term, integrated over the activity timelines that `cata-sim`
//! produces.
//!
//! The model follows the standard CMOS relations McPAT itself is built on:
//!
//! - dynamic power: `P_dyn = α · C_eff · V² · f` — scaled by an activity
//!   factor per core state (busy / runtime idle loop / halted-clock-gated);
//! - static power: `P_leak = V · I_leak(V)` with a linear voltage
//!   sensitivity, which is adequate over the paper's narrow 0.8–1.0 V range;
//! - uncore power: a constant term (the L2, directory and mesh stay on one
//!   clock domain regardless of per-core DVFS).
//!
//! Absolute watt values are calibration constants
//! ([`PowerParams::mcpat_22nm`] carries defaults in the range McPAT reports
//! for similar OoO cores at 22 nm); the experiments only consume *relative*
//! energy and EDP, normalized to the FIFO baseline, which is insensitive to
//! the absolute calibration (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod energy;
pub mod modeled;
pub mod params;
pub mod rapl;

pub use energy::{fmt_metric, integrate_machine, EnergyBreakdown, EnergyReport, Measurement};
pub use modeled::{model_native_energy, BusyIntervals, BusyTracker, FreqClass};
pub use params::PowerParams;
pub use rapl::{RaplReader, RaplSample};
