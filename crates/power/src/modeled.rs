//! Calibrated per-core power model for native runs.
//!
//! A native run has no activity timelines to integrate — but the runtime
//! does observe, around every task start/end and every DVFS write, how long
//! each worker was busy and at which frequency class. This module turns
//! those observations into an [`EnergyReport`]:
//!
//! - [`BusyTracker`] is the observation side: worker threads mark task
//!   begin/end and the DVFS path marks frequency-class changes; the tracker
//!   accumulates per-core busy nanoseconds at each class.
//! - [`model_native_energy`] is the calibrated model `P(freq_class)`: it
//!   prices busy time at the fast/slow [`PowerLevel`]s through the same
//!   [`PowerParams`] the simulator uses, fills the remaining core-seconds
//!   with the idle operating point, and adds the constant uncore term —
//!   so a native cell's joules are directly comparable to a simulated
//!   cell's under the same calibration.
//!
//! The model is a pure function of the recorded intervals: identical
//! intervals produce a bit-identical report (pinned by test), even though
//! the intervals themselves vary run to run on real hardware.

use crate::energy::{EnergyBreakdown, EnergyReport, Measurement};
use crate::params::PowerParams;
use cata_sim::activity::Activity;
use cata_sim::machine::PowerLevel;
use std::sync::Mutex;
use std::time::Instant;

/// The two operating points the CATA runtime switches between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreqClass {
    /// The accelerated level (fast frequency/voltage).
    Fast,
    /// The baseline level.
    Slow,
}

/// Busy seconds one core accumulated at each frequency class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BusyIntervals {
    /// Seconds executing task bodies while accelerated.
    pub busy_fast_s: f64,
    /// Seconds executing task bodies at the slow level.
    pub busy_slow_s: f64,
}

impl BusyIntervals {
    /// Total busy seconds.
    pub fn total_s(&self) -> f64 {
        self.busy_fast_s + self.busy_slow_s
    }
}

#[derive(Debug, Default)]
struct CoreTrack {
    /// Currently at the fast operating point.
    fast: bool,
    /// Start of the in-flight busy segment, if a task body is running.
    busy_since: Option<Instant>,
    busy_fast_ns: u64,
    busy_slow_ns: u64,
}

impl CoreTrack {
    /// Closes the in-flight segment at `now` into the current class and,
    /// when `reopen`, starts a new one (for mid-task class changes).
    fn settle(&mut self, now: Instant, reopen: bool) {
        if let Some(since) = self.busy_since.take() {
            let ns = now.duration_since(since).as_nanos().min(u64::MAX as u128) as u64;
            if self.fast {
                self.busy_fast_ns += ns;
            } else {
                self.busy_slow_ns += ns;
            }
            if reopen {
                self.busy_since = Some(now);
            }
        }
    }
}

/// Per-core busy-time-at-frequency accumulator shared by the native
/// runtime's worker threads and its DVFS path. All methods take `&self`;
/// each core has its own lock, so marking is cheap and uncontended (a
/// worker only ever touches its own core; the DVFS path touches the target
/// core of a reconfiguration).
#[derive(Debug)]
pub struct BusyTracker {
    cores: Vec<Mutex<CoreTrack>>,
}

impl BusyTracker {
    /// A tracker for `num_cores` cores, all starting at the slow class.
    pub fn new(num_cores: usize) -> Self {
        BusyTracker {
            cores: (0..num_cores)
                .map(|_| Mutex::new(CoreTrack::default()))
                .collect(),
        }
    }

    fn with_core(&self, core: usize, f: impl FnOnce(&mut CoreTrack)) {
        if let Some(m) = self.cores.get(core) {
            f(&mut m.lock().unwrap_or_else(|e| e.into_inner()));
        }
    }

    /// A task body starts executing on `core`.
    pub fn task_begin(&self, core: usize) {
        let now = Instant::now();
        self.with_core(core, |c| {
            c.busy_since = Some(now);
        });
    }

    /// The task body on `core` finished; its busy time is banked at the
    /// class(es) the core ran at.
    pub fn task_end(&self, core: usize) {
        let now = Instant::now();
        self.with_core(core, |c| c.settle(now, false));
    }

    /// `core`'s frequency class changed (a successful DVFS write). An
    /// in-flight busy segment is split at the transition.
    pub fn set_class(&self, core: usize, class: FreqClass) {
        let now = Instant::now();
        self.with_core(core, |c| {
            let fast = class == FreqClass::Fast;
            if c.fast != fast {
                c.settle(now, true);
                c.fast = fast;
            }
        });
    }

    /// The accumulated per-core busy intervals (open segments are settled
    /// at call time).
    pub fn intervals(&self) -> Vec<BusyIntervals> {
        let now = Instant::now();
        self.cores
            .iter()
            .map(|m| {
                let mut c = m.lock().unwrap_or_else(|e| e.into_inner());
                c.settle(now, true);
                BusyIntervals {
                    busy_fast_s: c.busy_fast_ns as f64 * 1e-9,
                    busy_slow_s: c.busy_slow_ns as f64 * 1e-9,
                }
            })
            .collect()
    }
}

/// Integrates the calibrated model over a native run's observations.
///
/// Busy time is priced at the busy activity factor of its frequency class;
/// every remaining core-second of the run (`num_cores × wall_s` minus the
/// busy total) is priced at the slow idle operating point — the native
/// workers spin in the runtime idle loop, they do not halt — and the chip
/// uncore term runs for the whole wall time. Leakage follows the same
/// split (fast voltage while busy-fast, slow voltage otherwise).
///
/// Deterministic: a pure function of its arguments.
pub fn model_native_energy(
    params: &PowerParams,
    fast: PowerLevel,
    slow: PowerLevel,
    num_cores: usize,
    wall_s: f64,
    per_core: &[BusyIntervals],
) -> EnergyReport {
    let mut b = EnergyBreakdown::default();
    let mut busy_total_s = 0.0;
    let mut busy_fast_s = 0.0;
    for iv in per_core {
        b.core_busy_j += iv.busy_fast_s * params.dynamic_w(fast, Activity::Busy)
            + iv.busy_slow_s * params.dynamic_w(slow, Activity::Busy);
        busy_total_s += iv.total_s();
        busy_fast_s += iv.busy_fast_s;
    }
    let core_seconds = num_cores as f64 * wall_s;
    let idle_s = (core_seconds - busy_total_s).max(0.0);
    b.core_idle_j = idle_s * params.dynamic_w(slow, Activity::Idle);
    b.core_static_j = busy_fast_s * params.static_w(fast)
        + (core_seconds - busy_fast_s).max(0.0) * params.static_w(slow);
    b.uncore_j = params.uncore_w * wall_s;
    EnergyReport::from_parts(wall_s, b).with_measurement(Measurement::Modeled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PowerParams {
        PowerParams::mcpat_22nm()
    }

    #[test]
    fn model_is_deterministic_given_recorded_intervals() {
        let iv = vec![
            BusyIntervals {
                busy_fast_s: 0.25,
                busy_slow_s: 0.10,
            },
            BusyIntervals {
                busy_fast_s: 0.0,
                busy_slow_s: 0.40,
            },
        ];
        let a = model_native_energy(
            &p(),
            PowerLevel::paper_fast(),
            PowerLevel::paper_slow(),
            2,
            0.5,
            &iv,
        );
        let b = model_native_energy(
            &p(),
            PowerLevel::paper_fast(),
            PowerLevel::paper_slow(),
            2,
            0.5,
            &iv,
        );
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert_eq!(a.edp.to_bits(), b.edp.to_bits());
        assert_eq!(a.measurement, Measurement::Modeled);
        assert!(a.has_energy());
    }

    #[test]
    fn fast_busy_time_costs_more_than_slow() {
        let fast_run = model_native_energy(
            &p(),
            PowerLevel::paper_fast(),
            PowerLevel::paper_slow(),
            1,
            1.0,
            &[BusyIntervals {
                busy_fast_s: 1.0,
                busy_slow_s: 0.0,
            }],
        );
        let slow_run = model_native_energy(
            &p(),
            PowerLevel::paper_fast(),
            PowerLevel::paper_slow(),
            1,
            1.0,
            &[BusyIntervals {
                busy_fast_s: 0.0,
                busy_slow_s: 1.0,
            }],
        );
        assert!(fast_run.energy_j > slow_run.energy_j);
    }

    #[test]
    fn idle_machine_still_draws_idle_and_uncore_power() {
        let r = model_native_energy(
            &p(),
            PowerLevel::paper_fast(),
            PowerLevel::paper_slow(),
            4,
            0.1,
            &[BusyIntervals::default(); 4],
        );
        assert!(r.breakdown.core_idle_j > 0.0);
        assert!(r.breakdown.uncore_j > 0.0);
        assert_eq!(r.breakdown.core_busy_j, 0.0);
    }

    #[test]
    fn tracker_accumulates_and_splits_on_class_change() {
        let t = BusyTracker::new(2);
        t.task_begin(0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.set_class(0, FreqClass::Fast);
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.task_end(0);
        let iv = t.intervals();
        assert!(iv[0].busy_slow_s > 0.0, "pre-transition time at slow");
        assert!(iv[0].busy_fast_s > 0.0, "post-transition time at fast");
        assert_eq!(iv[1], BusyIntervals::default());
        // Out-of-range cores are ignored, not a panic.
        t.task_begin(9);
        t.task_end(9);
    }
}
