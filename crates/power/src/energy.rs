//! Energy integration over activity timelines.

use crate::params::PowerParams;
use cata_sim::activity::Activity;
use cata_sim::machine::Machine;
use cata_sim::time::SimDuration;
use serde::{DeError, Deserialize, Serialize, Value};

/// How an [`EnergyReport`]'s joules were obtained — the provenance tag that
/// makes sim and native cells comparable in one table. Serialized as a
/// lowercase string; reports written before the tag existed deserialize as
/// [`Measurement::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Measurement {
    /// Integrated from simulated activity timelines ([`integrate_machine`]).
    Simulated,
    /// Computed by the calibrated per-core model from busy-time-at-frequency
    /// intervals a native run observed (`cata_power::modeled`).
    Modeled,
    /// [`Modeled`](Self::Modeled), but scaled to the *spec* machine: the
    /// native run was clamped to fewer workers than the spec's cores
    /// (`effective_cores` surfaces the clamp), and the model priced the
    /// unmapped cores as idle at the slow level so the joules remain
    /// comparable with full-width sim cells.
    ModeledScaled,
    /// Read from the RAPL energy counters under `/sys/class/powercap`.
    Rapl,
    /// RAPL package total apportioned across components by the calibrated
    /// model's per-component ratios: measured magnitude, modeled split.
    RaplSplit,
    /// No energy was measured (legacy native runs, untagged stored reports).
    #[default]
    None,
}

impl Measurement {
    /// The serialized / table form ("simulated", "modeled",
    /// "modeled-scaled", "rapl", "none").
    pub fn name(self) -> &'static str {
        match self {
            Measurement::Simulated => "simulated",
            Measurement::Modeled => "modeled",
            Measurement::ModeledScaled => "modeled-scaled",
            Measurement::Rapl => "rapl",
            Measurement::RaplSplit => "rapl-split",
            Measurement::None => "none",
        }
    }
}

impl Serialize for Measurement {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for Measurement {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => match s.as_str() {
                "simulated" => Ok(Measurement::Simulated),
                "modeled" => Ok(Measurement::Modeled),
                "modeled-scaled" => Ok(Measurement::ModeledScaled),
                "rapl" => Ok(Measurement::Rapl),
                "rapl-split" => Ok(Measurement::RaplSplit),
                "none" => Ok(Measurement::None),
                other => Err(DeError::new(format!("unknown measurement `{other}`"))),
            },
            other => Err(DeError::new(format!(
                "Measurement: expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

/// Energy attributed to each component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic energy while busy.
    pub core_busy_j: f64,
    /// Core dynamic energy in the runtime idle loop.
    pub core_idle_j: f64,
    /// Core dynamic energy while halted (clock-gating residue).
    pub core_halt_j: f64,
    /// Core leakage energy.
    pub core_static_j: f64,
    /// Uncore (L2/directory/NoC) energy.
    pub uncore_j: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    pub fn total_j(&self) -> f64 {
        self.core_busy_j + self.core_idle_j + self.core_halt_j + self.core_static_j + self.uncore_j
    }
}

/// The energy/EDP result of one run (simulated or native).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Wall-clock execution time of the run, in seconds.
    pub time_s: f64,
    /// Total energy, in joules.
    pub energy_j: f64,
    /// Energy-Delay Product, in joule-seconds.
    pub edp: f64,
    /// Average power over the run, in watts.
    pub avg_power_w: f64,
    /// Per-component energy attribution (all-zero for RAPL measurements,
    /// which only give package totals).
    pub breakdown: EnergyBreakdown,
    /// Where the joules came from.
    pub measurement: Measurement,
}

// Serde is hand-written so `measurement` is *omitted* when `None` — an
// untagged report serializes exactly as it did before the field existed,
// keeping spec/store digests of legacy data stable — and a missing field
// deserializes as `None`, so legacy stored reports still parse.
impl Serialize for EnergyReport {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("time_s".into(), self.time_s.to_value()),
            ("energy_j".into(), self.energy_j.to_value()),
            ("edp".into(), self.edp.to_value()),
            ("avg_power_w".into(), self.avg_power_w.to_value()),
            ("breakdown".into(), self.breakdown.to_value()),
        ];
        if self.measurement != Measurement::None {
            m.push(("measurement".into(), self.measurement.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for EnergyReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("EnergyReport")?;
        let measurement: Option<Measurement> = serde::field(m, "measurement", "EnergyReport")?;
        Ok(EnergyReport {
            time_s: serde::field(m, "time_s", "EnergyReport")?,
            energy_j: serde::field(m, "energy_j", "EnergyReport")?,
            edp: serde::field(m, "edp", "EnergyReport")?,
            avg_power_w: serde::field(m, "avg_power_w", "EnergyReport")?,
            breakdown: serde::field(m, "breakdown", "EnergyReport")?,
            measurement: measurement.unwrap_or(Measurement::None),
        })
    }
}

impl EnergyReport {
    /// Builds a report from a total energy and run time (provenance
    /// untagged; see [`with_measurement`](Self::with_measurement)).
    pub fn from_parts(time_s: f64, breakdown: EnergyBreakdown) -> Self {
        let energy_j = breakdown.total_j();
        EnergyReport {
            time_s,
            energy_j,
            edp: energy_j * time_s,
            avg_power_w: if time_s > 0.0 { energy_j / time_s } else { 0.0 },
            breakdown,
            measurement: Measurement::None,
        }
    }

    /// A report from a directly measured total (no component attribution) —
    /// the RAPL path.
    pub fn measured(time_s: f64, energy_j: f64, measurement: Measurement) -> Self {
        EnergyReport {
            time_s,
            energy_j,
            edp: energy_j * time_s,
            avg_power_w: if time_s > 0.0 { energy_j / time_s } else { 0.0 },
            breakdown: EnergyBreakdown::default(),
            measurement,
        }
    }

    /// Tags the report's provenance.
    pub fn with_measurement(mut self, measurement: Measurement) -> Self {
        self.measurement = measurement;
        self
    }

    /// True when the report actually carries energy (nonzero, finite).
    pub fn has_energy(&self) -> bool {
        self.energy_j.is_finite() && self.energy_j > 0.0
    }

    /// This report's EDP normalized to a baseline report (paper Figures 4–5
    /// plot exactly this quantity). `None` when *either* side carries no
    /// energy (e.g. a legacy native run that measured 0 J) — the old
    /// behaviour divided by zero and rendered native runs as infinitely
    /// better than sim, and an energy-less numerator would render a
    /// just-as-misleading `0.000`.
    pub fn edp_normalized_to(&self, baseline: &EnergyReport) -> Option<f64> {
        if !self.has_energy() || !baseline.has_energy() {
            return None;
        }
        if !baseline.edp.is_finite() || baseline.edp <= 0.0 {
            return None;
        }
        let ratio = self.edp / baseline.edp;
        ratio.is_finite().then_some(ratio)
    }

    /// Speedup of this run relative to a baseline (baseline time / our time).
    pub fn speedup_over(&self, baseline: &EnergyReport) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            baseline.time_s / self.time_s
        }
    }
}

/// Formats an energy or EDP value for summaries and tables: `n/a` when the
/// run carries no energy (so a legacy 0 J report is never mistaken for a
/// measurement), scientific notation for tiny-but-real values that fixed
/// precision would render as `0.000000`. The one place this policy lives —
/// `RunReport::summary` and the repro tables both call it.
pub fn fmt_metric(value: f64, has_energy: bool, prec: usize) -> String {
    if !has_energy || !value.is_finite() {
        "n/a".to_string()
    } else if value >= 1e-3 {
        format!("{value:.prec$}")
    } else {
        format!("{value:.3e}")
    }
}

/// Integrates the activity timelines of a finished machine into an energy
/// report.
///
/// The machine must have been closed with [`Machine::finish`] so every
/// timeline covers `[0, end]`; `run_time` is that same end instant.
pub fn integrate_machine(
    machine: &Machine,
    run_time: SimDuration,
    params: &PowerParams,
) -> EnergyReport {
    let mut b = EnergyBreakdown::default();
    for core in machine.cores() {
        for seg in core.timeline().segments() {
            let dt = seg.duration.as_secs_f64();
            let dyn_j = params.dynamic_w(seg.level, seg.activity) * dt;
            match seg.activity {
                Activity::Busy => b.core_busy_j += dyn_j,
                Activity::Idle => b.core_idle_j += dyn_j,
                Activity::Halted => b.core_halt_j += dyn_j,
            }
            b.core_static_j += params.static_w(seg.level) * dt;
        }
    }
    b.uncore_j = params.uncore_w * run_time.as_secs_f64();
    EnergyReport::from_parts(run_time.as_secs_f64(), b).with_measurement(Measurement::Simulated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::machine::{CoreId, MachineConfig, PowerLevel};
    use cata_sim::time::SimTime;

    #[test]
    fn idle_machine_consumes_static_idle_and_uncore() {
        let cfg = MachineConfig::small_test(2);
        let mut m = Machine::new(cfg);
        let end = SimTime::from_ms(1);
        m.finish(end);
        let p = PowerParams::mcpat_22nm();
        let r = integrate_machine(&m, SimDuration::from_ms(1), &p);

        let dt = 1e-3;
        let expect_static = 2.0 * p.static_w(PowerLevel::paper_slow()) * dt;
        let expect_idle = 2.0 * p.dynamic_w(PowerLevel::paper_slow(), Activity::Idle) * dt;
        let expect_uncore = p.uncore_w * dt;
        assert!((r.breakdown.core_static_j - expect_static).abs() < 1e-12);
        assert!((r.breakdown.core_idle_j - expect_idle).abs() < 1e-12);
        assert!((r.breakdown.uncore_j - expect_uncore).abs() < 1e-12);
        assert_eq!(r.breakdown.core_busy_j, 0.0);
        assert!((r.energy_j - r.breakdown.total_j()).abs() < 1e-15);
        assert!((r.edp - r.energy_j * dt).abs() < 1e-18);
    }

    #[test]
    fn busy_fast_core_dominates_energy() {
        let cfg = MachineConfig::small_test(1);
        let mut m = Machine::new_static_hetero(cfg, 1);
        m.set_activity(CoreId(0), SimTime::ZERO, Activity::Busy);
        m.finish(SimTime::from_ms(10));
        let p = PowerParams::mcpat_22nm();
        let r = integrate_machine(&m, SimDuration::from_ms(10), &p);
        // 2 W dynamic × 10 ms = 20 mJ busy energy.
        assert!((r.breakdown.core_busy_j - 0.02).abs() < 1e-9);
        assert!(r.breakdown.core_busy_j > r.breakdown.core_static_j);
    }

    #[test]
    fn normalization_helpers() {
        let base = EnergyReport::from_parts(
            2.0,
            EnergyBreakdown {
                core_busy_j: 10.0,
                ..Default::default()
            },
        );
        let faster = EnergyReport::from_parts(
            1.0,
            EnergyBreakdown {
                core_busy_j: 8.0,
                ..Default::default()
            },
        );
        assert!((faster.speedup_over(&base) - 2.0).abs() < 1e-12);
        // EDP: 8 J·1 s vs 10 J·2 s → 0.4.
        assert!((faster.edp_normalized_to(&base).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_energy_baseline_yields_no_edp_not_zero_or_inf() {
        // The old behaviour returned 0.0 for a 0 J baseline, rendering a
        // native run as infinitely better than sim in every table.
        let zero = EnergyReport::from_parts(1.0, EnergyBreakdown::default());
        let real = EnergyReport::from_parts(
            1.0,
            EnergyBreakdown {
                core_busy_j: 5.0,
                ..Default::default()
            },
        );
        assert!(!zero.has_energy());
        assert_eq!(real.edp_normalized_to(&zero), None);
        // An energy-less numerator is just as undefined: Some(0.0) would
        // render a misleading `0.000` cell and zero out geomeans.
        assert_eq!(zero.edp_normalized_to(&real), None);
        assert!(real.edp_normalized_to(&real).is_some());
    }

    #[test]
    fn measurement_round_trips_and_legacy_reports_parse() {
        let tagged = EnergyReport::from_parts(
            0.5,
            EnergyBreakdown {
                core_busy_j: 1.0,
                ..Default::default()
            },
        )
        .with_measurement(Measurement::Modeled);
        let back = EnergyReport::from_value(&tagged.to_value()).unwrap();
        assert_eq!(back.measurement, Measurement::Modeled);
        assert_eq!(back.energy_j, tagged.energy_j);

        // Untagged reports serialize without the field (legacy layout)…
        let untagged = EnergyReport::from_parts(0.5, EnergyBreakdown::default());
        assert!(untagged.to_value().get("measurement").is_none());
        // …and a legacy map (no `measurement` key) parses as `None`.
        let legacy = untagged.to_value();
        let parsed = EnergyReport::from_value(&legacy).unwrap();
        assert_eq!(parsed.measurement, Measurement::None);
    }

    #[test]
    fn integration_tags_simulated_provenance() {
        let cfg = MachineConfig::small_test(1);
        let mut m = Machine::new(cfg);
        m.finish(SimTime::from_ms(1));
        let r = integrate_machine(&m, SimDuration::from_ms(1), &PowerParams::mcpat_22nm());
        assert_eq!(r.measurement, Measurement::Simulated);
    }

    #[test]
    fn halted_core_saves_energy_vs_idle() {
        let cfg = MachineConfig::small_test(1);
        let p = PowerParams::mcpat_22nm();
        let run = SimDuration::from_ms(5);

        let mut idle = Machine::new(cfg.clone());
        idle.finish(SimTime::ZERO + run);
        let r_idle = integrate_machine(&idle, run, &p);

        let mut halted = Machine::new(cfg);
        halted.set_activity(CoreId(0), SimTime::ZERO, Activity::Halted);
        halted.finish(SimTime::ZERO + run);
        let r_halt = integrate_machine(&halted, run, &p);

        assert!(r_halt.energy_j < r_idle.energy_j);
    }
}
