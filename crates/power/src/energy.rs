//! Energy integration over activity timelines.

use crate::params::PowerParams;
use cata_sim::activity::Activity;
use cata_sim::machine::Machine;
use cata_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Energy attributed to each component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic energy while busy.
    pub core_busy_j: f64,
    /// Core dynamic energy in the runtime idle loop.
    pub core_idle_j: f64,
    /// Core dynamic energy while halted (clock-gating residue).
    pub core_halt_j: f64,
    /// Core leakage energy.
    pub core_static_j: f64,
    /// Uncore (L2/directory/NoC) energy.
    pub uncore_j: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    pub fn total_j(&self) -> f64 {
        self.core_busy_j + self.core_idle_j + self.core_halt_j + self.core_static_j + self.uncore_j
    }
}

/// The energy/EDP result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Wall-clock execution time of the run, in seconds.
    pub time_s: f64,
    /// Total energy, in joules.
    pub energy_j: f64,
    /// Energy-Delay Product, in joule-seconds.
    pub edp: f64,
    /// Average power over the run, in watts.
    pub avg_power_w: f64,
    /// Per-component energy attribution.
    pub breakdown: EnergyBreakdown,
}

impl EnergyReport {
    /// Builds a report from a total energy and run time.
    pub fn from_parts(time_s: f64, breakdown: EnergyBreakdown) -> Self {
        let energy_j = breakdown.total_j();
        EnergyReport {
            time_s,
            energy_j,
            edp: energy_j * time_s,
            avg_power_w: if time_s > 0.0 { energy_j / time_s } else { 0.0 },
            breakdown,
        }
    }

    /// This report's EDP normalized to a baseline report (paper Figures 4–5
    /// plot exactly this quantity).
    pub fn edp_normalized_to(&self, baseline: &EnergyReport) -> f64 {
        if baseline.edp == 0.0 {
            0.0
        } else {
            self.edp / baseline.edp
        }
    }

    /// Speedup of this run relative to a baseline (baseline time / our time).
    pub fn speedup_over(&self, baseline: &EnergyReport) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            baseline.time_s / self.time_s
        }
    }
}

/// Integrates the activity timelines of a finished machine into an energy
/// report.
///
/// The machine must have been closed with [`Machine::finish`] so every
/// timeline covers `[0, end]`; `run_time` is that same end instant.
pub fn integrate_machine(
    machine: &Machine,
    run_time: SimDuration,
    params: &PowerParams,
) -> EnergyReport {
    let mut b = EnergyBreakdown::default();
    for core in machine.cores() {
        for seg in core.timeline().segments() {
            let dt = seg.duration.as_secs_f64();
            let dyn_j = params.dynamic_w(seg.level, seg.activity) * dt;
            match seg.activity {
                Activity::Busy => b.core_busy_j += dyn_j,
                Activity::Idle => b.core_idle_j += dyn_j,
                Activity::Halted => b.core_halt_j += dyn_j,
            }
            b.core_static_j += params.static_w(seg.level) * dt;
        }
    }
    b.uncore_j = params.uncore_w * run_time.as_secs_f64();
    EnergyReport::from_parts(run_time.as_secs_f64(), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::machine::{CoreId, MachineConfig, PowerLevel};
    use cata_sim::time::SimTime;

    #[test]
    fn idle_machine_consumes_static_idle_and_uncore() {
        let cfg = MachineConfig::small_test(2);
        let mut m = Machine::new(cfg);
        let end = SimTime::from_ms(1);
        m.finish(end);
        let p = PowerParams::mcpat_22nm();
        let r = integrate_machine(&m, SimDuration::from_ms(1), &p);

        let dt = 1e-3;
        let expect_static = 2.0 * p.static_w(PowerLevel::paper_slow()) * dt;
        let expect_idle = 2.0 * p.dynamic_w(PowerLevel::paper_slow(), Activity::Idle) * dt;
        let expect_uncore = p.uncore_w * dt;
        assert!((r.breakdown.core_static_j - expect_static).abs() < 1e-12);
        assert!((r.breakdown.core_idle_j - expect_idle).abs() < 1e-12);
        assert!((r.breakdown.uncore_j - expect_uncore).abs() < 1e-12);
        assert_eq!(r.breakdown.core_busy_j, 0.0);
        assert!((r.energy_j - r.breakdown.total_j()).abs() < 1e-15);
        assert!((r.edp - r.energy_j * dt).abs() < 1e-18);
    }

    #[test]
    fn busy_fast_core_dominates_energy() {
        let cfg = MachineConfig::small_test(1);
        let mut m = Machine::new_static_hetero(cfg, 1);
        m.set_activity(CoreId(0), SimTime::ZERO, Activity::Busy);
        m.finish(SimTime::from_ms(10));
        let p = PowerParams::mcpat_22nm();
        let r = integrate_machine(&m, SimDuration::from_ms(10), &p);
        // 2 W dynamic × 10 ms = 20 mJ busy energy.
        assert!((r.breakdown.core_busy_j - 0.02).abs() < 1e-9);
        assert!(r.breakdown.core_busy_j > r.breakdown.core_static_j);
    }

    #[test]
    fn normalization_helpers() {
        let base = EnergyReport::from_parts(
            2.0,
            EnergyBreakdown {
                core_busy_j: 10.0,
                ..Default::default()
            },
        );
        let faster = EnergyReport::from_parts(
            1.0,
            EnergyBreakdown {
                core_busy_j: 8.0,
                ..Default::default()
            },
        );
        assert!((faster.speedup_over(&base) - 2.0).abs() < 1e-12);
        // EDP: 8 J·1 s vs 10 J·2 s → 0.4.
        assert!((faster.edp_normalized_to(&base) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn halted_core_saves_energy_vs_idle() {
        let cfg = MachineConfig::small_test(1);
        let p = PowerParams::mcpat_22nm();
        let run = SimDuration::from_ms(5);

        let mut idle = Machine::new(cfg.clone());
        idle.finish(SimTime::ZERO + run);
        let r_idle = integrate_machine(&idle, run, &p);

        let mut halted = Machine::new(cfg);
        halted.set_activity(CoreId(0), SimTime::ZERO, Activity::Halted);
        halted.finish(SimTime::ZERO + run);
        let r_halt = integrate_machine(&halted, run, &p);

        assert!(r_halt.energy_j < r_idle.energy_j);
    }
}
