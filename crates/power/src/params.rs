//! Power model calibration constants.

use cata_sim::activity::Activity;
use cata_sim::machine::PowerLevel;
use serde::{Deserialize, Serialize};

/// Calibration constants of the analytic power model.
///
/// Reference point: one out-of-order 4-wide core (Table I) at the paper's
/// fast level (2 GHz, 1.0 V) on a 22 nm process, following the magnitudes
/// McPAT reports for such cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Effective switched capacitance per core in nanofarads; defines the
    /// dynamic power scale: `P_dyn = α · c_eff_nf · V² · f`.
    /// With 1.0 nF: 1.0 × 1.0² V² × 2 GHz = 2.0 W at the fast level.
    pub c_eff_nf: f64,
    /// Leakage current per core at the nominal voltage (1.0 V), in amperes.
    /// `P_static = v · i_leak · (1 + leak_v_sensitivity · (v − 1.0))`.
    pub i_leak_a: f64,
    /// Linear sensitivity of leakage current to voltage around 1.0 V.
    pub leak_v_sensitivity: f64,
    /// Activity factor while executing instructions.
    pub busy_activity: f64,
    /// Activity factor in the runtime idle loop (spinning for work).
    pub idle_activity: f64,
    /// Activity factor while halted in C1 (clock gated; McPAT's default
    /// clock gating leaves a small residue).
    pub halt_activity: f64,
    /// Constant uncore power for the whole chip (L2 NUCA banks, directory,
    /// 4×8 mesh), in watts.
    pub uncore_w: f64,
}

impl PowerParams {
    /// Calibration for the paper's 22 nm, 32-core machine.
    pub fn mcpat_22nm() -> Self {
        PowerParams {
            c_eff_nf: 1.0,
            i_leak_a: 0.35,
            leak_v_sensitivity: 1.5,
            busy_activity: 1.0,
            idle_activity: 0.25,
            halt_activity: 0.02,
            uncore_w: 10.0,
        }
    }

    /// Dynamic power of one core at `level` with the given activity, in watts.
    pub fn dynamic_w(&self, level: PowerLevel, activity: Activity) -> f64 {
        let alpha = match activity {
            Activity::Busy => self.busy_activity,
            Activity::Idle => self.idle_activity,
            Activity::Halted => self.halt_activity,
        };
        let v = level.voltage_v();
        let f_ghz = level.frequency.as_mhz() as f64 / 1000.0;
        alpha * self.c_eff_nf * v * v * f_ghz
    }

    /// Static (leakage) power of one core at `level`, in watts.
    ///
    /// Leakage does not depend on activity: C1 gates the clock, not the
    /// power rails (per-core power gating is out of the paper's scope).
    pub fn static_w(&self, level: PowerLevel) -> f64 {
        let v = level.voltage_v();
        let i = self.i_leak_a * (1.0 + self.leak_v_sensitivity * (v - 1.0));
        (v * i).max(0.0)
    }

    /// Total power of one core at `level`/`activity`, in watts.
    pub fn core_w(&self, level: PowerLevel, activity: Activity) -> f64 {
        self.dynamic_w(level, activity) + self.static_w(level)
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::mcpat_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PowerParams {
        PowerParams::mcpat_22nm()
    }

    #[test]
    fn fast_busy_core_is_two_watts_dynamic() {
        let w = p().dynamic_w(PowerLevel::paper_fast(), Activity::Busy);
        assert!((w - 2.0).abs() < 1e-12, "got {w}");
    }

    #[test]
    fn slow_level_cuts_dynamic_power_superlinearly() {
        // P ∝ V²·f: (0.8/1.0)² × (1/2) = 0.32× — the DVFS energy win.
        let fast = p().dynamic_w(PowerLevel::paper_fast(), Activity::Busy);
        let slow = p().dynamic_w(PowerLevel::paper_slow(), Activity::Busy);
        assert!((slow / fast - 0.32).abs() < 1e-12);
    }

    #[test]
    fn activity_ordering() {
        let lvl = PowerLevel::paper_fast();
        let busy = p().dynamic_w(lvl, Activity::Busy);
        let idle = p().dynamic_w(lvl, Activity::Idle);
        let halt = p().dynamic_w(lvl, Activity::Halted);
        assert!(busy > idle && idle > halt && halt > 0.0);
    }

    #[test]
    fn leakage_drops_with_voltage() {
        let fast = p().static_w(PowerLevel::paper_fast());
        let slow = p().static_w(PowerLevel::paper_slow());
        assert!(slow < fast);
        assert!(slow > 0.0);
        // At 1.0 V the model gives exactly v · i_leak.
        assert!((fast - 0.35).abs() < 1e-12);
    }

    #[test]
    fn leakage_is_activity_independent() {
        let lvl = PowerLevel::paper_slow();
        let a = p().core_w(lvl, Activity::Busy) - p().dynamic_w(lvl, Activity::Busy);
        let b = p().core_w(lvl, Activity::Halted) - p().dynamic_w(lvl, Activity::Halted);
        assert!((a - b).abs() < 1e-15);
    }
}
