//! RAPL energy counters via the Linux powercap sysfs interface.
//!
//! When the host exposes readable `energy_uj` counters under
//! `/sys/class/powercap/intel-rapl:N` (package domains), native runs can
//! report *measured* joules instead of modeled ones. The reader samples the
//! counters before and after a run and differences them, handling the
//! counter wraparound that `max_energy_range_uj` announces.
//!
//! Counters are frequently root-only (the kernel restricted them after the
//! PLATYPUS side channel), so [`RaplReader::detect`] returns `None` on most
//! unprivileged hosts and callers fall back to the calibrated model
//! (`cata_power::modeled`).

use std::path::{Path, PathBuf};

/// One readable RAPL package domain.
#[derive(Debug, Clone)]
struct RaplDomain {
    energy_path: PathBuf,
    /// Counter range in microjoules (wrap modulus); 0 if unknown.
    max_range_uj: u64,
}

/// A reader over every readable top-level RAPL package domain.
#[derive(Debug, Clone)]
pub struct RaplReader {
    domains: Vec<RaplDomain>,
}

/// One point-in-time reading: microjoules per domain, in domain order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaplSample {
    uj: Vec<u64>,
}

fn read_u64(path: &Path) -> Option<u64> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

impl RaplReader {
    /// The standard powercap mount point.
    pub const DEFAULT_ROOT: &'static str = "/sys/class/powercap";

    /// Probes the host's powercap tree; `None` when no package-level
    /// `energy_uj` is readable (the common unprivileged case).
    pub fn detect() -> Option<Self> {
        Self::with_root(Self::DEFAULT_ROOT)
    }

    /// Probes an explicit powercap-like tree (tests point this at a
    /// tempdir). Only top-level package domains (`intel-rapl:N`, no
    /// subdomain suffix) are used, so core/uncore subdomains are never
    /// double-counted against their package.
    pub fn with_root(root: impl AsRef<Path>) -> Option<Self> {
        let root = root.as_ref();
        let mut names: Vec<String> = std::fs::read_dir(root)
            .ok()?
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| {
                name.strip_prefix("intel-rapl:")
                    .is_some_and(|rest| rest.chars().all(|c| c.is_ascii_digit()))
            })
            .collect();
        names.sort();
        let domains: Vec<RaplDomain> = names
            .into_iter()
            .filter_map(|name| {
                let dir = root.join(&name);
                let energy_path = dir.join("energy_uj");
                // Readability check: an actual read, not just metadata.
                read_u64(&energy_path)?;
                Some(RaplDomain {
                    max_range_uj: read_u64(&dir.join("max_energy_range_uj")).unwrap_or(0),
                    energy_path,
                })
            })
            .collect();
        if domains.is_empty() {
            None
        } else {
            Some(RaplReader { domains })
        }
    }

    /// Number of package domains being read.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Reads every domain counter; `None` if any read fails (a partial
    /// sample would silently under-report).
    pub fn sample(&self) -> Option<RaplSample> {
        let uj = self
            .domains
            .iter()
            .map(|d| read_u64(&d.energy_path))
            .collect::<Option<Vec<u64>>>()?;
        Some(RaplSample { uj })
    }

    /// Joules consumed between two samples of this reader, summed over
    /// domains. A counter that went backwards wrapped; the announced range
    /// recovers the true delta (without a range the domain contributes 0
    /// rather than a bogus huge value).
    pub fn joules_between(&self, start: &RaplSample, end: &RaplSample) -> f64 {
        self.domains
            .iter()
            .zip(start.uj.iter().zip(&end.uj))
            .map(|(d, (&a, &b))| {
                let delta_uj = if b >= a {
                    b - a
                } else if d.max_range_uj > 0 {
                    d.max_range_uj - a + b
                } else {
                    0
                };
                delta_uj as f64 * 1e-6
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_tree(name: &str, packages: &[(u64, u64)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("cata-rapl-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (i, (uj, range)) in packages.iter().enumerate() {
            let dir = root.join(format!("intel-rapl:{i}"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("energy_uj"), format!("{uj}\n")).unwrap();
            std::fs::write(dir.join("max_energy_range_uj"), format!("{range}\n")).unwrap();
        }
        // A subdomain that must be ignored (its energy is already inside
        // the package counter).
        if !packages.is_empty() {
            let sub = root.join("intel-rapl:0:0");
            std::fs::create_dir_all(&sub).unwrap();
            std::fs::write(sub.join("energy_uj"), "1\n").unwrap();
        }
        root
    }

    #[test]
    fn detects_packages_and_ignores_subdomains() {
        let root = fake_tree(
            "detect",
            &[(1_000_000, 10_000_000), (2_000_000, 10_000_000)],
        );
        let r = RaplReader::with_root(&root).unwrap();
        assert_eq!(r.num_domains(), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_tree_is_none() {
        let root = fake_tree("empty", &[]);
        assert!(RaplReader::with_root(&root).is_none());
        let _ = std::fs::remove_dir_all(&root);
        assert!(RaplReader::with_root(&root).is_none());
    }

    #[test]
    fn differences_samples_including_wraparound() {
        let root = fake_tree("diff", &[(1_000_000, 10_000_000)]);
        let r = RaplReader::with_root(&root).unwrap();
        let s0 = r.sample().unwrap();
        std::fs::write(root.join("intel-rapl:0").join("energy_uj"), "3500000\n").unwrap();
        let s1 = r.sample().unwrap();
        // 2.5 J consumed.
        assert!((r.joules_between(&s0, &s1) - 2.5).abs() < 1e-9);

        // Wrap: counter restarts near zero; range recovers the delta.
        std::fs::write(root.join("intel-rapl:0").join("energy_uj"), "500000\n").unwrap();
        let s2 = r.sample().unwrap();
        // 10_000_000 - 3_500_000 + 500_000 = 7_000_000 µJ = 7 J.
        assert!((r.joules_between(&s1, &s2) - 7.0).abs() < 1e-9);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
