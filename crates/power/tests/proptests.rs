//! Property tests for the power model: the CMOS relations and the energy
//! integrator's accounting identities.

use cata_power::{integrate_machine, PowerParams};
use cata_sim::activity::Activity;
use cata_sim::machine::{CoreId, Machine, MachineConfig, PowerLevel};
use cata_sim::time::{Frequency, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dynamic power is monotone in frequency and voltage, and linear in
    /// frequency at fixed voltage (P = α·C·V²·f).
    #[test]
    fn dynamic_power_relations(f in 100u32..4000, v in 500u32..1300) {
        let p = PowerParams::mcpat_22nm();
        let lvl = |f, v| PowerLevel { frequency: Frequency::from_mhz(f), voltage_mv: v };
        let base = p.dynamic_w(lvl(f, v), Activity::Busy);
        prop_assert!(base > 0.0);
        // Monotone in f and in V.
        prop_assert!(p.dynamic_w(lvl(f * 2, v), Activity::Busy) > base);
        prop_assert!(p.dynamic_w(lvl(f, v + 100), Activity::Busy) > base);
        // Linear in f: doubling f doubles dynamic power exactly.
        let double = p.dynamic_w(lvl(f * 2, v), Activity::Busy);
        prop_assert!((double / base - 2.0).abs() < 1e-9);
        // Quadratic in V: P(2V)/P(V) == 4.
        let quad = p.dynamic_w(lvl(f, v * 2), Activity::Busy);
        prop_assert!((quad / base - 4.0).abs() < 1e-9);
    }

    /// Energy accounting identity: total == sum of the breakdown, and the
    /// report's average power times time equals the energy.
    #[test]
    fn energy_identities(
        busy_ms in 1u64..50,
        idle_ms in 1u64..50,
    ) {
        let p = PowerParams::mcpat_22nm();
        let mut m = Machine::new(MachineConfig::small_test(2));
        m.set_activity(CoreId(0), SimTime::ZERO, Activity::Busy);
        m.set_activity(CoreId(0), SimTime::from_ms(busy_ms), Activity::Idle);
        let end = SimTime::from_ms(busy_ms + idle_ms);
        m.finish(end);
        let r = integrate_machine(&m, end.since(SimTime::ZERO), &p);
        let b = r.breakdown;
        let sum = b.core_busy_j + b.core_idle_j + b.core_halt_j + b.core_static_j + b.uncore_j;
        prop_assert!((r.energy_j - sum).abs() < 1e-12);
        prop_assert!((r.avg_power_w * r.time_s - r.energy_j).abs() < 1e-9);
        prop_assert!((r.edp - r.energy_j * r.time_s).abs() < 1e-12);
    }

    /// Splitting a busy interval across many activity records does not
    /// change the integrated energy (the integral is additive).
    #[test]
    fn integration_is_additive_over_splits(splits in 1usize..20) {
        let p = PowerParams::mcpat_22nm();
        let total = SimDuration::from_ms(10);

        let energy_with_splits = |k: usize| {
            let mut m = Machine::new(MachineConfig::small_test(1));
            m.set_activity(CoreId(0), SimTime::ZERO, Activity::Busy);
            // Re-record the same state k times mid-interval.
            for i in 1..k {
                let t = SimTime::from_ps(total.as_ps() * i as u64 / k as u64);
                m.set_activity(CoreId(0), t, Activity::Busy);
            }
            let end = SimTime::ZERO + total;
            m.finish(end);
            integrate_machine(&m, total, &p).energy_j
        };

        let once = energy_with_splits(1);
        let many = energy_with_splits(splits);
        prop_assert!((once - many).abs() < 1e-12);
    }

    /// Running the same work at the slow level uses strictly less *dynamic*
    /// energy per unit time but takes longer: the DVFS race-to-idle
    /// trade-off the paper's EDP metric captures.
    #[test]
    fn slow_level_trades_power_for_time(ms in 1u64..100) {
        let p = PowerParams::mcpat_22nm();
        let dur = SimDuration::from_ms(ms);
        let run_at = |fast: bool| {
            let cfg = MachineConfig::small_test(1);
            let mut m = if fast {
                Machine::new_static_hetero(cfg, 1)
            } else {
                Machine::new(cfg)
            };
            m.set_activity(CoreId(0), SimTime::ZERO, Activity::Busy);
            m.finish(SimTime::ZERO + dur);
            integrate_machine(&m, dur, &p)
        };
        let fast = run_at(true);
        let slow = run_at(false);
        prop_assert!(slow.breakdown.core_busy_j < fast.breakdown.core_busy_j);
        prop_assert!(slow.breakdown.core_static_j < fast.breakdown.core_static_j);
    }
}
