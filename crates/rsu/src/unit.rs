//! The register-level Runtime Support Unit.
//!
//! §III-B: the RSU stores, per core, the running task's criticality and the
//! acceleration status, plus the global power budget and the two power
//! levels to program into the DVFS controller. The ISA is extended with six
//! instructions to manage it; each costs a handful of cycles (the unit is a
//! tiny centralized table, §III-B-4) and — crucially — no locks and no
//! user/kernel transitions.

use crate::engine::{Cmd, ReconfigEngine, TaskCrit};
use cata_sim::machine::PowerLevel;
use cata_sim::time::{Frequency, SimDuration};
use serde::{Deserialize, Serialize};

/// Static configuration programmed at `rsu_init` (by the OS at boot,
/// §III-B-4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RsuConfig {
    /// Number of cores the unit tracks.
    pub num_cores: usize,
    /// Power budget: max simultaneously accelerated cores.
    pub budget: usize,
    /// The level used for accelerated cores.
    pub accel_level: PowerLevel,
    /// The level used for non-accelerated cores.
    pub non_accel_level: PowerLevel,
    /// Cycles one RSU operation takes (table lookup + scan); charged to the
    /// core executing the `rsu_*` instruction.
    pub op_cycles: u32,
}

impl RsuConfig {
    /// The paper's configuration: 32 cores, dual-rail levels, and a
    /// conservative 32-cycle operation cost (a full-table scan at one
    /// comparator per cycle).
    pub fn paper_default(budget: usize) -> Self {
        RsuConfig {
            num_cores: 32,
            budget,
            accel_level: PowerLevel::paper_fast(),
            non_accel_level: PowerLevel::paper_slow(),
            op_cycles: 32,
        }
    }
}

/// Errors an RSU operation can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsuError {
    /// Operation on a disabled unit (`rsu_disable` was executed).
    Disabled,
    /// Core index out of range.
    BadCore(usize),
}

impl std::fmt::Display for RsuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsuError::Disabled => write!(f, "RSU is disabled"),
            RsuError::BadCore(c) => write!(f, "core {c} out of range"),
        }
    }
}

impl std::error::Error for RsuError {}

/// The result of an RSU operation: DVFS commands to issue plus the
/// instruction's cost on the issuing core.
#[derive(Debug, Clone, PartialEq)]
pub struct RsuOutcome {
    /// Reconfiguration commands for the DVFS controller, decelerations
    /// first. The RSU issues these autonomously; the issuing core does NOT
    /// wait for the transitions.
    pub cmds: Vec<Cmd>,
    /// Time the `rsu_*` instruction occupies the issuing core.
    pub cost: SimDuration,
}

/// The Runtime Support Unit.
#[derive(Debug, Clone)]
pub struct Rsu {
    config: RsuConfig,
    engine: ReconfigEngine,
    enabled: bool,
}

impl Rsu {
    /// `rsu_init`: configures and enables the unit.
    ///
    /// # Panics
    /// Panics if `budget > num_cores` (an OS programming bug).
    pub fn init(config: RsuConfig) -> Self {
        Rsu {
            engine: ReconfigEngine::new(config.num_cores, config.budget),
            config,
            enabled: true,
        }
    }

    /// The programmed configuration.
    pub fn config(&self) -> &RsuConfig {
        &self.config
    }

    /// Whether the unit is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The decision engine state (diagnostics/tests).
    pub fn engine(&self) -> &ReconfigEngine {
        &self.engine
    }

    /// The instruction cost at the issuing core's current frequency.
    fn op_cost(&self, core_freq: Frequency) -> SimDuration {
        core_freq.cycles_to_duration(self.config.op_cycles as u64)
    }

    /// `rsu_reset`: clears all per-core state; the unit stays enabled.
    pub fn reset(&mut self) {
        self.engine.reset();
    }

    /// `rsu_disable`: stops the unit; subsequent task operations fail and
    /// the runtime must fall back to the software path.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables a disabled unit (modelled as re-running `rsu_init` with
    /// the stored configuration).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `rsu_start_task(cpu, critic)`: notifies the unit that a task of the
    /// given criticality starts on `cpu`. `core_freq` is the issuing core's
    /// current frequency (determines the instruction cost).
    pub fn start_task(
        &mut self,
        cpu: usize,
        critical: bool,
        core_freq: Frequency,
    ) -> Result<RsuOutcome, RsuError> {
        self.check(cpu)?;
        let cmds = self.engine.on_task_start(cpu, critical);
        Ok(RsuOutcome {
            cmds,
            cost: self.op_cost(core_freq),
        })
    }

    /// `rsu_end_task(cpu)`: notifies the unit that the task on `cpu`
    /// finished.
    pub fn end_task(&mut self, cpu: usize, core_freq: Frequency) -> Result<RsuOutcome, RsuError> {
        self.check(cpu)?;
        let cmds = self.engine.on_task_end(cpu);
        Ok(RsuOutcome {
            cmds,
            cost: self.op_cost(core_freq),
        })
    }

    /// The runtime idle loop on `cpu` found no work (issued as a second
    /// `rsu_end_task` from the idle path): an accelerated idle core
    /// decelerates, releasing its budget (§V-B).
    pub fn core_idle(&mut self, cpu: usize, core_freq: Frequency) -> Result<RsuOutcome, RsuError> {
        self.check(cpu)?;
        let cmds = self.engine.on_core_idle(cpu);
        Ok(RsuOutcome {
            cmds,
            cost: self.op_cost(core_freq),
        })
    }

    /// `rsu_read_critic(cpu)`: reads the tracked criticality (used by the OS
    /// at context-switch time, §III-B-3).
    pub fn read_critic(&self, cpu: usize) -> Result<TaskCrit, RsuError> {
        self.check(cpu)?;
        Ok(self.engine.crit(cpu))
    }

    /// OS write of a saved criticality value at context restore. `NoTask`
    /// re-schedules the core's acceleration as if its task ended; a concrete
    /// criticality behaves like a task start (see [`crate::virt`]).
    pub fn write_critic(
        &mut self,
        cpu: usize,
        crit: TaskCrit,
        core_freq: Frequency,
    ) -> Result<RsuOutcome, RsuError> {
        self.check(cpu)?;
        let cmds = match crit {
            TaskCrit::NoTask => self.engine.on_task_end(cpu),
            TaskCrit::Critical => self.engine.on_task_start(cpu, true),
            TaskCrit::NonCritical => self.engine.on_task_start(cpu, false),
        };
        Ok(RsuOutcome {
            cmds,
            cost: self.op_cost(core_freq),
        })
    }

    /// The level a command maps to.
    pub fn level_for(&self, cmd: Cmd) -> PowerLevel {
        match cmd {
            Cmd::Accelerate(_) => self.config.accel_level,
            Cmd::Decelerate(_) => self.config.non_accel_level,
        }
    }

    fn check(&self, cpu: usize) -> Result<(), RsuError> {
        if !self.enabled {
            return Err(RsuError::Disabled);
        }
        if cpu >= self.config.num_cores {
            return Err(RsuError::BadCore(cpu));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rsu(budget: usize) -> Rsu {
        Rsu::init(RsuConfig {
            num_cores: 4,
            budget,
            ..RsuConfig::paper_default(budget)
        })
    }

    const F: Frequency = Frequency::from_ghz(1);

    #[test]
    fn start_task_accelerates_within_budget() {
        let mut r = rsu(2);
        let o = r.start_task(0, false, F).unwrap();
        assert_eq!(o.cmds, vec![Cmd::Accelerate(0)]);
        // 32 cycles at 1 GHz = 32 ns.
        assert_eq!(o.cost, SimDuration::from_ns(32));
        assert_eq!(r.level_for(o.cmds[0]), PowerLevel::paper_fast());
    }

    #[test]
    fn disabled_unit_rejects_operations() {
        let mut r = rsu(1);
        r.disable();
        assert_eq!(r.start_task(0, true, F).unwrap_err(), RsuError::Disabled);
        assert_eq!(r.read_critic(0).unwrap_err(), RsuError::Disabled);
        r.enable();
        assert!(r.start_task(0, true, F).is_ok());
    }

    #[test]
    fn bad_core_rejected() {
        let mut r = rsu(1);
        assert_eq!(r.start_task(9, true, F).unwrap_err(), RsuError::BadCore(9));
        assert_eq!(r.end_task(9, F).unwrap_err(), RsuError::BadCore(9));
    }

    #[test]
    fn read_critic_tracks_task_state() {
        let mut r = rsu(2);
        assert_eq!(r.read_critic(0).unwrap(), TaskCrit::NoTask);
        r.start_task(0, true, F).unwrap();
        assert_eq!(r.read_critic(0).unwrap(), TaskCrit::Critical);
        r.end_task(0, F).unwrap();
        assert_eq!(r.read_critic(0).unwrap(), TaskCrit::NoTask);
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let mut r = rsu(1);
        r.start_task(0, true, F).unwrap();
        r.reset();
        assert!(r.is_enabled());
        assert_eq!(r.engine().accelerated_count(), 0);
    }

    #[test]
    fn write_critic_no_task_frees_budget() {
        let mut r = rsu(1);
        r.start_task(0, true, F).unwrap();
        r.start_task(1, true, F).unwrap(); // denied
        let o = r.write_critic(0, TaskCrit::NoTask, F).unwrap();
        // Preempting core 0's thread hands the budget to core 1.
        assert_eq!(o.cmds, vec![Cmd::Decelerate(0), Cmd::Accelerate(1)]);
    }

    #[test]
    fn op_cost_scales_with_core_frequency() {
        let mut r = rsu(1);
        let slow = r.start_task(0, false, Frequency::from_ghz(1)).unwrap();
        r.reset();
        let fast = r.start_task(0, false, Frequency::from_ghz(2)).unwrap();
        assert_eq!(slow.cost.as_ps(), 2 * fast.cost.as_ps());
    }
}
