//! The CATA reconfiguration decision algorithm (§III-A), as a pure state
//! machine.
//!
//! The algorithm, quoted from the paper:
//!
//! > When a core requests a new task [...] If there is enough power budget
//! > the core is set to the fastest power state, even for non-critical
//! > tasks. If there is no available power budget and the task is critical,
//! > the runtime system looks for an accelerated core executing a
//! > non-critical task, decreases its frequency, and accelerates the core of
//! > the new task. In the case that all fast cores are running critical
//! > tasks, the incoming task cannot be accelerated [...] Every time an
//! > accelerated task finishes, the runtime system decelerates the core
//! > and, if there is any non-accelerated critical task, one of them is
//! > accelerated.
//!
//! Keeping this in one place — shared by the software RSM and the hardware
//! RSU — guarantees both paths take identical decisions and differ only in
//! cost, which is what the paper's CATA vs. CATA+RSU comparison isolates.

use serde::{Deserialize, Serialize};

/// Criticality of the task on a core, as tracked by the RSM/RSU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskCrit {
    /// The core is not executing any task.
    NoTask,
    /// The core executes a non-critical task.
    NonCritical,
    /// The core executes a critical task.
    Critical,
}

/// A reconfiguration command the engine emits towards the DVFS controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmd {
    /// Raise the core to the accelerated level.
    Accelerate(usize),
    /// Lower the core to the non-accelerated level.
    Decelerate(usize),
}

impl Cmd {
    /// The core this command targets.
    pub fn core(self) -> usize {
        match self {
            Cmd::Accelerate(c) | Cmd::Decelerate(c) => c,
        }
    }
}

/// The shared decision state machine.
///
/// Invariant: the number of accelerated cores never exceeds the budget, at
/// any point, including *between* the commands of a single decision — every
/// emitted command list orders decelerations before the accelerations they
/// fund.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigEngine {
    crit: Vec<TaskCrit>,
    accelerated: Vec<bool>,
    budget: usize,
    accel_count: usize,
}

impl ReconfigEngine {
    /// Creates the engine for `num_cores` cores with a power budget of at
    /// most `budget` simultaneously accelerated cores.
    ///
    /// # Panics
    /// Panics if `budget > num_cores`.
    pub fn new(num_cores: usize, budget: usize) -> Self {
        assert!(
            budget <= num_cores,
            "budget {budget} exceeds core count {num_cores}"
        );
        ReconfigEngine {
            crit: vec![TaskCrit::NoTask; num_cores],
            accelerated: vec![false; num_cores],
            budget,
            accel_count: 0,
        }
    }

    /// Number of cores tracked.
    pub fn num_cores(&self) -> usize {
        self.crit.len()
    }

    /// The power budget (max accelerated cores).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Cores currently accelerated.
    pub fn accelerated_count(&self) -> usize {
        self.accel_count
    }

    /// The tracked criticality of `core`'s task.
    pub fn crit(&self, core: usize) -> TaskCrit {
        self.crit[core]
    }

    /// Whether `core` is accelerated.
    pub fn is_accelerated(&self, core: usize) -> bool {
        self.accelerated[core]
    }

    /// A task of the given criticality starts on `core`. Returns the
    /// commands to apply, decelerations first.
    pub fn on_task_start(&mut self, core: usize, critical: bool) -> Vec<Cmd> {
        self.crit[core] = if critical {
            TaskCrit::Critical
        } else {
            TaskCrit::NonCritical
        };

        if self.accelerated[core] {
            // Already fast (e.g. restored context, or back-to-back schedule
            // before the deceleration settled its bookkeeping): keep it.
            return Vec::new();
        }
        if self.accel_count < self.budget {
            self.accelerated[core] = true;
            self.accel_count += 1;
            return vec![Cmd::Accelerate(core)];
        }
        if critical {
            // No budget: displace an accelerated non-critical task, if any.
            if let Some(victim) = self.find_victim(core) {
                self.accelerated[victim] = false;
                self.accelerated[core] = true;
                return vec![Cmd::Decelerate(victim), Cmd::Accelerate(core)];
            }
        }
        Vec::new()
    }

    /// The task on `core` finishes. Returns the commands to apply,
    /// decelerations first.
    ///
    /// If a critical task is running non-accelerated, the freed budget moves
    /// to it immediately (§III-A). Otherwise the core *keeps* its
    /// accelerated state: §V-B specifies that CATA decelerates a core at
    /// task end only "when a task finishes and there are no other tasks
    /// ready to execute" — the runtime reports that case through
    /// [`on_core_idle`](Self::on_core_idle), avoiding a useless
    /// decelerate/accelerate pair between back-to-back tasks.
    pub fn on_task_end(&mut self, core: usize) -> Vec<Cmd> {
        self.crit[core] = TaskCrit::NoTask;
        if !self.accelerated[core] {
            return Vec::new();
        }
        if let Some(next) = self.find_waiting_critical() {
            self.accelerated[core] = false;
            self.accelerated[next] = true;
            return vec![Cmd::Decelerate(core), Cmd::Accelerate(next)];
        }
        Vec::new()
    }

    /// The worker on `core` found no ready task and is entering the idle
    /// loop: an accelerated idle core is decelerated (reducing idle power
    /// and freeing budget). The freed slot goes to a running non-accelerated
    /// task — critical first, else any (§V-B: "CATA reassigns the available
    /// power budget to the remaining executing tasks, reducing the load
    /// imbalance"; the fork-join benchmarks have no critical annotations at
    /// all, so the reassignment cannot be criticality-gated).
    pub fn on_core_idle(&mut self, core: usize) -> Vec<Cmd> {
        if !self.accelerated[core] {
            return Vec::new();
        }
        self.accelerated[core] = false;
        let mut cmds = vec![Cmd::Decelerate(core)];
        if let Some(next) = self
            .find_waiting_critical()
            .or_else(|| self.find_waiting_running())
        {
            self.accelerated[next] = true;
            cmds.push(Cmd::Accelerate(next));
        } else {
            self.accel_count -= 1;
        }
        cmds
    }

    /// Directly sets a core's tracked criticality (used by the OS
    /// virtualization path; does not reconfigure anything).
    pub fn set_crit(&mut self, core: usize, crit: TaskCrit) {
        self.crit[core] = crit;
    }

    /// Resets all tracked state (cores keep whatever frequency they have;
    /// the caller is responsible for physically decelerating if needed).
    pub fn reset(&mut self) {
        self.crit.fill(TaskCrit::NoTask);
        self.accelerated.fill(false);
        self.accel_count = 0;
    }

    /// Lowest-numbered accelerated core running a non-critical task (victim
    /// for displacement). A core with *no* task that is still accelerated is
    /// preferred over one doing non-critical work.
    fn find_victim(&self, exclude: usize) -> Option<usize> {
        let mut non_critical = None;
        for c in 0..self.crit.len() {
            if c == exclude || !self.accelerated[c] {
                continue;
            }
            match self.crit[c] {
                TaskCrit::NoTask => return Some(c),
                TaskCrit::NonCritical => {
                    if non_critical.is_none() {
                        non_critical = Some(c);
                    }
                }
                TaskCrit::Critical => {}
            }
        }
        non_critical
    }

    /// Lowest-numbered non-accelerated core running a critical task.
    fn find_waiting_critical(&self) -> Option<usize> {
        (0..self.crit.len()).find(|&c| !self.accelerated[c] && self.crit[c] == TaskCrit::Critical)
    }

    /// Lowest-numbered non-accelerated core running any task.
    fn find_waiting_running(&self) -> Option<usize> {
        (0..self.crit.len())
            .find(|&c| !self.accelerated[c] && self.crit[c] == TaskCrit::NonCritical)
    }

    /// Debug invariant check: the acceleration count matches the flags and
    /// never exceeds the budget.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.accelerated.iter().filter(|&&a| a).count();
        if n != self.accel_count {
            return Err(format!("accel_count {} != flags {n}", self.accel_count));
        }
        if n > self.budget {
            return Err(format!("budget exceeded: {n} > {}", self.budget));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerates_while_budget_lasts_even_non_critical() {
        let mut e = ReconfigEngine::new(4, 2);
        assert_eq!(e.on_task_start(0, false), vec![Cmd::Accelerate(0)]);
        assert_eq!(e.on_task_start(1, false), vec![Cmd::Accelerate(1)]);
        // Budget exhausted; non-critical task runs slow.
        assert_eq!(e.on_task_start(2, false), vec![]);
        assert_eq!(e.accelerated_count(), 2);
        e.check_invariants().unwrap();
    }

    #[test]
    fn critical_task_displaces_non_critical() {
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, false); // accelerated non-critical
        let cmds = e.on_task_start(1, true);
        assert_eq!(cmds, vec![Cmd::Decelerate(0), Cmd::Accelerate(1)]);
        assert!(e.is_accelerated(1));
        assert!(!e.is_accelerated(0));
        assert_eq!(e.accelerated_count(), 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn critical_task_cannot_displace_critical() {
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, true);
        let cmds = e.on_task_start(1, true);
        assert!(cmds.is_empty(), "all fast cores critical: run slow");
        assert!(!e.is_accelerated(1));
    }

    #[test]
    fn task_end_hands_budget_to_waiting_critical() {
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, true); // accelerated
        e.on_task_start(1, true); // denied, critical waits at slow speed
        let cmds = e.on_task_end(0);
        assert_eq!(cmds, vec![Cmd::Decelerate(0), Cmd::Accelerate(1)]);
        assert_eq!(e.accelerated_count(), 1);
        e.check_invariants().unwrap();
    }

    #[test]
    fn task_end_without_waiter_keeps_acceleration() {
        // §V-B: deceleration happens when the core has nothing to run, not
        // at every task boundary.
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, false);
        assert!(e.on_task_end(0).is_empty());
        assert_eq!(e.accelerated_count(), 1);
        // A back-to-back task on the same core needs no reconfiguration.
        assert!(e.on_task_start(0, false).is_empty());
        assert!(e.is_accelerated(0));
    }

    #[test]
    fn idle_core_decelerates_and_frees_budget() {
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, false);
        e.on_task_end(0);
        let cmds = e.on_core_idle(0);
        assert_eq!(cmds, vec![Cmd::Decelerate(0)]);
        assert_eq!(e.accelerated_count(), 0);
        // Budget available again.
        assert_eq!(e.on_task_start(2, false), vec![Cmd::Accelerate(2)]);
    }

    #[test]
    fn idle_core_hands_budget_to_waiting_critical() {
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, false); // takes budget
        e.on_task_start(1, true); // critical, denied
        e.on_task_end(0); // keeps acceleration? no — critical is waiting
                          // on_task_end already moved the budget in this case:
        assert!(e.is_accelerated(1));
        assert!(!e.is_accelerated(0));
        // Now let a non-critical hold budget while another critical waits,
        // and release via idle.
        let mut e = ReconfigEngine::new(4, 1);
        e.on_task_start(0, false);
        e.on_task_end(0); // no waiter: stays accelerated with NoTask
        e.on_task_start(1, true); // critical: displaces the idle-ish core 0
        assert!(e.is_accelerated(1));
        e.check_invariants().unwrap();
    }

    #[test]
    fn idle_on_slow_core_is_silent() {
        let mut e = ReconfigEngine::new(2, 1);
        assert!(e.on_core_idle(1).is_empty());
    }

    #[test]
    fn end_on_slow_core_is_silent() {
        let mut e = ReconfigEngine::new(2, 1);
        e.on_task_start(0, true); // takes the budget
        e.on_task_start(1, false); // runs slow
        assert!(e.on_task_end(1).is_empty());
        assert_eq!(e.crit(1), TaskCrit::NoTask);
    }

    #[test]
    fn decelerations_precede_accelerations_in_every_decision() {
        // The ordering is what keeps the instantaneous accelerated count
        // within budget during a swap.
        let mut e = ReconfigEngine::new(8, 1);
        e.on_task_start(0, false);
        let cmds = e.on_task_start(1, true);
        let dec_pos = cmds.iter().position(|c| matches!(c, Cmd::Decelerate(_)));
        let acc_pos = cmds.iter().position(|c| matches!(c, Cmd::Accelerate(_)));
        assert!(dec_pos.unwrap() < acc_pos.unwrap());
    }

    #[test]
    fn zero_budget_never_accelerates() {
        let mut e = ReconfigEngine::new(4, 0);
        assert!(e.on_task_start(0, true).is_empty());
        assert!(e.on_task_start(1, false).is_empty());
        assert!(e.on_task_end(0).is_empty());
        assert_eq!(e.accelerated_count(), 0);
    }

    #[test]
    fn full_budget_accelerates_everyone() {
        let mut e = ReconfigEngine::new(3, 3);
        for c in 0..3 {
            assert_eq!(e.on_task_start(c, false), vec![Cmd::Accelerate(c)]);
        }
        e.check_invariants().unwrap();
    }

    #[test]
    fn reset_clears_state() {
        let mut e = ReconfigEngine::new(2, 2);
        e.on_task_start(0, true);
        e.reset();
        assert_eq!(e.accelerated_count(), 0);
        assert_eq!(e.crit(0), TaskCrit::NoTask);
        e.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_above_core_count_rejected() {
        let _ = ReconfigEngine::new(2, 3);
    }

    #[test]
    fn random_event_stream_preserves_budget_invariant() {
        // Deterministic pseudo-random walk over start/end events.
        let mut e = ReconfigEngine::new(8, 3);
        let mut running = [false; 8];
        let mut rng = cata_sim::seeded::SplitMix64::new(0);
        for _ in 0..10_000 {
            let x = rng.next_u64();
            let core = (x % 8) as usize;
            if running[core] {
                e.on_task_end(core);
                running[core] = false;
            } else {
                e.on_task_start(core, x & 0x100 != 0);
                running[core] = true;
            }
            e.check_invariants().unwrap();
        }
    }
}
