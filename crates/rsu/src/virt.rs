//! RSU virtualization across OS context switches (§III-B-3).
//!
//! The RSU tracks *cores*, but the OS multiplexes *threads* onto cores. At a
//! preemption the OS reads the outgoing thread's criticality from the RSU
//! (`rsu_read_critic`), saves it in the kernel's per-thread
//! `thread_struct`, and writes `NoTask` so the unit can hand the core's
//! budget to other work while the thread is off-core. When the thread is
//! rescheduled its saved criticality is written back, which behaves like a
//! task start. This lets several independent applications share one RSU.

use crate::engine::{Cmd, TaskCrit};
use crate::unit::{Rsu, RsuError};
use cata_sim::time::Frequency;
use serde::{Deserialize, Serialize};

/// The slice of the kernel `thread_struct` the paper adds: the saved task
/// criticality of a descheduled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ThreadStruct {
    /// Criticality saved at the last preemption, if the thread was running a
    /// task.
    pub saved_crit: Option<SavedCrit>,
}

/// A saved criticality value (only real task states are saved; `NoTask`
/// saves as `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SavedCrit {
    /// Thread was running a critical task.
    Critical,
    /// Thread was running a non-critical task.
    NonCritical,
}

/// Preempts the thread on `cpu`: saves its criticality into `thread` and
/// clears the RSU slot (possibly re-distributing the budget). Returns the
/// DVFS commands to apply.
pub fn preempt(
    rsu: &mut Rsu,
    cpu: usize,
    thread: &mut ThreadStruct,
    core_freq: Frequency,
) -> Result<Vec<Cmd>, RsuError> {
    let crit = rsu.read_critic(cpu)?;
    thread.saved_crit = match crit {
        TaskCrit::Critical => Some(SavedCrit::Critical),
        TaskCrit::NonCritical => Some(SavedCrit::NonCritical),
        TaskCrit::NoTask => None,
    };
    if thread.saved_crit.is_some() {
        Ok(rsu.write_critic(cpu, TaskCrit::NoTask, core_freq)?.cmds)
    } else {
        Ok(Vec::new())
    }
}

/// Resumes `thread` on `cpu`: restores its saved criticality into the RSU
/// (behaving like a task start). Returns the DVFS commands to apply.
pub fn resume(
    rsu: &mut Rsu,
    cpu: usize,
    thread: &ThreadStruct,
    core_freq: Frequency,
) -> Result<Vec<Cmd>, RsuError> {
    match thread.saved_crit {
        Some(SavedCrit::Critical) => Ok(rsu.write_critic(cpu, TaskCrit::Critical, core_freq)?.cmds),
        Some(SavedCrit::NonCritical) => Ok(rsu
            .write_critic(cpu, TaskCrit::NonCritical, core_freq)?
            .cmds),
        None => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::RsuConfig;

    const F: Frequency = Frequency::from_ghz(1);

    fn rsu(budget: usize) -> Rsu {
        Rsu::init(RsuConfig {
            num_cores: 4,
            budget,
            ..RsuConfig::paper_default(budget)
        })
    }

    #[test]
    fn preempt_saves_and_clears() {
        let mut r = rsu(2);
        r.start_task(0, true, F).unwrap();
        let mut th = ThreadStruct::default();
        let cmds = preempt(&mut r, 0, &mut th, F).unwrap();
        assert_eq!(th.saved_crit, Some(SavedCrit::Critical));
        assert_eq!(r.read_critic(0).unwrap(), TaskCrit::NoTask);
        // Nobody is waiting for the budget: the core keeps its accelerated
        // state (it is about to run another thread) and no command is
        // issued.
        assert!(cmds.is_empty());
        assert!(r.engine().is_accelerated(0));
    }

    #[test]
    fn preempt_hands_budget_to_waiting_critical() {
        let mut r = rsu(1);
        r.start_task(0, true, F).unwrap(); // holds the single budget slot
        r.start_task(1, true, F).unwrap(); // critical, denied
        let mut th = ThreadStruct::default();
        let cmds = preempt(&mut r, 0, &mut th, F).unwrap();
        assert_eq!(cmds, vec![Cmd::Decelerate(0), Cmd::Accelerate(1)]);
    }

    #[test]
    fn resume_restores_criticality_and_competes_for_budget() {
        let mut r = rsu(1);
        r.start_task(0, true, F).unwrap();
        let mut th = ThreadStruct::default();
        preempt(&mut r, 0, &mut th, F).unwrap();
        // Core 0 still holds the budget with no task on it; the returning
        // critical thread on core 2 displaces exactly that idle-ish holder.
        let cmds = resume(&mut r, 2, &th, F).unwrap();
        assert_eq!(cmds, vec![Cmd::Decelerate(0), Cmd::Accelerate(2)]);
    }

    #[test]
    fn idle_thread_round_trip_is_silent() {
        let mut r = rsu(1);
        let mut th = ThreadStruct::default();
        let cmds = preempt(&mut r, 3, &mut th, F).unwrap();
        assert!(cmds.is_empty());
        assert_eq!(th.saved_crit, None);
        let cmds = resume(&mut r, 3, &th, F).unwrap();
        assert!(cmds.is_empty());
    }

    #[test]
    fn two_applications_share_the_rsu() {
        // App A (critical tasks) and app B (non-critical) alternate on the
        // same core via context switches; the RSU keeps the budget with the
        // critical app whenever it is on-core.
        let mut r = rsu(1);
        let mut th_a = ThreadStruct::default();
        let th_b = ThreadStruct {
            saved_crit: Some(SavedCrit::NonCritical),
        };

        r.start_task(0, true, F).unwrap(); // A runs critical on core 0
        preempt(&mut r, 0, &mut th_a, F).unwrap();
        // B resumes on the same core, which kept the accelerated state:
        // nothing to reconfigure, B simply inherits the fast core.
        let cmds = resume(&mut r, 0, &th_b, F).unwrap();
        assert!(cmds.is_empty());
        assert!(r.engine().is_accelerated(0));
        // A comes back on core 1 and displaces B.
        let cmds = resume(&mut r, 1, &th_a, F).unwrap();
        assert_eq!(cmds, vec![Cmd::Decelerate(0), Cmd::Accelerate(1)]);
    }
}
