//! # cata-rsu — the Runtime Support Unit
//!
//! The paper's second contribution (§III-B): a small hardware unit that
//! executes the CATA reconfiguration algorithm, relieving the runtime of the
//! serialized software path (RSM lock + cpufreq syscalls). The RSU tracks,
//! per core, the criticality of the running task and the acceleration
//! status, plus the power budget and the two DVFS levels, and drives the
//! DVFS controller directly on task start/end events.
//!
//! Modules:
//!
//! - [`engine`]: the *pure* reconfiguration decision algorithm (§III-A).
//!   Both the software RSM (in `cata-core`) and the hardware RSU here wrap
//!   this one implementation, so the two paths cannot diverge — they differ
//!   only in latency and serialization, exactly as in the paper.
//! - [`unit`]: the register-level RSU with its six ISA operations
//!   (`rsu_init`, `rsu_reset`, `rsu_disable`, `rsu_start_task`,
//!   `rsu_end_task`, `rsu_read_critic`) and their cycle costs.
//! - [`virt`]: OS context-switch virtualization (§III-B-3): saving and
//!   restoring task criticality in the kernel `thread_struct` so independent
//!   applications can share the RSU.
//! - [`overhead`]: the §III-B-4 storage/area/power overhead model (CACTI
//!   stand-in) reproducing the "3·N + log₂N + 2·log₂P bits, <0.0001 % area,
//!   <50 µW" claims.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod overhead;
pub mod unit;
pub mod virt;

pub use engine::{Cmd, ReconfigEngine, TaskCrit};
pub use unit::{Rsu, RsuConfig, RsuError, RsuOutcome};
