//! RSU area and power overhead (§III-B-4; CACTI stand-in).
//!
//! The paper's accounting:
//!
//! > The RSU requires a storage of 3 bits per core for the criticality and
//! > status fields, and log₂ num_cores bits for the power budget. In
//! > addition, two registers are required to configure the critical and
//! > non-critical power states [...] log₂ num_power_states bits [each].
//! > This results in a total storage cost of
//! > 3 × num_cores + log₂ num_cores + 2 × log₂ num_power_states bits.
//!
//! evaluated with CACTI to "less than 0.0001 % [area] in a 32-core
//! processor" and "less than 50 µW". We reproduce the formula exactly and
//! replace CACTI with a flip-flop-based area/leakage model at 22 nm; the
//! conclusions (sub-0.0001 % area, sub-50 µW power) hold with wide margin.

use serde::{Deserialize, Serialize};

/// Ceiling log2 (bits needed to encode `n` distinct values), with
/// `ceil_log2(0|1) = 0`.
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// The RSU storage/area/power overhead report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RsuOverhead {
    /// Cores tracked.
    pub num_cores: usize,
    /// DVFS power states available.
    pub num_power_states: usize,
    /// Total storage in bits (the paper's formula).
    pub storage_bits: u64,
    /// Estimated RSU area in mm².
    pub area_mm2: f64,
    /// RSU area as a fraction of the chip.
    pub area_fraction: f64,
    /// Estimated RSU power in microwatts.
    pub power_uw: f64,
}

/// Technology constants for the area/power estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Area of one storage bit implemented as a standard-cell flip-flop with
    /// muxing, in µm² (22 nm: ≈ 2 µm², deliberately pessimistic vs. SRAM).
    pub um2_per_bit: f64,
    /// Leakage per bit in nanowatts (22 nm standard cell: ≈ 5 nW).
    pub leak_nw_per_bit: f64,
    /// Dynamic energy per RSU operation in picojoules (table scan + update).
    pub pj_per_op: f64,
    /// RSU operations per second under full load (2 per task; paper-scale
    /// fine-grained tasking ≈ 1 M tasks/s across the chip).
    pub ops_per_sec: f64,
    /// Die area of the host chip in mm² (32-core at 22 nm ≈ 400 mm²).
    pub die_mm2: f64,
}

impl TechParams {
    /// 22 nm constants matching the paper's McPAT/CACTI setting.
    pub fn nm22() -> Self {
        TechParams {
            um2_per_bit: 2.0,
            leak_nw_per_bit: 5.0,
            pj_per_op: 1.0,
            ops_per_sec: 2_000_000.0,
            die_mm2: 400.0,
        }
    }
}

/// The paper's storage formula:
/// `3·num_cores + ceil_log2(num_cores) + 2·ceil_log2(num_power_states)`.
pub fn storage_bits(num_cores: usize, num_power_states: usize) -> u64 {
    3 * num_cores as u64 + ceil_log2(num_cores) as u64 + 2 * ceil_log2(num_power_states) as u64
}

/// Computes the full overhead report.
pub fn estimate(num_cores: usize, num_power_states: usize, tech: &TechParams) -> RsuOverhead {
    let bits = storage_bits(num_cores, num_power_states);
    let area_um2 = bits as f64 * tech.um2_per_bit;
    let area_mm2 = area_um2 * 1e-6;
    let leak_uw = bits as f64 * tech.leak_nw_per_bit / 1000.0;
    let dyn_uw = tech.pj_per_op * tech.ops_per_sec / 1e6; // pJ/op · op/s = µW·(1e-6)
    RsuOverhead {
        num_cores,
        num_power_states,
        storage_bits: bits,
        area_mm2,
        area_fraction: area_mm2 / tech.die_mm2,
        power_uw: leak_uw + dyn_uw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(33), 6);
    }

    #[test]
    fn paper_storage_formula_32_cores_2_states() {
        // 3×32 + log2(32) + 2×log2(2) = 96 + 5 + 2 = 103 bits.
        assert_eq!(storage_bits(32, 2), 103);
    }

    #[test]
    fn paper_claims_hold_with_margin() {
        let o = estimate(32, 2, &TechParams::nm22());
        assert_eq!(o.storage_bits, 103);
        // < 0.0001 % of the die.
        assert!(
            o.area_fraction < 0.000_001,
            "area fraction {} not negligible",
            o.area_fraction
        );
        // < 50 µW.
        assert!(o.power_uw < 50.0, "power {} µW too high", o.power_uw);
        assert!(o.power_uw > 0.0);
    }

    #[test]
    fn storage_scales_linearly_with_cores() {
        let small = storage_bits(32, 2);
        let big = storage_bits(1024, 2);
        assert_eq!(big, 3 * 1024 + 10 + 2);
        assert!(big > small);
        // Even a 1024-core RSU stays tiny.
        let o = estimate(1024, 2, &TechParams::nm22());
        assert!(o.area_fraction < 0.0001);
    }

    #[test]
    fn more_power_states_cost_two_registers_worth() {
        // 4 states: 2 bits per register → +2 bits over the 2-state unit.
        assert_eq!(storage_bits(32, 4) - storage_bits(32, 2), 2);
    }
}
