//! Property tests for the reconfiguration engine and the RSU, including the
//! OS virtualization path interleaved with task events.

use cata_rsu::engine::{Cmd, ReconfigEngine, TaskCrit};
use cata_rsu::overhead::{estimate, storage_bits, TechParams};
use cata_rsu::unit::{Rsu, RsuConfig};
use cata_rsu::virt::{preempt, resume, ThreadStruct};
use cata_sim::time::Frequency;
use proptest::prelude::*;

const F: Frequency = Frequency::from_ghz(1);

fn apply_cmds(fast: &mut [bool], cmds: &[Cmd]) {
    for c in cmds {
        match *c {
            Cmd::Accelerate(i) => fast[i] = true,
            Cmd::Decelerate(i) => fast[i] = false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under arbitrary start/end/idle streams the engine's commands, replayed
    /// onto a fast-flag array, always agree with the engine's own view and
    /// never exceed the budget.
    #[test]
    fn engine_commands_replay_consistently(
        events in prop::collection::vec((0usize..6, 0u8..3, any::<bool>()), 0..300),
        budget in 0usize..=6,
    ) {
        let mut e = ReconfigEngine::new(6, budget);
        let mut fast = [false; 6];
        let mut running = [false; 6];
        for (core, op, critical) in events {
            let cmds = match op {
                0 if !running[core] => {
                    running[core] = true;
                    e.on_task_start(core, critical)
                }
                1 if running[core] => {
                    running[core] = false;
                    e.on_task_end(core)
                }
                2 if !running[core] => e.on_core_idle(core),
                _ => continue,
            };
            apply_cmds(&mut fast, &cmds);
            // Replayed state matches the engine's bookkeeping exactly.
            for (i, &f) in fast.iter().enumerate() {
                prop_assert_eq!(f, e.is_accelerated(i), "core {} diverged", i);
            }
            prop_assert!(fast.iter().filter(|&&f| f).count() <= budget);
            // Within a decision, decelerations come first.
            let first_accel = cmds.iter().position(|c| matches!(c, Cmd::Accelerate(_)));
            let last_decel = cmds.iter().rposition(|c| matches!(c, Cmd::Decelerate(_)));
            if let (Some(a), Some(d)) = (first_accel, last_decel) {
                prop_assert!(d < a, "acceleration before deceleration in {:?}", cmds);
            }
        }
    }

    /// A critical task start is never left unaccelerated while a
    /// non-critical task holds budget (the anti-priority-inversion property).
    #[test]
    fn critical_start_displaces_when_possible(
        setup in prop::collection::vec(any::<bool>(), 4),
        budget in 1usize..=4,
    ) {
        let mut e = ReconfigEngine::new(5, budget);
        for (core, crit) in setup.iter().enumerate() {
            e.on_task_start(core, *crit);
        }
        e.on_task_start(4, true);
        if !e.is_accelerated(4) {
            // Then every accelerated core must be running a critical task.
            for core in 0..4 {
                if e.is_accelerated(core) {
                    prop_assert_eq!(e.crit(core), TaskCrit::Critical);
                }
            }
        }
        prop_assert!(e.check_invariants().is_ok());
    }

    /// Preempt/resume round trips preserve the engine's budget invariant and
    /// restore criticality faithfully.
    #[test]
    fn virtualization_round_trips(
        ops in prop::collection::vec((0usize..4, 0u8..4, any::<bool>()), 0..120),
    ) {
        let mut rsu = Rsu::init(RsuConfig {
            num_cores: 4,
            budget: 2,
            ..RsuConfig::paper_default(2)
        });
        let mut threads: [ThreadStruct; 4] = Default::default();
        let mut on_core: [bool; 4] = [true; 4]; // thread i resident on core i
        let mut running: [bool; 4] = [false; 4];
        for (core, op, crit) in ops {
            match op {
                0 if on_core[core] && !running[core] => {
                    rsu.start_task(core, crit, F).unwrap();
                    running[core] = true;
                }
                1 if on_core[core] && running[core] => {
                    rsu.end_task(core, F).unwrap();
                    running[core] = false;
                }
                2 if on_core[core] => {
                    let before = rsu.read_critic(core).unwrap();
                    preempt(&mut rsu, core, &mut threads[core], F).unwrap();
                    on_core[core] = false;
                    // Saved value faithfully encodes what was running.
                    let saved_some = threads[core].saved_crit.is_some();
                    prop_assert_eq!(saved_some, before != TaskCrit::NoTask);
                    prop_assert_eq!(rsu.read_critic(core).unwrap(), TaskCrit::NoTask);
                }
                3 if !on_core[core] => {
                    resume(&mut rsu, core, &threads[core], F).unwrap();
                    on_core[core] = true;
                }
                _ => {}
            }
            prop_assert!(rsu.engine().check_invariants().is_ok());
            prop_assert!(rsu.engine().accelerated_count() <= 2);
        }
    }

    /// The storage formula is exact and monotone; the overhead estimate
    /// stays "negligible" over four orders of magnitude of core counts.
    #[test]
    fn overhead_monotone_and_negligible(cores in 2usize..2048, states in 2usize..16) {
        let bits = storage_bits(cores, states);
        prop_assert!(bits >= 3 * cores as u64);
        prop_assert!(storage_bits(cores + 1, states) > bits);
        let o = estimate(cores, states, &TechParams::nm22());
        prop_assert!(o.area_fraction < 0.001);
        prop_assert!(o.power_uw < 100.0);
    }

    /// Disabled units reject all task operations but re-enable cleanly.
    #[test]
    fn disable_enable_cycle(ops in prop::collection::vec(0usize..4, 0..20)) {
        let mut rsu = Rsu::init(RsuConfig {
            num_cores: 4,
            budget: 2,
            ..RsuConfig::paper_default(2)
        });
        rsu.disable();
        for core in ops {
            prop_assert!(rsu.start_task(core, true, F).is_err());
        }
        rsu.enable();
        rsu.reset();
        prop_assert!(rsu.start_task(0, true, F).is_ok());
    }
}
