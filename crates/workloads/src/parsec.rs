//! The six PARSECSs-shaped benchmark generators.
//!
//! Parameters (task counts, durations, type mixes, dependence shapes,
//! criticality annotations, blocking) are set from the paper's qualitative
//! description of each application (§IV–V) and from the published structure
//! of PARSECSs \[33\]; the mapping is documented per generator. All
//! durations are quoted at the 1 GHz slow level.

use crate::distrib::{lognormal_us, profile_us};
use crate::scale::Scale;
use cata_sim::time::SimDuration;
use cata_tdg::{TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The six applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Fork-join; very many uniform small tasks.
    Blackscholes,
    /// Fork-join; coarse tasks with high duration variance.
    Swaptions,
    /// Per-frame 3×3 stencil; 8 task types; up to 9 parents per task.
    Fluidanimate,
    /// Pipeline; per-type durations spread roughly 10×.
    Bodytrack,
    /// Pipeline; serial I/O chain on the critical path.
    Dedup,
    /// Six-stage pipeline with an I/O output stage.
    Ferret,
}

impl Benchmark {
    /// All six, in the paper's figure order.
    pub fn all() -> [Benchmark; 6] {
        [
            Benchmark::Blackscholes,
            Benchmark::Swaptions,
            Benchmark::Fluidanimate,
            Benchmark::Bodytrack,
            Benchmark::Dedup,
            Benchmark::Ferret,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "Blackscholes",
            Benchmark::Swaptions => "Swaptions",
            Benchmark::Fluidanimate => "Fluidanimate",
            Benchmark::Bodytrack => "Bodytrack",
            Benchmark::Dedup => "Dedup",
            Benchmark::Ferret => "Ferret",
        }
    }

    /// Parallelization family (paper §IV).
    pub fn family(self) -> &'static str {
        match self {
            Benchmark::Blackscholes | Benchmark::Swaptions => "fork-join",
            Benchmark::Fluidanimate => "stencil",
            Benchmark::Bodytrack | Benchmark::Dedup | Benchmark::Ferret => "pipeline",
        }
    }
}

/// Generates the TDG for `bench` at `scale` with a deterministic `seed`.
pub fn generate(bench: Benchmark, scale: Scale, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ ((bench as u64) << 32));
    match bench {
        Benchmark::Blackscholes => blackscholes(scale, &mut rng),
        Benchmark::Swaptions => swaptions(scale, &mut rng),
        Benchmark::Fluidanimate => fluidanimate(scale, &mut rng),
        Benchmark::Bodytrack => bodytrack(scale, &mut rng),
        Benchmark::Dedup => dedup(scale, &mut rng),
        Benchmark::Ferret => ferret(scale, &mut rng),
    }
}

/// Blackscholes: `NUM_RUNS` iterations over a big option array, each split
/// into many equal chunks — fork-join waves of numerous, uniform, fairly
/// short tasks separated by barriers. All tasks are one type with similar
/// criticality (paper: "fork-join applications present tasks with very
/// similar criticality levels"), so nothing is annotated critical and CATS
/// degenerates to FIFO. The sheer reconfiguration *rate* at wave boundaries
/// is what exposes the software path's serialization at 24 fast cores.
pub fn blackscholes(scale: Scale, rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let work = g.add_type("bs_chunk", 0);
    let barrier = g.add_type("bs_barrier", 0);

    let waves = 2 * scale.factor();
    let width = 96;
    let mean_us = 700.0;
    let cv = 0.06;
    let mem_frac = 0.05;

    let mut prev: Option<TaskId> = None;
    for _ in 0..waves {
        let deps: Vec<TaskId> = prev.into_iter().collect();
        let wave: Vec<TaskId> = (0..width)
            .map(|_| {
                let d = lognormal_us(rng, mean_us, cv);
                g.add_task(work, profile_us(d, mem_frac), &deps)
            })
            .collect();
        prev = Some(g.add_task(barrier, profile_us(5.0, 0.0), &wave));
    }
    g
}

/// Swaptions: each simulation prices a batch of swaptions with Monte-Carlo
/// trials; tasks are coarse and their durations vary a lot (different
/// maturities/trials), producing load imbalance at every barrier — the
/// showcase for CATA's budget re-assignment to stragglers. A small fraction
/// of tasks briefly blocks in the kernel (page faults / allocation locks,
/// the §V-D observation).
pub fn swaptions(scale: Scale, rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let work = g.add_type("swaption", 0);
    let barrier = g.add_type("sw_barrier", 0);

    let waves = scale.factor();
    let width = 44;
    let mean_us = 2_200.0;
    let cv = 0.55;
    let mem_frac = 0.10;

    let mut prev: Option<TaskId> = None;
    for _ in 0..waves {
        let deps: Vec<TaskId> = prev.into_iter().collect();
        let wave: Vec<TaskId> = (0..width)
            .map(|_| {
                let d = lognormal_us(rng, mean_us, cv);
                let mut p = profile_us(d, mem_frac);
                if rng.gen_bool(0.12) {
                    p = p.with_block(rng.gen_range(0.2..0.8), SimDuration::from_us(60));
                }
                g.add_task(work, p, &deps)
            })
            .collect();
        prev = Some(g.add_task(barrier, profile_us(5.0, 0.0), &wave));
    }
    g
}

/// Fluidanimate: frames of a particle-fluid simulation over a spatial block
/// grid; each frame runs phases (the paper counts 8 task types) where a
/// block's task reads its 3×3 neighbourhood from the previous phase — up to
/// 9 parents per task, the densest TDG of the suite. The density makes the
/// bottom-level ancestor walk expensive (the CATS+BL pathology) and the
/// per-phase dependence fronts make reconfigurations bursty (the
/// software-CATA lock pathology). Four of the eight phase types are
/// annotated critical (the paper reports an average of four annotations).
pub fn fluidanimate(scale: Scale, rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let phase_types: Vec<_> = (0..8)
        .map(|p| {
            let crit = u8::from(p % 2 == 0);
            g.add_type(format!("fa_phase{p}"), crit)
        })
        .collect();

    let frames = scale.factor();
    let grid = 5usize; // 5×5 = 25 blocks per phase front
                       // The eight phases have similar mean costs (paper §V-A: stencil tasks
                       // "present tasks with very similar criticality levels", so criticality
                       // scheduling alone cannot win); the per-task variance is what CATA's
                       // straggler acceleration exploits.
    let mean_us = [260.0, 230.0, 300.0, 210.0, 280.0, 240.0, 290.0, 220.0];
    let cv = 0.45;
    let mem_frac = 0.30;

    let idx = |x: usize, y: usize| y * grid + x;
    // Task of each block in the most recent completed phase front.
    let mut prev: Vec<Option<TaskId>> = vec![None; grid * grid];
    for _ in 0..frames {
        for (p, &ty) in phase_types.iter().enumerate() {
            let mut front: Vec<Option<TaskId>> = vec![None; grid * grid];
            for y in 0..grid {
                for x in 0..grid {
                    let mut deps = Vec::with_capacity(9);
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let nx = x as i64 + dx;
                            let ny = y as i64 + dy;
                            if nx < 0 || ny < 0 || nx >= grid as i64 || ny >= grid as i64 {
                                continue;
                            }
                            if let Some(t) = prev[idx(nx as usize, ny as usize)] {
                                deps.push(t);
                            }
                        }
                    }
                    let d = lognormal_us(rng, mean_us[p], cv);
                    front[idx(x, y)] = Some(g.add_task(ty, profile_us(d, mem_frac), &deps));
                }
            }
            prev = front;
        }
    }
    g
}

/// A generic per-frame pipeline builder shared by the three pipeline
/// applications. Stage `s` of frame `f` depends on stage `s−1` of frame `f`
/// and on stage `s` of frame `f−1` (stage capacity one — classic pipeline
/// overlap). Parallel stages fan out into `width` tasks joined by a
/// zero-cost stage barrier; serial stages are a single task.
struct StageSpec {
    name: &'static str,
    critical: bool,
    width: usize,
    mean_us: f64,
    cv: f64,
    mem_frac: f64,
    /// Kernel-blocking time appended mid-task (I/O stages), in µs.
    block_us: Option<f64>,
    /// For serial stages: number of chained sub-tasks per frame (deepens the
    /// hop-count path without adding work — the structure that fools
    /// bottom-level estimation, §V-A).
    chain_len: usize,
}

fn pipeline(g: &mut TaskGraph, stages: &[StageSpec], frames: usize, rng: &mut StdRng) {
    let types: Vec<_> = stages
        .iter()
        .map(|s| g.add_type(s.name, u8::from(s.critical)))
        .collect();
    let join_ty = g.add_type("stage_join", 0);

    // history[s] holds the completion tasks of recent frames of stage s.
    // Serial stages (width 1) have capacity one — their tasks chain strictly
    // (ordered file writes); parallel stages have capacity two, the standard
    // double-buffered pipeline overlap that keeps the queues full while a
    // straggler of the previous frame drains.
    let mut history: Vec<std::collections::VecDeque<TaskId>> =
        vec![std::collections::VecDeque::new(); stages.len()];
    for _ in 0..frames {
        let mut prev_stage_done: Option<TaskId> = None;
        for (s, spec) in stages.iter().enumerate() {
            let capacity = if spec.width == 1 { 1 } else { 2 };
            let mut deps: Vec<TaskId> = Vec::new();
            if let Some(p) = prev_stage_done {
                deps.push(p);
            }
            if history[s].len() >= capacity {
                deps.push(history[s][history[s].len() - capacity]);
            }
            let done = if spec.width == 1 {
                // A serial stage is a chain of `chain_len` sub-tasks; the
                // whole chain must finish before the next stage of this
                // frame (and before this stage of the next frame).
                let mut last = None;
                for _ in 0..spec.chain_len.max(1) {
                    let d = lognormal_us(rng, spec.mean_us, spec.cv);
                    let mut prof = profile_us(d, spec.mem_frac);
                    if let Some(b) = spec.block_us {
                        prof = prof.with_block(0.5, SimDuration::from_us(b as u64));
                    }
                    let mut link_deps = deps.clone();
                    if let Some(l) = last {
                        link_deps.push(l);
                    }
                    last = Some(g.add_task(types[s], prof, &link_deps));
                }
                last.expect("chain_len >= 1")
            } else {
                let tasks: Vec<TaskId> = (0..spec.width)
                    .map(|_| {
                        let d = lognormal_us(rng, spec.mean_us, spec.cv);
                        let mut prof = profile_us(d, spec.mem_frac);
                        if let Some(b) = spec.block_us {
                            if rng.gen_bool(0.3) {
                                prof = prof.with_block(
                                    rng.gen_range(0.3..0.7),
                                    SimDuration::from_us(b as u64),
                                );
                            }
                        }
                        g.add_task(types[s], prof, &deps)
                    })
                    .collect();
                g.add_task(join_ty, profile_us(2.0, 0.0), &tasks)
            };
            history[s].push_back(done);
            if history[s].len() > 2 {
                history[s].pop_front();
            }
            prev_stage_done = Some(done);
        }
    }
}

/// Bodytrack: a per-frame pipeline whose stages differ in duration by about
/// an order of magnitude (paper: "task duration can change up to an order of
/// magnitude among task types"). The heavy stages are annotated critical;
/// bottom-level cannot see durations and ranks all stages by path position,
/// which is why CATS+SA beats CATS+BL here. Frame boundaries synchronize
/// many cores at once — the lock-contention pathology for software CATA.
pub fn bodytrack(scale: Scale, rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let stages = [
        StageSpec {
            // Edge maps are memory-bound: running them on a fast core buys
            // little — exactly the tasks CATS+BL wrongly prioritizes (they
            // sit early on the hop-count-longest path).
            name: "bt_edge",
            critical: false,
            width: 24,
            mean_us: 180.0,
            cv: 0.2,
            mem_frac: 0.7,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            // Particle-weight evaluation dominates the frame's *volume* but
            // is wide; the paper's profiling-based annotations target the
            // serializing chain instead.
            name: "bt_weights",
            critical: false,
            width: 40,
            mean_us: 950.0,
            cv: 0.3,
            mem_frac: 0.05,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            name: "bt_resample",
            critical: false,
            width: 16,
            mean_us: 110.0,
            cv: 0.2,
            mem_frac: 0.25,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            // The serializing per-frame aggregation: long, compute bound,
            // and what profiling identifies as the critical path — the SA
            // annotation target (`criticality(1)`).
            name: "bt_aggregate",
            critical: true,
            width: 1,
            mean_us: 1_500.0,
            cv: 0.15,
            mem_frac: 0.15,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            // Output: a chain of four cheap I/O writes per frame. Hop-wise
            // this is the deepest path, so bottom-level chases it; duration-
            // wise it is irrelevant — the §V-A reason CATS+BL trails CATS+SA
            // on Bodytrack.
            name: "bt_output",
            critical: false,
            width: 1,
            mean_us: 90.0,
            cv: 0.1,
            mem_frac: 0.3,
            block_us: Some(40.0),
            chain_len: 4,
        },
    ];
    pipeline(&mut g, &stages, 4 * scale.factor(), rng);
    g
}

/// Dedup: fragment → compress → write pipeline. The writes form a serial,
/// partially I/O-blocked chain on the application's critical path (paper:
/// "compute-intensive tasks followed by I/O-intensive tasks to write results
/// that are in the critical path"), annotated critical; scheduling them on
/// fast cores is where CATS's biggest win (≈20 %) comes from.
pub fn dedup(scale: Scale, rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let stages = [
        StageSpec {
            name: "dd_fragment",
            critical: true,
            width: 1,
            mean_us: 260.0,
            cv: 0.2,
            mem_frac: 0.4,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            name: "dd_compress",
            critical: false,
            width: 40,
            mean_us: 400.0,
            cv: 0.20,
            mem_frac: 0.15,
            block_us: Some(40.0),
            chain_len: 1,
        },
        StageSpec {
            name: "dd_write",
            critical: true,
            width: 1,
            mean_us: 650.0,
            cv: 0.15,
            mem_frac: 0.25,
            block_us: Some(200.0),
            chain_len: 1,
        },
    ];
    pipeline(&mut g, &stages, 12 * scale.factor(), rng);
    g
}

/// Ferret: the six-stage similarity-search pipeline (segment, extract,
/// vector, rank, out), with a heavy `rank` stage and a serial I/O output
/// stage — between Dedup and Bodytrack in behaviour.
pub fn ferret(scale: Scale, rng: &mut StdRng) -> TaskGraph {
    let mut g = TaskGraph::new();
    let stages = [
        StageSpec {
            name: "fr_segment",
            critical: false,
            width: 1,
            mean_us: 140.0,
            cv: 0.15,
            mem_frac: 0.3,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            name: "fr_extract",
            critical: false,
            width: 12,
            mean_us: 380.0,
            cv: 0.3,
            mem_frac: 0.25,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            name: "fr_vector",
            critical: false,
            width: 12,
            mean_us: 460.0,
            cv: 0.3,
            mem_frac: 0.2,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            name: "fr_rank",
            critical: true,
            width: 16,
            mean_us: 880.0,
            cv: 0.35,
            mem_frac: 0.2,
            block_us: None,
            chain_len: 1,
        },
        StageSpec {
            name: "fr_out",
            critical: true,
            width: 1,
            mean_us: 420.0,
            cv: 0.15,
            mem_frac: 0.3,
            block_us: Some(180.0),
            chain_len: 1,
        },
    ];
    pipeline(&mut g, &stages, 10 * scale.factor(), rng);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::time::Frequency;

    #[test]
    fn all_benchmarks_generate_valid_graphs() {
        for b in Benchmark::all() {
            let g = generate(b, Scale::Tiny, 1);
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(g.num_tasks() > 10, "{} too small", b.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::all() {
            let a = generate(b, Scale::Tiny, 7);
            let c = generate(b, Scale::Tiny, 7);
            assert_eq!(a, c, "{} not deterministic", b.name());
        }
    }

    #[test]
    fn scale_grows_task_counts() {
        for b in Benchmark::all() {
            let t = generate(b, Scale::Tiny, 1).num_tasks();
            let s = generate(b, Scale::Small, 1).num_tasks();
            assert!(s > 2 * t, "{}: {t} -> {s}", b.name());
        }
    }

    #[test]
    fn fluidanimate_has_dense_parents_and_eight_types() {
        let g = generate(Benchmark::Fluidanimate, Scale::Tiny, 1);
        let stats = g.stats();
        assert_eq!(stats.max_preds, 9, "stencil must reach 9 parents");
        assert_eq!(g.num_types(), 8);
        // Four of eight types annotated critical (paper: four annotations).
        let crit_types = (0..8)
            .filter(|&i| g.task_type(cata_tdg::TypeId(i)).criticality > 0)
            .count();
        assert_eq!(crit_types, 4);
    }

    #[test]
    fn fork_join_apps_have_no_critical_annotations() {
        for b in [Benchmark::Blackscholes, Benchmark::Swaptions] {
            let g = generate(b, Scale::Tiny, 1);
            let any_critical = g.tasks().any(|t| g.type_of(t.id).criticality > 0);
            assert!(!any_critical, "{} should be unannotated", b.name());
        }
    }

    #[test]
    fn pipelines_have_critical_types_and_blocking() {
        for b in [Benchmark::Bodytrack, Benchmark::Dedup, Benchmark::Ferret] {
            let g = generate(b, Scale::Tiny, 1);
            let any_critical = g.tasks().any(|t| g.type_of(t.id).criticality > 0);
            assert!(any_critical, "{} needs critical types", b.name());
            let any_block = g.tasks().any(|t| !t.profile.blocks.is_empty());
            assert!(any_block, "{} needs I/O blocking", b.name());
        }
    }

    #[test]
    fn bodytrack_type_durations_spread_an_order_of_magnitude() {
        let g = generate(Benchmark::Bodytrack, Scale::Tiny, 1);
        let f = Frequency::from_ghz(1);
        // Mean duration per type (ignoring joins/barriers with <20 µs).
        let mut by_type: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        for t in g.tasks() {
            let d = t.profile.duration_at(f).as_us();
            let e = by_type.entry(t.ty.0).or_insert((0, 0));
            e.0 += d;
            e.1 += 1;
        }
        let means: Vec<u64> = by_type
            .values()
            .map(|&(sum, n)| sum / n.max(1))
            .filter(|&m| m > 20)
            .collect();
        let lo = *means.iter().min().unwrap();
        let hi = *means.iter().max().unwrap();
        assert!(hi >= 8 * lo, "spread {lo}..{hi} too narrow");
    }

    #[test]
    fn dedup_write_chain_is_serial_and_blocking() {
        let g = generate(Benchmark::Dedup, Scale::Tiny, 1);
        let writes: Vec<_> = g
            .tasks()
            .filter(|t| g.task_type(t.ty).name == "dd_write")
            .collect();
        assert!(writes.len() >= 12);
        for w in &writes {
            assert!(!w.profile.blocks.is_empty(), "write must block on I/O");
        }
        // Consecutive writes are chained (each depends on the previous).
        for pair in writes.windows(2) {
            assert!(
                pair[1].preds().contains(&pair[0].id),
                "write chain broken between {} and {}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    #[test]
    fn swaptions_has_high_variance_blackscholes_low() {
        let f = Frequency::from_ghz(1);
        let cv = |b: Benchmark| {
            let g = generate(b, Scale::Small, 3);
            let ds: Vec<f64> = g
                .tasks()
                .filter(|t| {
                    g.type_of(t.id).name != "bs_barrier" && g.type_of(t.id).name != "sw_barrier"
                })
                .map(|t| t.profile.duration_at(f).as_us() as f64)
                .collect();
            let m = ds.iter().sum::<f64>() / ds.len() as f64;
            let v = ds.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / ds.len() as f64;
            v.sqrt() / m
        };
        assert!(cv(Benchmark::Blackscholes) < 0.15);
        assert!(cv(Benchmark::Swaptions) > 0.4);
    }
}
