//! Minimal graphs for unit tests, property tests and examples.

use cata_sim::progress::ExecProfile;
use cata_tdg::{TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A serial chain of `n` tasks of `cycles` CPU cycles each.
pub fn chain(n: usize, cycles: u64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let ty = g.add_type("link", 1);
    let mut prev: Option<TaskId> = None;
    for _ in 0..n {
        let deps: Vec<TaskId> = prev.into_iter().collect();
        prev = Some(g.add_task(ty, ExecProfile::new(cycles, 0), &deps));
    }
    g
}

/// `waves` fork-join waves of `width` independent tasks each, separated by
/// barrier tasks.
pub fn fork_join(waves: usize, width: usize, cycles: u64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let barrier_ty = g.add_type("barrier", 0);
    let work_ty = g.add_type("work", 0);
    let mut barrier: Option<TaskId> = None;
    for _ in 0..waves {
        let deps: Vec<TaskId> = barrier.into_iter().collect();
        let wave: Vec<TaskId> = (0..width)
            .map(|_| g.add_task(work_ty, ExecProfile::new(cycles, 0), &deps))
            .collect();
        barrier = Some(g.add_task(barrier_ty, ExecProfile::new(1000, 0), &wave));
    }
    g
}

/// A diamond of `width` parallel branches between a source and a sink,
/// where one branch (the first) is `skew`× longer — the canonical
/// criticality example from the paper's Figure 1.
pub fn skewed_diamond(width: usize, cycles: u64, skew: u64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let hub_ty = g.add_type("hub", 0);
    let crit_ty = g.add_type("critical-branch", 1);
    let norm_ty = g.add_type("branch", 0);
    let src = g.add_task(hub_ty, ExecProfile::new(1000, 0), &[]);
    let mut branches = Vec::with_capacity(width);
    for i in 0..width {
        let (ty, c) = if i == 0 {
            (crit_ty, cycles * skew)
        } else {
            (norm_ty, cycles)
        };
        branches.push(g.add_task(ty, ExecProfile::new(c, 0), &[src]));
    }
    g.add_task(hub_ty, ExecProfile::new(1000, 0), &branches);
    g
}

/// A random DAG of `n` tasks where each prior task becomes a dependence with
/// probability `edge_p`; durations uniform in `[min_cycles, max_cycles]`.
pub fn random_dag(n: usize, edge_p: f64, min_cycles: u64, max_cycles: u64, seed: u64) -> TaskGraph {
    assert!(min_cycles <= max_cycles);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new();
    let ty_c = g.add_type("rand-crit", 1);
    let ty_n = g.add_type("rand", 0);
    for i in 0..n {
        let mut deps = Vec::new();
        for j in 0..i {
            if rng.gen_bool(edge_p) {
                deps.push(TaskId(j as u32));
            }
        }
        let cycles = rng.gen_range(min_cycles..=max_cycles);
        let ty = if rng.gen_bool(0.25) { ty_c } else { ty_n };
        g.add_task(ty, ExecProfile::new(cycles, 0), &deps);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::time::Frequency;

    #[test]
    fn chain_depth_equals_length() {
        let g = chain(10, 100);
        assert_eq!(g.num_tasks(), 10);
        assert_eq!(g.stats().depth, 10);
        assert_eq!(g.num_edges(), 9);
        g.validate().unwrap();
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(3, 8, 100);
        assert_eq!(g.num_tasks(), 3 * 9);
        // Depth: (work + barrier) × 3.
        assert_eq!(g.stats().depth, 6);
        assert_eq!(g.stats().max_preds, 8);
        g.validate().unwrap();
    }

    #[test]
    fn skewed_diamond_critical_path_is_the_long_branch() {
        let g = skewed_diamond(4, 1000, 10);
        let f = Frequency::from_ghz(1);
        // src(1k) + long branch(10k) + sink(1k) = 12 µs at 1 GHz.
        assert_eq!(g.critical_path_at(f).as_ns(), 12_000);
        g.validate().unwrap();
    }

    #[test]
    fn random_dag_is_valid_and_deterministic() {
        let a = random_dag(50, 0.1, 100, 1000, 42);
        let b = random_dag(50, 0.1, 100, 1000, 42);
        a.validate().unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        let c = random_dag(50, 0.1, 100, 1000, 43);
        // Overwhelmingly likely to differ.
        assert!(a.num_edges() != c.num_edges() || a != c);
    }
}
