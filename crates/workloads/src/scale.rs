//! Workload scales.

use serde::{Deserialize, Serialize};

/// How big a generated workload is.
///
/// Scale only multiplies the number of task instances (frames/waves); task
/// durations, type mixes and topology — the things the scheduling behaviour
/// depends on — are identical across scales, so shapes measured at `Small`
/// match `Paper` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// A handful of tasks; unit tests.
    Tiny,
    /// Hundreds of tasks; fast benches and CI.
    Small,
    /// Thousands of tasks; the figure-regeneration runs (a few seconds of
    /// simulated parallel section, like the paper's simlarge regions).
    Paper,
}

impl Scale {
    /// Multiplier applied to a generator's repetition counts.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 4,
            Scale::Paper => 16,
        }
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_ordered() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Paper.factor());
        assert_eq!(Scale::Paper.name(), "paper");
    }
}
