//! Duration sampling helpers.
//!
//! Task durations in real applications are right-skewed; we use a lognormal
//! sampler built on Box–Muller (the `rand` crate alone is available offline;
//! `rand_distr` is not, so the transform is implemented here).

use cata_sim::progress::ExecProfile;
use rand::Rng;

/// Samples a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a lognormal duration with the given *mean* and coefficient of
/// variation (σ/μ of the resulting distribution).
///
/// # Panics
/// Panics if `mean_us <= 0` or `cv < 0`.
pub fn lognormal_us(rng: &mut impl Rng, mean_us: f64, cv: f64) -> f64 {
    assert!(mean_us > 0.0, "mean must be positive");
    assert!(cv >= 0.0, "cv must be non-negative");
    if cv == 0.0 {
        return mean_us;
    }
    // For lognormal: mean = exp(µ + σ²/2), cv² = exp(σ²) − 1.
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean_us.ln() - sigma2 / 2.0;
    let z = standard_normal(rng);
    (mu + sigma2.sqrt() * z).exp()
}

/// Builds an [`ExecProfile`] for a task of roughly `total_us` microseconds
/// (measured at the 1 GHz slow level) of which `mem_fraction` is
/// frequency-invariant memory time.
///
/// At 1 GHz one cycle is 1 ns, so the CPU part converts to cycles 1:1 with
/// nanoseconds.
pub fn profile_us(total_us: f64, mem_fraction: f64) -> ExecProfile {
    let total_us = total_us.max(0.1); // clamp degenerate samples to 100 ns
    let mem_fraction = mem_fraction.clamp(0.0, 1.0);
    let total_ns = total_us * 1000.0;
    let mem_ns = total_ns * mem_fraction;
    let cpu_cycles = (total_ns - mem_ns).round() as u64;
    ExecProfile::new(cpu_cycles, (mem_ns * 1000.0).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::time::{Frequency, SimDuration};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_matches_requested_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| lognormal_us(&mut rng, 500.0, 0.4))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 500.0).abs() / 500.0 < 0.03, "sample mean {mean}");
    }

    #[test]
    fn lognormal_cv_scales_spread() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let sample = |rng: &mut StdRng, cv: f64| -> f64 {
            let xs: Vec<f64> = (0..n).map(|_| lognormal_us(rng, 100.0, cv)).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
            var.sqrt() / m
        };
        let tight = sample(&mut rng, 0.1);
        let wide = sample(&mut rng, 0.8);
        assert!(tight < 0.15, "tight cv {tight}");
        assert!(wide > 0.6, "wide cv {wide}");
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(lognormal_us(&mut rng, 123.0, 0.0), 123.0);
    }

    #[test]
    fn profile_splits_cpu_and_memory() {
        let p = profile_us(1000.0, 0.3);
        // 1 ms total at 1 GHz: 700 µs CPU (700k cycles) + 300 µs memory.
        assert_eq!(p.cpu_cycles, 700_000);
        assert_eq!(p.mem_ps, SimDuration::from_us(300).as_ps());
        assert_eq!(
            p.duration_at(Frequency::from_ghz(1)),
            SimDuration::from_us(1000)
        );
        // At 2 GHz only the CPU part halves: 350 + 300 = 650 µs.
        assert_eq!(
            p.duration_at(Frequency::from_ghz(2)),
            SimDuration::from_us(650)
        );
    }

    #[test]
    fn pure_compute_profile_scales_perfectly() {
        let p = profile_us(200.0, 0.0);
        let slow = p.duration_at(Frequency::from_ghz(1));
        let fast = p.duration_at(Frequency::from_ghz(2));
        assert_eq!(slow.as_ps(), 2 * fast.as_ps());
    }

    #[test]
    fn degenerate_samples_are_clamped() {
        let p = profile_us(0.0, 0.5);
        assert!(p.duration_at(Frequency::from_ghz(1)) > SimDuration::ZERO);
    }
}
