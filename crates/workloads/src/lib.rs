//! # cata-workloads — PARSECSs-shaped synthetic workloads
//!
//! The paper evaluates on six benchmarks from PARSECSs \[33\] (the
//! task-based OpenMP 4.0 port of PARSEC) with `simlarge` inputs. We cannot
//! ship PARSEC's inputs or code, and at task granularity we do not need to:
//! every effect the paper's evaluation discusses is a function of the TDG
//! *shape* — task counts, duration distributions per task type, dependence
//! topology (fork-join / stencil / pipeline), parent density, criticality
//! spread across types, and where I/O blocking sits. This crate generates
//! graphs with exactly those shapes (parameters documented per generator,
//! DESIGN.md §5 maps each to the paper's description):
//!
//! | Generator | Structure | The paper's observations it must reproduce |
//! |---|---|---|
//! | [`parsec::blackscholes`] | fork-join, many uniform small tasks | CATS ≈ FIFO; CATA small benefit, slight *slowdown* at 24 fast cores from reconfiguration overhead |
//! | [`parsec::swaptions`] | fork-join, coarse high-variance tasks | big CATA wins from re-assigning budget to barrier stragglers |
//! | [`parsec::fluidanimate`] | per-frame 3×3 stencil, 8 task types, ≤9 parents | CATS+BL *loses* (ancestor-walk overhead); software CATA hurt by bursty lock contention; best case +40 % with RSU at 24 fast |
//! | [`parsec::bodytrack`] | pipeline, type durations spread ~10× | CATS+SA > CATS+BL (BL ignores durations); high lock contention; TurboMode degrades badly |
//! | [`parsec::dedup`] | pipeline; serial I/O chain on the critical path | biggest CATS win (criticality scheduling); low lock contention |
//! | [`parsec::ferret`] | 6-stage pipeline, moderate variance | between dedup and bodytrack |
//!
//! [`micro`] additionally provides minimal graphs (chains, fork-join,
//! diamonds, random DAGs) for unit tests and examples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distrib;
pub mod micro;
pub mod parsec;
pub mod scale;

pub use parsec::{generate, Benchmark};
pub use scale::Scale;
