//! Run reports: the measurements every figure/table is built from.

use cata_power::EnergyReport;
use cata_sim::stats::{Counters, LatencySamples};
use cata_sim::time::SimDuration;
use cata_sim::trace::TraceCounts;
use serde::{DeError, Deserialize, Serialize, Value};

/// The result of one simulated execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label ("FIFO", "CATA+RSU", …).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Fast-core count / power budget of the run.
    pub fast_cores: usize,
    /// Parallel-section execution time.
    pub exec_time: SimDuration,
    /// Energy/EDP from the power model.
    pub energy: EnergyReport,
    /// Event counters.
    pub counters: Counters,
    /// Lock-wait distribution of the software reconfiguration path.
    pub lock_waits: LatencySamples,
    /// Reconfiguration latency distribution.
    pub reconfig_latencies: LatencySamples,
    /// Total runtime overhead charged by the acceleration manager.
    pub reconfig_overhead: SimDuration,
    /// Share of aggregate core time spent in the reconfiguration path
    /// (paper §V-C: 0.03 %–3.49 % for CATA).
    pub reconfig_time_share: f64,
    /// Per-core busy fraction.
    pub core_utilization: Vec<f64>,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Per-kind event tallies, present when the run collected them
    /// (`TraceMode::Counters` or `Full`); `None` — and skipped in the
    /// serialized form — when tracing was off, so stored JSONL cells only
    /// pay for counts that exist.
    pub trace_counts: Option<TraceCounts>,
    /// The worker count the run *actually* used, when it differs from the
    /// spec's machine: the native executor clamps the machine to the host,
    /// so a 32-core spec executed on an 8-core laptop is an 8-core result
    /// and must say so. `None` — and skipped in the serialized form, so
    /// sim reports and legacy stores stay byte-identical — when the run
    /// honored the spec machine exactly (every sim run does).
    pub effective_cores: Option<usize>,
    /// Open-system service metrics (arrival/latency/drop accounting),
    /// present only for `repro serve` runs. `None` — and skipped in the
    /// serialized form, so closed-system reports and legacy stores stay
    /// byte-identical — for ordinary single-graph runs.
    pub service: Option<crate::service::ServiceReport>,
    /// Fault-injection accounting, present only when the run carried a
    /// [`FaultSpec`](crate::fault::FaultSpec). `None` — and skipped in
    /// the serialized form, so fault-free reports and legacy stores stay
    /// byte-identical — for runs on a perfect machine.
    pub fault: Option<crate::fault::FaultReport>,
    /// Memory-gate accounting, present only when the run carried a
    /// contended [`MemorySpec`](crate::mem::MemorySpec). `None` — and
    /// skipped in the serialized form, so uncontended reports and legacy
    /// stores stay byte-identical — for runs on the uncontended machine.
    pub memory: Option<crate::mem::MemoryReport>,
}

// Serde is hand-written (the vendored derive has no `#[serde(skip…)]`
// attributes) so `trace_counts: None` is *omitted* from the serialized map
// rather than emitted as `null` — sweep stores stay compact and old
// readers see the exact pre-field layout.
impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("label".into(), self.label.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("fast_cores".into(), self.fast_cores.to_value()),
            ("exec_time".into(), self.exec_time.to_value()),
            ("energy".into(), self.energy.to_value()),
            ("counters".into(), self.counters.to_value()),
            ("lock_waits".into(), self.lock_waits.to_value()),
            (
                "reconfig_latencies".into(),
                self.reconfig_latencies.to_value(),
            ),
            (
                "reconfig_overhead".into(),
                self.reconfig_overhead.to_value(),
            ),
            (
                "reconfig_time_share".into(),
                self.reconfig_time_share.to_value(),
            ),
            ("core_utilization".into(), self.core_utilization.to_value()),
            ("tasks".into(), self.tasks.to_value()),
        ];
        if let Some(tc) = &self.trace_counts {
            m.push(("trace_counts".into(), tc.to_value()));
        }
        if let Some(n) = self.effective_cores {
            m.push(("effective_cores".into(), n.to_value()));
        }
        if let Some(s) = &self.service {
            m.push(("service".into(), s.to_value()));
        }
        if let Some(fr) = &self.fault {
            m.push(("fault".into(), fr.to_value()));
        }
        if let Some(mr) = &self.memory {
            m.push(("memory".into(), mr.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for RunReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("RunReport")?;
        Ok(RunReport {
            label: serde::field(m, "label", "RunReport")?,
            workload: serde::field(m, "workload", "RunReport")?,
            fast_cores: serde::field(m, "fast_cores", "RunReport")?,
            exec_time: serde::field(m, "exec_time", "RunReport")?,
            energy: serde::field(m, "energy", "RunReport")?,
            counters: serde::field(m, "counters", "RunReport")?,
            lock_waits: serde::field(m, "lock_waits", "RunReport")?,
            reconfig_latencies: serde::field(m, "reconfig_latencies", "RunReport")?,
            reconfig_overhead: serde::field(m, "reconfig_overhead", "RunReport")?,
            reconfig_time_share: serde::field(m, "reconfig_time_share", "RunReport")?,
            core_utilization: serde::field(m, "core_utilization", "RunReport")?,
            tasks: serde::field(m, "tasks", "RunReport")?,
            trace_counts: serde::field(m, "trace_counts", "RunReport")?,
            effective_cores: serde::field(m, "effective_cores", "RunReport")?,
            service: serde::field(m, "service", "RunReport")?,
            fault: serde::field(m, "fault", "RunReport")?,
            memory: serde::field(m, "memory", "RunReport")?,
        })
    }
}

impl RunReport {
    /// Speedup over a baseline run (paper figures: normalized to FIFO).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.exec_time.is_zero() {
            return 0.0;
        }
        baseline.exec_time.as_ps() as f64 / self.exec_time.as_ps() as f64
    }

    /// EDP normalized to a baseline run (lower is better). `None` when the
    /// baseline carries no energy — a 0 J baseline used to divide to 0/inf
    /// and render native runs as infinitely better than sim.
    pub fn edp_normalized_to(&self, baseline: &RunReport) -> Option<f64> {
        self.energy.edp_normalized_to(&baseline.energy)
    }

    /// Mean core utilization.
    pub fn avg_utilization(&self) -> f64 {
        if self.core_utilization.is_empty() {
            return 0.0;
        }
        self.core_utilization.iter().sum::<f64>() / self.core_utilization.len() as f64
    }

    /// One-line human-readable summary. Energy-less runs (legacy native
    /// reports) render `energy=n/a edp=n/a` rather than a misleading
    /// `0.0000J edp=0.000000`.
    pub fn summary(&self) -> String {
        let has = self.energy.has_energy();
        let energy = if has {
            format!("{}J", cata_power::fmt_metric(self.energy.energy_j, true, 4))
        } else {
            "n/a".to_string()
        };
        let edp = cata_power::fmt_metric(self.energy.edp, has, 6);
        // A clamped native run is an N-core result, whatever the spec's
        // machine said — make the effective machine visible inline.
        let cores = match self.effective_cores {
            Some(n) => format!(" cores={n}"),
            None => String::new(),
        };
        format!(
            "{:<10} {:<14} fast={:<2}{cores} time={:<12} energy={energy} edp={edp} src={} tasks={} reconfigs={} (overhead {:.2}%)",
            self.label,
            self.workload,
            self.fast_cores,
            self.exec_time.to_string(),
            self.energy.measurement.name(),
            self.tasks,
            self.counters.reconfigs_applied,
            self.reconfig_time_share * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_power::EnergyBreakdown;

    fn report(time_us: u64, energy_j: f64) -> RunReport {
        let t = SimDuration::from_us(time_us);
        RunReport {
            label: "X".into(),
            workload: "w".into(),
            fast_cores: 8,
            exec_time: t,
            energy: EnergyReport::from_parts(
                t.as_secs_f64(),
                EnergyBreakdown {
                    core_busy_j: energy_j,
                    ..Default::default()
                },
            ),
            counters: Counters::default(),
            lock_waits: LatencySamples::new(),
            reconfig_latencies: LatencySamples::new(),
            reconfig_overhead: SimDuration::ZERO,
            reconfig_time_share: 0.0,
            core_utilization: vec![0.5, 1.0],
            tasks: 10,
            trace_counts: None,
            effective_cores: None,
            service: None,
            fault: None,
            memory: None,
        }
    }

    #[test]
    fn normalization_math() {
        let base = report(200, 10.0);
        let fast = report(100, 8.0);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        // EDP: (8 × 100µs) / (10 × 200µs) = 0.4.
        assert!((fast.edp_normalized_to(&base).unwrap() - 0.4).abs() < 1e-12);
        assert!((fast.avg_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_energy_baseline_normalizes_to_none() {
        let base = report(200, 0.0);
        let fast = report(100, 8.0);
        assert_eq!(fast.edp_normalized_to(&base), None);
    }

    #[test]
    fn summary_contains_key_fields() {
        let r = report(100, 1.0);
        let s = r.summary();
        assert!(s.contains("X"));
        assert!(s.contains("fast=8"));
        assert!(s.contains("tasks=10"));
    }

    #[test]
    fn summary_renders_na_for_energyless_runs() {
        let r = report(100, 0.0);
        let s = r.summary();
        assert!(s.contains("energy=n/a"), "{s}");
        assert!(s.contains("edp=n/a"), "{s}");
        assert!(!s.contains("edp=0.000000"), "{s}");
    }

    #[test]
    fn trace_counts_are_skipped_when_absent_and_round_trip_when_present() {
        let r = report(100, 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("trace_counts"),
            "absent counts must be omitted, not null: {json}"
        );
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert!(back.trace_counts.is_none());
        assert_eq!(back.exec_time, r.exec_time);
        assert_eq!(back.core_utilization, r.core_utilization);

        let mut with = report(100, 1.0);
        with.trace_counts = Some(TraceCounts {
            task_starts: 10,
            task_ends: 10,
            reconfig_requests: 3,
            reconfigs_applied: 3,
            halts: 1,
            wakes: 1,
        });
        let json = serde_json::to_string(&with).unwrap();
        assert!(json.contains("trace_counts"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace_counts, with.trace_counts);
    }

    #[test]
    fn service_metrics_are_skipped_when_absent_and_round_trip_when_present() {
        let r = report(100, 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("\"service\""),
            "closed-system reports must keep the legacy layout: {json}"
        );

        let mut served = report(100, 1.0);
        let mut sr = crate::service::ServiceReport {
            arrivals: 7,
            admitted: 6,
            dropped: 1,
            completed: 6,
            duration: SimDuration::from_us(100),
            graphs_per_sec: 60_000.0,
            ..Default::default()
        };
        for i in 1..=6u64 {
            sr.latency.record(SimDuration::from_us(i));
        }
        served.service = Some(sr.clone());
        let json = serde_json::to_string(&served).unwrap();
        assert!(json.contains("\"service\""), "{json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.service, Some(sr));
    }

    #[test]
    fn fault_report_is_skipped_when_absent_and_round_trips_when_present() {
        let r = report(100, 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("\"fault\""),
            "fault-free reports must keep the legacy layout: {json}"
        );

        let mut faulted = report(100, 1.0);
        let mut fr = crate::fault::FaultReport {
            injected: 2,
            displaced: 3,
            reexecuted: 3,
            capacity_lost: SimDuration::from_us(50),
            makespan_degradation: 1.25,
            ..Default::default()
        };
        fr.recovery_latency.record(SimDuration::from_us(7));
        faulted.fault = Some(fr.clone());
        let json = serde_json::to_string(&faulted).unwrap();
        assert!(json.contains("\"fault\""), "{json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fault, Some(fr));
    }

    #[test]
    fn memory_report_is_skipped_when_absent_and_round_trips_when_present() {
        let r = report(100, 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("\"memory\""),
            "uncontended reports must keep the legacy layout: {json}"
        );

        let mut contended = report(100, 1.0);
        let mr = crate::mem::MemoryReport {
            requests: 5,
            waited: 2,
            total_wait: SimDuration::from_us(12),
            max_wait: SimDuration::from_us(9),
            crit_requests: 1,
            crit_wait: SimDuration::from_us(4),
            demand: SimDuration::from_us(40),
            serviced: SimDuration::from_us(52),
            slots: 2,
            arbitration: "crit-first".to_string(),
        };
        contended.memory = Some(mr.clone());
        let json = serde_json::to_string(&contended).unwrap();
        assert!(json.contains("\"memory\""), "{json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.memory, Some(mr));
    }

    #[test]
    fn effective_cores_are_skipped_when_absent_and_surface_when_clamped() {
        let r = report(100, 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("effective_cores"),
            "sim reports must keep the legacy layout: {json}"
        );
        assert!(!r.summary().contains("cores="), "{}", r.summary());

        let mut clamped = report(100, 1.0);
        clamped.effective_cores = Some(4);
        let json = serde_json::to_string(&clamped).unwrap();
        assert!(json.contains("\"effective_cores\":4"), "{json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.effective_cores, Some(4));
        assert!(
            clamped.summary().contains("cores=4"),
            "{}",
            clamped.summary()
        );
    }
}
