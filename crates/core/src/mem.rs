//! Shared-memory interference as a scenario axis.
//!
//! The baseline machine model lets a task's memory demand (`mem_ps`)
//! elapse for free: memory time is folded into the blended task duration
//! and never competes for anything. This module makes the memory
//! subsystem an explicit, *contended* component, mirroring the
//! fault-injection idiom:
//!
//! - [`MemorySpec`] — a serde description of the shared memory
//!   subsystem: how many concurrent bandwidth slots exist and which
//!   arbitration policy picks the next waiter when a slot frees. It
//!   rides [`ScenarioSpec::memory`](crate::exp::ScenarioSpec) and is
//!   *omitted* when absent, so every pre-interference spec, store digest
//!   and golden preset stays byte-identical. `slots == 0` means
//!   unlimited (the uncontended legacy model) and engines bypass the
//!   gate entirely.
//! - [`ArbitrationRegistry`] — the pluggable decision of *which* waiter
//!   is granted a freed slot, string-keyed like the scheduler/estimator/
//!   accel, admission and recovery registries so external crates can
//!   register their own. Builtins: `fifo` (arrival order), `crit-first`
//!   (criticality-aware — the CAM idea from the paper, critical tasks
//!   jump the queue), `round-robin` (core-indexed fairness).
//! - [`MemoryReport`] — what the run observed at the memory gate:
//!   request/wait counts, total and worst-case wait, the critical-task
//!   slice of the waiting (the quantity `crit-first` exists to shrink),
//!   and demand vs serviced time. Carried on
//!   [`RunReport::memory`](crate::RunReport) (omitted when `None`).
//!
//! The mechanism itself ([`MemorySubsystem`](cata_sim::MemorySubsystem),
//! [`ArbitrationPolicy`](cata_sim::ArbitrationPolicy)) lives in
//! `cata_sim`; this module is the spec/registry/report layer on top.

use crate::exp::error::ExpError;
use cata_sim::memory::{CritFirstArbitration, FifoArbitration, RoundRobinArbitration};
use cata_sim::time::SimDuration;
use cata_sim::ArbitrationPolicy;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// The default arbitration-policy key.
pub const DEFAULT_ARBITRATION: &str = "fifo";

/// A shared-memory interference description for one run. Participates in
/// spec digests and cell keys through
/// [`ScenarioSpec::memory`](crate::exp::ScenarioSpec) — a contended cell
/// is a *different* cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Concurrent bandwidth slots in the shared memory subsystem.
    /// `0` means unlimited — the uncontended legacy model, with no gate
    /// and no [`MemoryReport`].
    pub slots: u64,
    /// Arbitration-policy registry key deciding which waiter is granted
    /// a freed slot (see [`ArbitrationRegistry`]).
    pub arbitration: String,
}

impl Default for MemorySpec {
    fn default() -> Self {
        MemorySpec {
            slots: 0,
            arbitration: DEFAULT_ARBITRATION.to_string(),
        }
    }
}

// Hand-written serde: serialization emits every field (deterministic,
// digest-stable), deserialization defaults missing fields so hand-written
// memory specs only mention what they change.
impl Serialize for MemorySpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("slots".into(), self.slots.to_value()),
            ("arbitration".into(), self.arbitration.to_value()),
        ])
    }
}

impl Deserialize for MemorySpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("MemorySpec")?;
        let d = MemorySpec::default();
        let slots: Option<u64> = serde::field(m, "slots", "MemorySpec")?;
        let arbitration: Option<String> = serde::field(m, "arbitration", "MemorySpec")?;
        Ok(MemorySpec {
            slots: slots.unwrap_or(d.slots),
            arbitration: arbitration.unwrap_or(d.arbitration),
        })
    }
}

impl MemorySpec {
    /// True when this spec contends nothing (unlimited slots) — engines
    /// skip the memory gate entirely.
    pub fn is_noop(&self) -> bool {
        self.slots == 0
    }

    /// Structural validation. The arbitration key itself resolves
    /// fallibly at engine build time (registries are pluggable), so only
    /// shape is checked here.
    pub fn validate(&self) -> Result<(), ExpError> {
        if self.arbitration.is_empty() {
            return Err(ExpError::InvalidSpec("empty arbitration key".to_string()));
        }
        Ok(())
    }
}

/// What a run observed at the memory gate. Rides
/// [`RunReport::memory`](crate::RunReport), omitted when the run had no
/// contended [`MemorySpec`], so uncontended reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Memory-slot requests issued (task executions with `mem_ps > 0`).
    pub requests: u64,
    /// Requests that found no free slot and had to wait.
    pub waited: u64,
    /// Total time requests spent waiting for a slot.
    pub total_wait: SimDuration,
    /// Worst single wait.
    pub max_wait: SimDuration,
    /// Requests issued by tasks the estimator marked critical.
    pub crit_requests: u64,
    /// Total wait incurred by critical tasks — the quantity
    /// criticality-aware arbitration exists to shrink.
    pub crit_wait: SimDuration,
    /// Total memory demand (Σ `mem_ps` over requests).
    pub demand: SimDuration,
    /// Total time from request to slot release (Σ wait + `mem_ps`).
    /// Always ≥ `demand`; equal when nothing ever waits.
    pub serviced: SimDuration,
    /// Slots the subsystem was configured with.
    pub slots: u64,
    /// The arbitration policy that ran.
    pub arbitration: String,
}

impl MemoryReport {
    /// Compact-JSON digest of the whole report — the CI
    /// interference-smoke determinism pin.
    pub fn digest(&self) -> String {
        cata_tdg::fnv1a_hex(
            serde_json::to_string(self)
                .expect("memory report serializes")
                .bytes(),
        )
    }

    /// Merges another report into this one (shard/store merging).
    pub fn merge(&mut self, o: &MemoryReport) {
        self.requests += o.requests;
        self.waited += o.waited;
        self.total_wait += o.total_wait;
        self.max_wait = self.max_wait.max(o.max_wait);
        self.crit_requests += o.crit_requests;
        self.crit_wait += o.crit_wait;
        self.demand += o.demand;
        self.serviced += o.serviced;
        if self.arbitration.is_empty() {
            self.slots = o.slots;
            self.arbitration = o.arbitration.clone();
        }
    }

    /// One-line human summary appended to `RunReport::summary()`. Times
    /// are raw picosecond integers so scripts can compare policies
    /// without parsing unit suffixes.
    pub fn summary(&self) -> String {
        format!(
            "slots={} arbitration={} requests={} waited={} wait_ps={} max_wait_ps={} crit_requests={} crit_wait_ps={} demand_ps={} serviced_ps={}",
            self.slots,
            self.arbitration,
            self.requests,
            self.waited,
            self.total_wait.as_ps(),
            self.max_wait.as_ps(),
            self.crit_requests,
            self.crit_wait.as_ps(),
            self.demand.as_ps(),
            self.serviced.as_ps(),
        )
    }
}

/// Factory signature: the memory spec in, a boxed policy out.
pub type ArbitrationFactory =
    dyn Fn(&MemorySpec) -> Result<Box<dyn ArbitrationPolicy>, ExpError> + Send + Sync;

/// String-keyed arbitration-policy registry, mirroring
/// [`RecoveryRegistry`](crate::fault::RecoveryRegistry).
#[derive(Clone, Default)]
pub struct ArbitrationRegistry {
    entries: BTreeMap<String, Arc<ArbitrationFactory>>,
}

impl ArbitrationRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry with the built-in family: `fifo`, `crit-first`,
    /// `round-robin`.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register("fifo", |_s| {
            Ok(Box::new(FifoArbitration) as Box<dyn ArbitrationPolicy>)
        });
        r.register("crit-first", |_s| {
            Ok(Box::new(CritFirstArbitration) as Box<dyn ArbitrationPolicy>)
        });
        r.register("round-robin", |_s| {
            Ok(Box::<RoundRobinArbitration>::default() as Box<dyn ArbitrationPolicy>)
        });
        r
    }

    /// Registers (or replaces) a policy under `key`.
    pub fn register<F>(&mut self, key: impl Into<String>, factory: F)
    where
        F: Fn(&MemorySpec) -> Result<Box<dyn ArbitrationPolicy>, ExpError> + Send + Sync + 'static,
    {
        self.entries.insert(key.into(), Arc::new(factory));
    }

    /// Registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Builds the policy registered under `key`.
    pub fn build(
        &self,
        key: &str,
        spec: &MemorySpec,
    ) -> Result<Box<dyn ArbitrationPolicy>, ExpError> {
        let f = self
            .entries
            .get(key)
            .ok_or_else(|| ExpError::UnknownArbitration {
                key: key.to_string(),
                known: self.keys(),
            })?;
        f(spec)
    }
}

impl std::fmt::Debug for ArbitrationRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArbitrationRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

/// The process-wide default registry (builtins only), built once.
pub fn default_arbitration_registry() -> &'static ArbitrationRegistry {
    static REG: OnceLock<ArbitrationRegistry> = OnceLock::new();
    REG.get_or_init(ArbitrationRegistry::with_builtins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve() {
        let reg = default_arbitration_registry();
        assert_eq!(reg.keys(), vec!["crit-first", "fifo", "round-robin"]);
        let s = MemorySpec::default();
        for key in ["fifo", "crit-first", "round-robin"] {
            let p = reg.build(key, &s).unwrap();
            assert_eq!(p.name(), key);
        }
    }

    #[test]
    fn unknown_key_reports_the_known_set() {
        let Err(err) = default_arbitration_registry().build("nope", &MemorySpec::default()) else {
            panic!("unknown key must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("crit-first"), "{msg}");
    }

    #[test]
    fn spec_serde_defaults_missing_fields_and_round_trips() {
        let v = serde_json::from_str::<Value>(r#"{"slots":2}"#).unwrap();
        let s = MemorySpec::from_value(&v).unwrap();
        assert_eq!(s.slots, 2);
        assert_eq!(s.arbitration, DEFAULT_ARBITRATION);

        let full = MemorySpec {
            slots: 4,
            arbitration: "crit-first".to_string(),
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: MemorySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn noop_and_validation() {
        assert!(MemorySpec::default().is_noop(), "0 slots = unlimited");
        let s = MemorySpec {
            slots: 1,
            arbitration: "fifo".to_string(),
        };
        assert!(!s.is_noop());
        assert!(s.validate().is_ok());
        let bad = MemorySpec {
            slots: 1,
            arbitration: String::new(),
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn report_digest_is_stable_and_merge_accumulates() {
        let mut a = MemoryReport {
            requests: 4,
            waited: 2,
            total_wait: SimDuration::from_us(10),
            max_wait: SimDuration::from_us(7),
            crit_requests: 1,
            crit_wait: SimDuration::from_us(3),
            demand: SimDuration::from_us(40),
            serviced: SimDuration::from_us(50),
            slots: 2,
            arbitration: "fifo".to_string(),
        };
        assert_eq!(a.digest(), a.clone().digest());
        let b = MemoryReport {
            requests: 1,
            max_wait: SimDuration::from_us(9),
            slots: 2,
            arbitration: "fifo".to_string(),
            ..MemoryReport::default()
        };
        let d_before = a.digest();
        a.merge(&b);
        assert_eq!(a.requests, 5);
        assert_eq!(a.max_wait, SimDuration::from_us(9));
        assert_ne!(a.digest(), d_before);
        let json = serde_json::to_string(&a).unwrap();
        let back: MemoryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        // The summary prints raw picoseconds for script-side comparison.
        assert!(a.summary().contains("wait_ps=10000000"), "{}", a.summary());
    }
}
