//! Errors of the experiment facade.

use std::fmt;

/// Anything that can go wrong building or executing a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpError {
    /// The scheduler key is not registered. Carries the known keys.
    UnknownScheduler {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// The estimator key is not registered. Carries the known keys.
    UnknownEstimator {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// The acceleration-manager key is not registered. Carries the known
    /// keys.
    UnknownAccel {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// The admission-policy key is not registered. Carries the known
    /// keys.
    UnknownAdmission {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// The recovery-policy key is not registered. Carries the known
    /// keys.
    UnknownRecovery {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// The event-queue backend key is not registered. Carries the known
    /// keys.
    UnknownEventQueue {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// The arbitration-policy key is not registered. Carries the known
    /// keys.
    UnknownArbitration {
        /// The unresolvable key.
        key: String,
        /// The keys the registry knows.
        known: Vec<String>,
    },
    /// No paper preset of that name exists.
    UnknownPreset(String),
    /// The scenario is internally inconsistent (e.g. budget > cores).
    InvalidSpec(String),
    /// A serialized spec failed to parse.
    Parse(String),
    /// The results store could not be read, validated, or written.
    Store(String),
    /// The workload's task graph could not be built — a missing,
    /// malformed, or digest-mismatched TDG file behind an
    /// `Inline`/`File` workload.
    Workload(String),
    /// The run cannot make forward progress: injected faults removed the
    /// capacity (or shed the work) that remaining tasks need. Unlike a
    /// deadlock panic this is a *clean* outcome — a dying machine
    /// terminates and reports instead of hanging.
    Stalled(String),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::UnknownScheduler { key, known } => {
                write!(f, "unknown scheduler `{key}` (known: {})", known.join(", "))
            }
            ExpError::UnknownEstimator { key, known } => {
                write!(f, "unknown estimator `{key}` (known: {})", known.join(", "))
            }
            ExpError::UnknownAccel { key, known } => {
                write!(
                    f,
                    "unknown acceleration manager `{key}` (known: {})",
                    known.join(", ")
                )
            }
            ExpError::UnknownAdmission { key, known } => {
                write!(
                    f,
                    "unknown admission policy `{key}` (known: {})",
                    known.join(", ")
                )
            }
            ExpError::UnknownRecovery { key, known } => {
                write!(
                    f,
                    "unknown recovery policy `{key}` (known: {})",
                    known.join(", ")
                )
            }
            ExpError::UnknownEventQueue { key, known } => {
                write!(
                    f,
                    "unknown event-queue backend `{key}` (known: {})",
                    known.join(", ")
                )
            }
            ExpError::UnknownArbitration { key, known } => {
                write!(
                    f,
                    "unknown arbitration policy `{key}` (known: {})",
                    known.join(", ")
                )
            }
            ExpError::UnknownPreset(name) => {
                write!(
                    f,
                    "unknown preset `{name}` (known: {})",
                    super::spec::PAPER_PRESETS.join(", ")
                )
            }
            ExpError::InvalidSpec(msg) => write!(f, "invalid scenario: {msg}"),
            ExpError::Parse(msg) => write!(f, "spec parse error: {msg}"),
            ExpError::Store(msg) => write!(f, "results store: {msg}"),
            ExpError::Workload(msg) => write!(f, "workload: {msg}"),
            ExpError::Stalled(msg) => write!(f, "stalled: {msg}"),
        }
    }
}

impl std::error::Error for ExpError {}
