//! `Suite`: fan a list of scenarios across a thread pool — and, with a
//! [`ResultsStore`], across processes and machines.
//!
//! Each scenario is an independent deterministic run (its spec pins the
//! seed), so a suite's results are bit-identical whether executed serially
//! or in parallel — only wall-clock time changes. Result order always
//! matches input order.
//!
//! Every cell carries a stable *global index* in the full grid.
//! [`shard`](Suite::shard) keeps a deterministic `1/N`th of the grid by
//! that index, so independent processes (CI jobs, cluster nodes) each
//! compute a disjoint slice into their own JSONL store, and
//! [`ResultsStore::merge_files`] recombines them.
//! [`run_with_store`](Suite::run_with_store) streams each completed cell
//! to the store and, on a re-run, loads completed cells instead of
//! recomputing them — the resume path for interrupted sweeps.

use super::calibrate::CostCalibration;
use super::error::ExpError;
use super::executor::Executor;
use super::progress::{host_fingerprint, now_unix_ms, ProgressEvent, ProgressWriter};
use super::registry::PolicyRegistries;
use super::scenario::Scenario;
use super::spec::ScenarioSpec;
use super::store::{grid_digest, spec_digest, CellRecord, ResultsStore};
use crate::report::RunReport;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Derives the `index`-th run seed from a suite base seed (splitmix64).
/// Deterministic and stable across platforms — the workspace-shared
/// construction, re-exported on the historical path.
pub use cata_sim::seeded::derive_seed;

/// Debug-build sanity gate on every simulated cell: the reported makespan
/// must respect the fault-aware work/span lower bound.
///
/// Over a makespan `T` on `m` cores, the machine offers `m·T` core-time;
/// executed work (each task at the *fast* frequency, its cheapest form)
/// and fault-destroyed capacity both consume it, so
/// `T ≥ (work + capacity_lost) / m` — and the weighted critical path at
/// the fast frequency bounds `T` from below regardless of core count.
/// Skipped where a term loses meaning: native cells (wall clock, not a
/// modeled makespan), open-system runs (work arrives over time), and
/// shed instances (their work left the run).
#[cfg(debug_assertions)]
fn assert_analytic_bound(spec: &ScenarioSpec, report: &RunReport) {
    use super::spec::Backend;
    if spec.backend != Backend::Sim || report.service.is_some() {
        return;
    }
    if report.fault.as_ref().is_some_and(|f| f.shed > 0) {
        return;
    }
    let Ok(graph) = spec.workload.try_build_graph_shared() else {
        return; // the executor surfaced (or survived) the build error
    };
    let fast = spec.machine.fast_level.frequency;
    let span = graph.critical_path_at(fast);
    let work = graph.total_work_at(fast);
    let lost = report
        .fault
        .as_ref()
        .map(|f| f.capacity_lost)
        .unwrap_or(cata_sim::time::SimDuration::ZERO);
    let m = spec.machine.num_cores.max(1) as u64;
    let work_bound =
        cata_sim::time::SimDuration::from_ps((work.as_ps().saturating_add(lost.as_ps())) / m);
    let bound = span.max(work_bound);
    assert!(
        report.exec_time >= bound,
        "{}: makespan {} beats the analytic lower bound {} (span {}, work {}, capacity lost {}, {m} cores)",
        report.label,
        report.exec_time,
        bound,
        span,
        work,
        lost,
    );
}

/// Runs one scenario and, in debug builds, checks the result against the
/// fault-aware analytic bound before handing it back.
fn execute_checked<E: Executor + ?Sized>(
    executor: &E,
    scenario: &Scenario,
) -> Result<RunReport, ExpError> {
    let result = executor.execute(scenario);
    #[cfg(debug_assertions)]
    if let Ok(report) = &result {
        assert_analytic_bound(scenario.spec(), report);
    }
    result
}

/// How [`Suite::shard_ordered`] assigns cells to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardOrder {
    /// `i % n` striping by cell index — the default, bit-identical to the
    /// historical behaviour.
    #[default]
    Striped,
    /// Cost-aware snake order: cells are ranked by estimated workload cost
    /// (descending, index-ascending tie-break) and dealt to shards
    /// serpentine-style (1..n, then n..1, …), so a grid whose cell costs
    /// are very skewed — one paper-scale workload among tiny ones — still
    /// balances. Deterministic: every process ranks identically.
    Snake,
}

impl std::str::FromStr for ShardOrder {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "striped" => Ok(ShardOrder::Striped),
            "snake" => Ok(ShardOrder::Snake),
            other => Err(format!(
                "unknown shard order `{other}` (want striped|snake)"
            )),
        }
    }
}

/// Sharding bookkeeping a filtered suite carries so later [`Suite::push`]es
/// stay disjoint across shards.
#[derive(Debug, Clone, Copy)]
struct ShardInfo {
    /// 0-based shard id.
    rem: u64,
    /// Total shard count.
    of: u64,
    /// Assignment discipline the grid was split with.
    order: ShardOrder,
    /// One past the largest index of the full grid at shard time: pushed
    /// cells on a snake shard start here (snake shards own arbitrary index
    /// sets inside the grid, so only indices past it are provably free).
    grid_len: u64,
}

/// What a store-backed suite run did: the full in-order results plus how
/// many cells were served from the store versus freshly executed.
#[derive(Debug)]
pub struct StoreRunOutcome {
    /// Per-cell results, in input order (loaded and fresh interleaved).
    pub results: Vec<Result<RunReport, ExpError>>,
    /// Cells skipped because the store already held their record.
    pub resumed: usize,
    /// Cells executed (and appended to the store) by this run.
    pub executed: usize,
}

/// A batch of scenarios plus a parallelism setting.
#[derive(Debug, Clone, Default)]
pub struct Suite {
    scenarios: Vec<Scenario>,
    /// Global cell index of each scenario within the full (unsharded)
    /// grid. Stable under [`shard`](Self::shard); the store keys on it.
    indices: Vec<u64>,
    /// Set once [`shard`](Self::shard) filtered this suite;
    /// [`push`](Self::push) then picks indices no other shard can own.
    shard_of: Option<ShardInfo>,
    /// The *full* grid's digest, captured by [`shard`](Self::shard)
    /// before filtering, so every shard stamps its records with the same
    /// provenance tag (unsharded suites compute it from their own cells).
    grid: Option<String>,
    /// Wall-time-fitted cost multipliers applied by snake sharding's cost
    /// ranking (see [`calibrate_costs`](Self::calibrate_costs)).
    calibration: Option<CostCalibration>,
    jobs: usize,
}

impl Suite {
    /// An empty suite (serial by default).
    pub fn new() -> Self {
        Suite {
            scenarios: Vec::new(),
            indices: Vec::new(),
            shard_of: None,
            grid: None,
            calibration: None,
            jobs: 1,
        }
    }

    /// A suite over specs, resolved through the default registries.
    pub fn from_specs(specs: Vec<ScenarioSpec>) -> Self {
        Self::from_specs_with(specs, None)
    }

    /// A suite over specs resolved through explicit registries.
    pub fn from_specs_with(
        specs: Vec<ScenarioSpec>,
        registries: Option<Arc<PolicyRegistries>>,
    ) -> Self {
        let scenarios: Vec<Scenario> = specs
            .into_iter()
            .map(|spec| {
                let s = Scenario::from_spec(spec);
                match &registries {
                    Some(r) => s.with_registries(Arc::clone(r)),
                    None => s,
                }
            })
            .collect();
        let indices = (0..scenarios.len() as u64).collect();
        Suite {
            scenarios,
            indices,
            shard_of: None,
            grid: None,
            calibration: None,
            jobs: 1,
        }
    }

    /// Installs wall-time-fitted cost multipliers
    /// ([`CostCalibration::fit`]) for snake sharding's cost ranking.
    /// Every shard process of one grid must install the *same*
    /// calibration (fit from the same records, or one shipped fit) —
    /// shards ranking cells by different costs would deal overlapping,
    /// non-covering hands. Striped sharding and execution ignore it.
    pub fn calibrate_costs(mut self, calibration: CostCalibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Adds one scenario at the next free grid index. On a striped shard
    /// the index advances *within the shard's residue class* (by `of`
    /// instead of 1); on a snake shard — whose cells are arbitrary grid
    /// indices — pushes land past the grid, in the shard's residue class.
    /// Either way, pushed cells can never collide with an index another
    /// shard owns.
    pub fn push(&mut self, scenario: Scenario) {
        let next = match (self.indices.iter().max(), self.shard_of) {
            (max, Some(info)) if info.order == ShardOrder::Snake => {
                // First index in this shard's residue class at or past both
                // the grid and everything already queued.
                let min = info.grid_len.max(max.map_or(0, |&m| m + 1));
                let r = min % info.of;
                if r <= info.rem {
                    min - r + info.rem
                } else {
                    min - r + info.of + info.rem
                }
            }
            (Some(&m), Some(info)) => m + info.of,
            (Some(&m), None) => m + 1,
            (None, Some(info)) => info.rem,
            (None, None) => 0,
        };
        self.scenarios.push(scenario);
        self.indices.push(next);
    }

    /// Sets the worker-thread count (`0` ⇒ the host's parallelism).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        self
    }

    /// Number of scenarios queued.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios are queued.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The global grid index of each queued cell (parallel to the
    /// scenario list; `0..n` until [`shard`](Self::shard) filters it).
    pub fn cell_indices(&self) -> &[u64] {
        &self.indices
    }

    /// The `(index, spec_digest)` identity of every queued cell — the grid
    /// a store can be garbage-collected against
    /// ([`ResultsStore::gc`]).
    pub fn grid_pairs(&self) -> Vec<(u64, String)> {
        self.indices
            .iter()
            .copied()
            .zip(self.scenarios.iter().map(|s| spec_digest(s.spec())))
            .collect()
    }

    /// Keeps the deterministic `shard`-th of `of` slices of the cell grid
    /// (1-based): cell `i` belongs to shard `(i % of) + 1`. Shards of the
    /// same grid are disjoint and together cover it exactly, so `N`
    /// processes each running one shard into their own store compute the
    /// whole suite with no coordination.
    pub fn shard(self, shard: usize, of: usize) -> Result<Self, ExpError> {
        self.shard_ordered(shard, of, ShardOrder::Striped)
    }

    /// [`shard`](Self::shard) with an explicit assignment discipline.
    /// `Striped` is the historical `i % of` split; `Snake` deals cells to
    /// shards in cost-ranked serpentine order, fixing the load skew
    /// striping suffers when cell costs vary wildly. Both are
    /// deterministic, disjoint, and covering; every shard of one grid must
    /// use the same order.
    pub fn shard_ordered(
        self,
        shard: usize,
        of: usize,
        order: ShardOrder,
    ) -> Result<Self, ExpError> {
        if of == 0 || shard == 0 || shard > of {
            return Err(ExpError::InvalidSpec(format!(
                "shard {shard}/{of}: want 1 <= shard <= of"
            )));
        }
        let rem = shard as u64 - 1;
        // Capture the *full* grid's provenance digest before filtering,
        // so every shard stamps its store records identically.
        let grid = Some(self.grid.clone().unwrap_or_else(|| self.own_grid_digest()));
        let grid_len = self.indices.iter().max().map_or(0, |&m| m + 1);
        let keep: Vec<bool> = match order {
            ShardOrder::Striped => self.indices.iter().map(|&i| i % of as u64 == rem).collect(),
            ShardOrder::Snake => {
                // Rank positions by estimated cost (heaviest first; grid
                // index breaks ties so the ranking is total and identical
                // in every process), then deal serpentine: row r of `of`
                // cells runs forward on even rows, backward on odd ones,
                // so no shard collects all the heavy heads.
                //
                // Cost lookup is the *fallible* form, and unpinned TDG
                // files are refused outright: every shard of one grid
                // must rank cells identically, so a `File` the host
                // cannot read must abort the deal (a silent 0 would rank
                // differently than where the file resolves), and an
                // unpinned file has no cross-host content identity at
                // all — peer shards reading different revisions would
                // deal from different rankings, breaking the
                // disjoint/covering guarantee with no error anywhere.
                let costs: Vec<u64> = self
                    .scenarios
                    .iter()
                    .map(|s| match &s.spec().workload {
                        crate::exp::spec::WorkloadSpec::File { path, digest: None } => {
                            Err(ExpError::Workload(format!(
                                "snake sharding requires digest-pinned TDG files: {path} is \
                             unpinned, so peer shards could rank different revisions \
                             (pin it, or use --shard-order striped)"
                            )))
                        }
                        // Calibrated when a fit is installed — same
                        // failure surface either way (`calibrated_cost`
                        // delegates to `try_cost_estimate`).
                        w => match &self.calibration {
                            Some(cal) => cal.calibrated_cost(w),
                            None => w.try_cost_estimate(),
                        }
                        .map_err(|e| {
                            ExpError::Workload(format!(
                                "snake sharding needs every cell's cost: {e}"
                            ))
                        }),
                    })
                    .collect::<Result<_, _>>()?;
                let mut rank: Vec<usize> = (0..self.scenarios.len()).collect();
                rank.sort_by_key(|&p| (std::cmp::Reverse(costs[p]), self.indices[p]));
                let mut keep = vec![false; self.scenarios.len()];
                for (pos, &p) in rank.iter().enumerate() {
                    let (row, col) = (pos / of, pos % of);
                    let assigned = if row % 2 == 0 { col } else { of - 1 - col };
                    keep[p] = assigned as u64 == rem;
                }
                keep
            }
        };
        let (scenarios, indices) = self
            .scenarios
            .into_iter()
            .zip(self.indices)
            .zip(keep)
            .filter_map(|(cell, keep)| keep.then_some(cell))
            .unzip();
        Ok(Suite {
            scenarios,
            indices,
            shard_of: Some(ShardInfo {
                rem,
                of: of as u64,
                order,
                grid_len,
            }),
            grid,
            calibration: self.calibration,
            jobs: self.jobs,
        })
    }

    /// The grid digest over this suite's own cells.
    fn own_grid_digest(&self) -> String {
        let digests: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| spec_digest(s.spec()))
            .collect();
        grid_digest(
            self.indices
                .iter()
                .copied()
                .zip(digests.iter().map(String::as_str)),
        )
    }

    /// Reseeds each cell with `derive_seed(base, index)` over its *global*
    /// grid index — one knob for a deterministic sweep over
    /// otherwise-identical specs that stays consistent across shards.
    pub fn reseed(mut self, base: u64) -> Self {
        for (i, s) in self.scenarios.iter_mut().enumerate() {
            s.spec_mut().seed = derive_seed(base, self.indices[i]);
        }
        self
    }

    /// Runs every scenario on `executor`, fanning across the configured
    /// worker threads. Results come back in input order; each entry is the
    /// run's report or its error.
    pub fn run<E: Executor + ?Sized>(&self, executor: &E) -> Vec<Result<RunReport, ExpError>> {
        let n = self.scenarios.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.clamp(1, n);
        if workers == 1 {
            return self
                .scenarios
                .iter()
                .map(|s| execute_checked(executor, s))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunReport, ExpError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = execute_checked(executor, &self.scenarios[i]);
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every scenario executed")
            })
            .collect()
    }

    /// Like [`run`](Self::run), but every completed cell is streamed into
    /// `store` as one JSONL record, and cells whose `(index, spec_digest)`
    /// the store already holds are *loaded instead of executed* — the
    /// resume path. Results come back in input order either way; loaded
    /// reports are bit-identical to freshly computed ones (deterministic
    /// engine + exact serialization).
    pub fn run_with_store<E: Executor + ?Sized>(
        &self,
        executor: &E,
        store: &ResultsStore,
    ) -> StoreRunOutcome {
        self.run_with_store_observed(executor, store, None)
    }

    /// Like [`run_with_store`](Self::run_with_store), with heartbeat
    /// telemetry: every cell pickup/finish and the running done/total
    /// count are streamed into `progress` (cell start, cell finish,
    /// grid progress), so a live dashboard can follow the sweep across
    /// processes with no IPC. Heartbeats are best-effort — a telemetry
    /// write error never fails the sweep — and purely observational:
    /// results, records, and digests are bit-identical with `None`.
    /// Executed cells are additionally stamped with the host fingerprint,
    /// their wall-clock window, and the embedded spec (the replay
    /// precondition).
    pub fn run_with_store_observed<E: Executor + ?Sized>(
        &self,
        executor: &E,
        store: &ResultsStore,
        progress: Option<&ProgressWriter>,
    ) -> StoreRunOutcome {
        let n = self.scenarios.len();
        let digests: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| spec_digest(s.spec()))
            .collect();
        // Provenance tag for the records: the full grid's digest when
        // this suite is a shard, else the digest of its own cells.
        let grid = self.grid.clone().unwrap_or_else(|| {
            grid_digest(
                self.indices
                    .iter()
                    .copied()
                    .zip(digests.iter().map(String::as_str)),
            )
        });
        let completed: HashMap<(u64, &str), &CellRecord> = store
            .records()
            .iter()
            .map(|r| ((r.index, r.spec_digest.as_str()), r))
            .collect();

        // Positions still to execute, in input order.
        let pending: Vec<usize> = (0..n)
            .filter(|&i| !completed.contains_key(&(self.indices[i], digests[i].as_str())))
            .collect();

        // `done` counts cells no longer pending (resumed + finished
        // attempts, including failures — a failed cell is over, not
        // outstanding). Emitted after every finish so a tailing dashboard
        // sees the shard's completion fraction move.
        let done = AtomicUsize::new(n - pending.len());
        let beat = |event: ProgressEvent| {
            if let Some(w) = progress {
                // Telemetry is best-effort: a full disk or yanked sidecar
                // file must not kill a multi-hour sweep.
                let _ = w.emit(event);
            }
        };
        beat(ProgressEvent::GridProgress {
            done: done.load(Ordering::Relaxed) as u64,
            total: n as u64,
        });

        let execute_one = |pos: usize| -> Result<RunReport, ExpError> {
            // Warm the shared graph cache outside the timed window, so
            // `wall_s` measures execution rather than workload generation
            // — the same methodology as the perf harness, keeping stored
            // timings comparable to `BENCH_engine.json` summaries. A
            // failing workload (e.g. a missing TDG file) is not an error
            // here: the execute below surfaces it per cell. Unpinned
            // `File` workloads cannot be warmed (nothing is cached for
            // them, by design), so skip the wasted build — their
            // `wall_s` includes the file read + graph construction.
            let workload = &self.scenarios[pos].spec().workload;
            if workload.graph_cache_eligible() {
                let _ = workload.try_build_graph_shared();
            }
            beat(ProgressEvent::CellStart {
                index: self.indices[pos],
                name: self.scenarios[pos].spec().name.clone(),
                spec_digest: digests[pos].clone(),
            });
            let started_ms = now_unix_ms();
            let t0 = Instant::now();
            let result = execute_checked(executor, &self.scenarios[pos]);
            let wall_s = t0.elapsed().as_secs_f64();
            let finished_ms = now_unix_ms();
            let outcome = match result {
                Ok(report) => {
                    let rec = CellRecord::new(
                        self.indices[pos],
                        self.scenarios[pos].spec(),
                        grid.clone(),
                        wall_s,
                        report,
                    )
                    .with_host(host_fingerprint())
                    .with_times(started_ms, finished_ms)
                    .with_spec(self.scenarios[pos].spec().clone());
                    beat(ProgressEvent::CellFinish {
                        index: self.indices[pos],
                        cell: rec.cell.clone(),
                        ok: true,
                        wall_s,
                    });
                    store.append(&rec)?;
                    Ok(rec.report)
                }
                Err(e) => {
                    beat(ProgressEvent::CellFinish {
                        index: self.indices[pos],
                        cell: self.scenarios[pos].spec().name.clone(),
                        ok: false,
                        wall_s,
                    });
                    Err(e)
                }
            };
            beat(ProgressEvent::GridProgress {
                done: done.fetch_add(1, Ordering::Relaxed) as u64 + 1,
                total: n as u64,
            });
            outcome
        };

        let workers = self.jobs.clamp(1, pending.len().max(1));
        let mut fresh: Vec<Option<Result<RunReport, ExpError>>> = Vec::new();
        if workers <= 1 {
            fresh.extend(pending.iter().map(|&pos| Some(execute_one(pos))));
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Result<RunReport, ExpError>>>> =
                (0..pending.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= pending.len() {
                            break;
                        }
                        let result = execute_one(pending[k]);
                        *slots[k].lock().expect("result slot") = Some(result);
                    });
                }
            });
            fresh.extend(
                slots
                    .into_iter()
                    .map(|slot| slot.into_inner().expect("result slot")),
            );
        }

        let mut by_pos: HashMap<usize, Result<RunReport, ExpError>> = pending
            .iter()
            .zip(fresh)
            .map(|(&pos, r)| (pos, r.expect("every pending cell executed")))
            .collect();
        let mut results = Vec::with_capacity(n);
        let mut resumed = 0;
        for i in 0..n {
            match by_pos.remove(&i) {
                Some(r) => results.push(r),
                None => {
                    let rec = completed[&(self.indices[i], digests[i].as_str())];
                    results.push(Ok(rec.report.clone()));
                    resumed += 1;
                }
            }
        }
        StoreRunOutcome {
            results,
            resumed,
            executed: pending.len(),
        }
    }

    /// Like [`run`](Self::run), but panics on the first error — the
    /// convenient shape for benches where every key is builtin.
    pub fn run_all<E: Executor + ?Sized>(&self, executor: &E) -> Vec<RunReport> {
        self.run(executor)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("suite run failed: {e}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::WorkloadSpec;
    use crate::sim_exec::SimExecutor;

    fn small_matrix() -> Vec<ScenarioSpec> {
        ScenarioSpec::paper_matrix(
            2,
            WorkloadSpec::ForkJoin {
                waves: 2,
                width: 6,
                cycles: 500_000,
            },
        )
        .into_iter()
        .map(|s| s.with_small_machine(4, 2))
        .collect()
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let exec = SimExecutor::default();
        let serial = Suite::from_specs(small_matrix()).jobs(1).run_all(&exec);
        let parallel = Suite::from_specs(small_matrix()).jobs(4).run_all(&exec);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.exec_time, b.exec_time, "{} diverged", a.label);
            assert_eq!(a.energy.energy_j, b.energy.energy_j);
            assert_eq!(a.counters.reconfigs_applied, b.counters.reconfigs_applied);
        }
    }

    #[test]
    fn reports_respect_the_analytic_bound() {
        // `run` routes through `execute_checked`, so in debug builds
        // these cells already panic on violation; the explicit check
        // below keeps the property visible in release test runs too.
        let reports = Suite::from_specs(small_matrix())
            .jobs(1)
            .run_all(&SimExecutor::default());
        for (spec, report) in small_matrix().iter().zip(&reports) {
            let graph = spec.workload.try_build_graph_shared().unwrap();
            let fast = spec.machine.fast_level.frequency;
            let m = spec.machine.num_cores as u64;
            let work_bound =
                cata_sim::time::SimDuration::from_ps(graph.total_work_at(fast).as_ps() / m);
            let bound = graph.critical_path_at(fast).max(work_bound);
            assert!(
                report.exec_time >= bound,
                "{}: {} < {bound}",
                report.label,
                report.exec_time
            );
        }
    }

    #[test]
    fn faulted_and_contended_cells_respect_the_bound() {
        // One cell loses a core mid-run (capacity-lost term), one funnels
        // every memory access through a single slot (the gate only ever
        // stretches the makespan) — both must clear the debug assert in
        // `execute_checked` and still beat the fault-free analytic bound.
        // Parsec-style tasks carry a memory fraction; the pure-compute
        // ForkJoin generator would sail through the gate untouched.
        let base = ScenarioSpec::new(
            "bound",
            WorkloadSpec::Parsec {
                bench: cata_workloads::Benchmark::Dedup,
                scale: cata_workloads::Scale::Tiny,
                seed: 42,
            },
        )
        .with_small_machine(4, 2);
        let mut faulted = base.clone();
        faulted.faults = Some(crate::fault::FaultSpec {
            core_failures: vec![crate::fault::CoreFailure {
                core: 0,
                at: cata_sim::time::SimDuration::from_ps(1_000_000),
                recover_after: None,
            }],
            ..Default::default()
        });
        let mut contended = base.clone();
        contended.memory = Some(crate::mem::MemorySpec {
            slots: 1,
            arbitration: "crit-first".into(),
        });
        let reports = Suite::from_specs(vec![faulted, contended])
            .jobs(1)
            .run_all(&SimExecutor::default());
        let graph = base.workload.try_build_graph_shared().unwrap();
        let fast = base.machine.fast_level.frequency;
        let m = base.machine.num_cores as u64;
        let work_bound =
            cata_sim::time::SimDuration::from_ps(graph.total_work_at(fast).as_ps() / m);
        let bound = graph.critical_path_at(fast).max(work_bound);
        for report in &reports {
            assert!(
                report.exec_time >= bound,
                "{}: {} < {bound}",
                report.label,
                report.exec_time
            );
        }
        let f = reports[0].fault.as_ref().expect("fault report");
        assert!(f.capacity_lost > cata_sim::time::SimDuration::ZERO);
        let mem = reports[1].memory.as_ref().expect("memory report");
        assert!(mem.waited > 0, "slots=1 on a 4-core machine must contend");
    }

    #[test]
    fn errors_surface_per_scenario() {
        let mut specs = small_matrix();
        specs[2].accel = "does-not-exist".into();
        let results = Suite::from_specs(specs)
            .jobs(2)
            .run(&SimExecutor::default());
        assert!(results[0].is_ok());
        assert!(results[2].is_err());
        assert!(results[5].is_ok());
    }

    #[test]
    fn reseed_is_deterministic_and_distinct() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn shard_keeps_a_deterministic_disjoint_slice() {
        let all = Suite::from_specs(small_matrix());
        assert_eq!(all.cell_indices(), &[0, 1, 2, 3, 4, 5]);
        let a = all.clone().shard(1, 2).unwrap();
        let b = all.clone().shard(2, 2).unwrap();
        assert_eq!(a.cell_indices(), &[0, 2, 4]);
        assert_eq!(b.cell_indices(), &[1, 3, 5]);
        assert_eq!(a.len() + b.len(), all.len());
        assert!(all.clone().shard(0, 2).is_err());
        assert!(all.clone().shard(3, 2).is_err());
        assert!(all.shard(1, 0).is_err());
    }

    #[test]
    fn snake_shards_are_disjoint_covering_and_cost_balanced() {
        // Six cells with wildly skewed costs, heaviest first: striping by
        // `i % 2` would give shard 1 all of {6000, 400, 20} = 6420 and
        // shard 2 {5000, 30, 10} = 5040; snake deals 6000+30+20=6050 vs
        // 5000+400+10=5410 — and, crucially, never both giants to one.
        let costs = [6000u64, 5000, 400, 30, 20, 10];
        let specs: Vec<ScenarioSpec> = costs
            .iter()
            .map(|&c| {
                ScenarioSpec::new(format!("w{c}"), WorkloadSpec::Chain { n: 1, cycles: c })
                    .with_small_machine(2, 1)
            })
            .collect();
        let all = Suite::from_specs(specs);
        let a = all.clone().shard_ordered(1, 2, ShardOrder::Snake).unwrap();
        let b = all.clone().shard_ordered(2, 2, ShardOrder::Snake).unwrap();
        let mut union: Vec<u64> = a
            .cell_indices()
            .iter()
            .chain(b.cell_indices())
            .copied()
            .collect();
        union.sort_unstable();
        assert_eq!(union, vec![0, 1, 2, 3, 4, 5], "disjoint + covering");
        // Serpentine deal: ranked [0,1,2,3,4,5] → rows (0,1),(3,2),(4,5).
        assert_eq!(a.cell_indices(), &[0, 3, 4]);
        assert_eq!(b.cell_indices(), &[1, 2, 5]);
        // Cells stay in input order within each shard.
        assert!(a.cell_indices().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn calibration_reorders_the_snake_deal() {
        // Chain and diamond cells with equal built-in estimates (1000
        // cycles each): uncalibrated, ranking falls back to grid-index
        // tie-breaks. A calibration that weighs diamonds 8x must pull
        // both diamonds apart onto different shards.
        let mk = |w: WorkloadSpec, name: &str| ScenarioSpec::new(name, w).with_small_machine(2, 1);
        let specs = vec![
            mk(WorkloadSpec::Chain { n: 1, cycles: 1000 }, "c0"),
            mk(
                WorkloadSpec::SkewedDiamond {
                    width: 99,
                    cycles: 10,
                    skew: 1,
                },
                "d1",
            ),
            mk(WorkloadSpec::Chain { n: 2, cycles: 500 }, "c2"),
            mk(
                WorkloadSpec::SkewedDiamond {
                    width: 49,
                    cycles: 20,
                    skew: 1,
                },
                "d3",
            ),
        ];
        let mut cal = super::super::calibrate::CostCalibration::identity();
        cal.scale
            .insert("diamond".into(), 8 * super::super::calibrate::SCALE_ONE);
        let all = Suite::from_specs(specs);
        let deal = |shard| {
            Suite::clone(&all)
                .calibrate_costs(cal.clone())
                .shard_ordered(shard, 2, ShardOrder::Snake)
                .unwrap()
                .cell_indices()
                .to_vec()
        };
        // Ranked by calibrated cost: d1 (8000), d3 (8000, later index),
        // c0/c2 (1000 each) → rows (d1,d3),(c2,c0): one diamond per shard.
        assert_eq!(deal(1), vec![1, 2]);
        assert_eq!(deal(2), vec![0, 3]);
    }

    #[test]
    fn striped_shard_is_bit_identical_to_the_default() {
        let all = Suite::from_specs(small_matrix());
        let explicit = all
            .clone()
            .shard_ordered(1, 2, ShardOrder::Striped)
            .unwrap();
        let default = all.shard(1, 2).unwrap();
        assert_eq!(explicit.cell_indices(), default.cell_indices());
    }

    #[test]
    fn pushes_after_snake_shard_stay_disjoint() {
        let all = Suite::from_specs(small_matrix());
        let mut a = all.clone().shard_ordered(1, 2, ShardOrder::Snake).unwrap();
        let mut b = all.shard_ordered(2, 2, ShardOrder::Snake).unwrap();
        let extra = || {
            Scenario::from_spec(
                ScenarioSpec::new("extra", WorkloadSpec::Chain { n: 1, cycles: 1 })
                    .with_small_machine(2, 1),
            )
        };
        for _ in 0..3 {
            a.push(extra());
            b.push(extra());
        }
        let pushed_a: Vec<u64> = a
            .cell_indices()
            .iter()
            .copied()
            .filter(|&i| i >= 6)
            .collect();
        let pushed_b: Vec<u64> = b
            .cell_indices()
            .iter()
            .copied()
            .filter(|&i| i >= 6)
            .collect();
        assert_eq!(pushed_a.len(), 3);
        assert_eq!(pushed_b.len(), 3);
        assert!(
            pushed_a.iter().all(|i| !pushed_b.contains(i)),
            "pushed cells collide: {pushed_a:?} vs {pushed_b:?}"
        );
    }

    #[test]
    fn reseed_matches_across_sharding() {
        let full = Suite::from_specs(small_matrix()).reseed(7);
        let sharded = Suite::from_specs(small_matrix())
            .shard(2, 2)
            .unwrap()
            .reseed(7);
        // Shard 2/2 holds global cells 1, 3, 5; seeds must match the
        // unsharded suite's cells at those indices.
        let full_seeds: Vec<u64> = full.scenarios.iter().map(|s| s.spec().seed).collect();
        let shard_seeds: Vec<u64> = sharded.scenarios.iter().map(|s| s.spec().seed).collect();
        assert_eq!(
            shard_seeds,
            vec![full_seeds[1], full_seeds[3], full_seeds[5]]
        );
    }
}
