//! `Suite`: fan a list of scenarios across a thread pool.
//!
//! Each scenario is an independent deterministic run (its spec pins the
//! seed), so a suite's results are bit-identical whether executed serially
//! or in parallel — only wall-clock time changes. Result order always
//! matches input order.

use super::error::ExpError;
use super::executor::Executor;
use super::registry::PolicyRegistries;
use super::scenario::Scenario;
use super::spec::ScenarioSpec;
use crate::report::RunReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Derives the `index`-th run seed from a suite base seed (splitmix64).
/// Deterministic and stable across platforms.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A batch of scenarios plus a parallelism setting.
#[derive(Debug, Clone, Default)]
pub struct Suite {
    scenarios: Vec<Scenario>,
    jobs: usize,
}

impl Suite {
    /// An empty suite (serial by default).
    pub fn new() -> Self {
        Suite {
            scenarios: Vec::new(),
            jobs: 1,
        }
    }

    /// A suite over specs, resolved through the default registries.
    pub fn from_specs(specs: Vec<ScenarioSpec>) -> Self {
        Self::from_specs_with(specs, None)
    }

    /// A suite over specs resolved through explicit registries.
    pub fn from_specs_with(
        specs: Vec<ScenarioSpec>,
        registries: Option<Arc<PolicyRegistries>>,
    ) -> Self {
        let scenarios = specs
            .into_iter()
            .map(|spec| {
                let s = Scenario::from_spec(spec);
                match &registries {
                    Some(r) => s.with_registries(Arc::clone(r)),
                    None => s,
                }
            })
            .collect();
        Suite { scenarios, jobs: 1 }
    }

    /// Adds one scenario.
    pub fn push(&mut self, scenario: Scenario) {
        self.scenarios.push(scenario);
    }

    /// Sets the worker-thread count (`0` ⇒ the host's parallelism).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        self
    }

    /// Number of scenarios queued.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios are queued.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Reseeds scenario `i` with `derive_seed(base, i)` — one knob for a
    /// deterministic sweep over otherwise-identical specs.
    pub fn reseed(mut self, base: u64) -> Self {
        for (i, s) in self.scenarios.iter_mut().enumerate() {
            s.spec_mut().seed = derive_seed(base, i as u64);
        }
        self
    }

    /// Runs every scenario on `executor`, fanning across the configured
    /// worker threads. Results come back in input order; each entry is the
    /// run's report or its error.
    pub fn run<E: Executor + ?Sized>(&self, executor: &E) -> Vec<Result<RunReport, ExpError>> {
        let n = self.scenarios.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.clamp(1, n);
        if workers == 1 {
            return self.scenarios.iter().map(|s| executor.execute(s)).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunReport, ExpError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = executor.execute(&self.scenarios[i]);
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every scenario executed")
            })
            .collect()
    }

    /// Like [`run`](Self::run), but panics on the first error — the
    /// convenient shape for benches where every key is builtin.
    pub fn run_all<E: Executor + ?Sized>(&self, executor: &E) -> Vec<RunReport> {
        self.run(executor)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("suite run failed: {e}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::WorkloadSpec;
    use crate::sim_exec::SimExecutor;

    fn small_matrix() -> Vec<ScenarioSpec> {
        ScenarioSpec::paper_matrix(
            2,
            WorkloadSpec::ForkJoin {
                waves: 2,
                width: 6,
                cycles: 500_000,
            },
        )
        .into_iter()
        .map(|s| s.with_small_machine(4, 2))
        .collect()
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let exec = SimExecutor::default();
        let serial = Suite::from_specs(small_matrix()).jobs(1).run_all(&exec);
        let parallel = Suite::from_specs(small_matrix()).jobs(4).run_all(&exec);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.exec_time, b.exec_time, "{} diverged", a.label);
            assert_eq!(a.energy.energy_j, b.energy.energy_j);
            assert_eq!(a.counters.reconfigs_applied, b.counters.reconfigs_applied);
        }
    }

    #[test]
    fn errors_surface_per_scenario() {
        let mut specs = small_matrix();
        specs[2].accel = "does-not-exist".into();
        let results = Suite::from_specs(specs)
            .jobs(2)
            .run(&SimExecutor::default());
        assert!(results[0].is_ok());
        assert!(results[2].is_err());
        assert!(results[5].is_ok());
    }

    #[test]
    fn reseed_is_deterministic_and_distinct() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(1, 0));
    }
}
