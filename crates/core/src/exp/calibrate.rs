//! Cost-model calibration: fitting generator cost weights to measured
//! wall-clock time.
//!
//! [`WorkloadSpec::try_cost_estimate`] drives cost-aware snake sharding.
//! `Inline`/`File` workloads carry their profiles, so their estimates are
//! exact; generator estimates (`Parsec`, `Chain`, …) are shape guesses
//! whose *relative* weights were picked by eye. Every completed sweep,
//! however, records the ground truth: a [`CellRecord`] carries `wall_s`
//! and the spec digest of the cell that produced it. [`CostCalibration`]
//! closes the loop — it pairs stored records back to their specs by
//! digest, measures each generator family's wall-seconds-per-estimated-
//! cycle rate, and turns the rates into fixed-point multipliers that
//! [`CostCalibration::calibrated_cost`] applies on top of the built-in
//! estimate.
//!
//! Determinism is the design constraint, not a nicety: snake sharding
//! requires every shard process of one grid to rank cells identically, so
//! the fit must produce bit-identical multipliers on every host given the
//! same records. Hence:
//!
//! - per-family rates are the *lower median* of per-record rates sorted by
//!   [`f64::total_cmp`] — no accumulation-order dependence, robust to the
//!   odd preempted cell;
//! - multipliers are integer fixed-point ([`SCALE_ONE`] = 1.0×), rounded
//!   once at fit time, so application is pure `u64`/`u128` arithmetic;
//! - the anchor is the global median rate over *all* usable records, so
//!   exact (`Inline`/`File`) estimates — which are not rescaled — stay
//!   comparable to calibrated generator estimates, and a family with no
//!   observations keeps the identity multiplier.
//!
//! Shards must therefore fit from the same store contents (or ship one
//! serialized `CostCalibration`); fitting from *different* stores on
//! different hosts is exactly the cross-process divergence snake sharding
//! forbids.

use super::error::ExpError;
use super::spec::{ScenarioSpec, WorkloadSpec};
use super::store::{spec_digest, CellRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Fixed-point one: a multiplier of `SCALE_ONE` leaves the built-in
/// estimate unchanged.
pub const SCALE_ONE: u64 = 1024;

/// The generator family a workload's cost estimate belongs to, or `None`
/// for `Inline`/`File` workloads whose estimates are exact (summed task
/// profiles) and must not be rescaled.
fn family(w: &WorkloadSpec) -> Option<&'static str> {
    match w {
        WorkloadSpec::Parsec { .. } => Some("parsec"),
        WorkloadSpec::Chain { .. } => Some("chain"),
        WorkloadSpec::ForkJoin { .. } => Some("forkjoin"),
        WorkloadSpec::SkewedDiamond { .. } => Some("diamond"),
        WorkloadSpec::RandomDag { .. } => Some("randdag"),
        WorkloadSpec::Inline(_) | WorkloadSpec::File { .. } => None,
    }
}

/// Lower median of an unsorted sample (deterministic for any input
/// order; ties in `total_cmp` are still a total order).
fn lower_median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    Some(xs[(xs.len() - 1) / 2])
}

/// Per-family fixed-point multipliers fitted from recorded wall times.
///
/// Serializable so a sweep driver can fit once and ship the same
/// calibration to every shard host. See the module docs for the fit and
/// the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostCalibration {
    /// Family name → multiplier in units of `1/SCALE_ONE`. Families
    /// absent from the map apply the identity multiplier.
    pub scale: BTreeMap<String, u64>,
    /// Records that contributed a rate observation (diagnostics only).
    pub observations: u64,
}

impl CostCalibration {
    /// The identity calibration: every estimate passes through unchanged.
    pub fn identity() -> Self {
        CostCalibration::default()
    }

    /// Fits multipliers from completed-cell records, pairing each record
    /// to its spec by digest. `specs` is the caller's grid (order and
    /// duplicates don't matter); records with no matching spec, a zero or
    /// unreadable estimate, or a non-finite/non-positive `wall_s` are
    /// skipped — calibration is best-effort over whatever evidence exists,
    /// and no evidence at all yields the identity calibration.
    pub fn fit(records: &[CellRecord], specs: &[ScenarioSpec]) -> Self {
        let by_digest: HashMap<String, &ScenarioSpec> =
            specs.iter().map(|s| (spec_digest(s), s)).collect();
        // Per-record rate: wall seconds per estimated cycle. Grouped per
        // family, plus the pooled sample that anchors the unit.
        let mut per_family: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut pooled: Vec<f64> = Vec::new();
        let mut observations = 0u64;
        for rec in records {
            let Some(spec) = by_digest.get(&rec.spec_digest) else {
                continue;
            };
            let Ok(est) = spec.workload.try_cost_estimate() else {
                continue;
            };
            if est == 0 || !rec.wall_s.is_finite() || rec.wall_s <= 0.0 {
                continue;
            }
            let rate = rec.wall_s / est as f64;
            observations += 1;
            pooled.push(rate);
            if let Some(f) = family(&spec.workload) {
                per_family.entry(f).or_default().push(rate);
            }
        }
        let Some(anchor) = lower_median(pooled).filter(|a| *a > 0.0) else {
            return CostCalibration::identity();
        };
        let mut scale = BTreeMap::new();
        for (f, rates) in per_family {
            let m = lower_median(rates).expect("non-empty by construction") / anchor;
            // Clamp to at least 1/SCALE_ONE so a calibrated family can
            // never rank every one of its cells at zero cost.
            scale.insert(
                f.to_string(),
                ((m * SCALE_ONE as f64).round() as u64).max(1),
            );
        }
        CostCalibration {
            scale,
            observations,
        }
    }

    /// The built-in estimate with this calibration applied: generator
    /// estimates are rescaled by their family multiplier; `Inline`/`File`
    /// estimates are exact and pass through. Fails exactly where
    /// [`WorkloadSpec::try_cost_estimate`] fails (unreadable `File`).
    pub fn calibrated_cost(&self, w: &WorkloadSpec) -> Result<u64, ExpError> {
        let base = w.try_cost_estimate()?;
        let Some(f) = family(w) else {
            return Ok(base);
        };
        let m = self.scale.get(f).copied().unwrap_or(SCALE_ONE);
        let scaled = (base as u128 * m as u128) / SCALE_ONE as u128;
        Ok(u64::try_from(scaled).unwrap_or(u64::MAX))
    }

    /// Whether the fit found any usable evidence.
    pub fn is_identity(&self) -> bool {
        self.scale.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::store::{CellRecord, STORE_SCHEMA};
    use crate::report::RunReport;
    use cata_power::EnergyReport;
    use cata_sim::stats::{Counters, LatencySamples};
    use cata_sim::time::SimDuration;

    fn record(spec: &ScenarioSpec, wall_s: f64) -> CellRecord {
        // A minimal report: calibration only reads `wall_s`/`spec_digest`.
        let report = RunReport {
            label: spec.name.clone(),
            workload: "w".into(),
            fast_cores: spec.fast_cores,
            exec_time: SimDuration::from_us(1),
            energy: EnergyReport::from_parts(1e-6, Default::default()),
            counters: Counters::default(),
            lock_waits: LatencySamples::new(),
            reconfig_latencies: LatencySamples::new(),
            reconfig_overhead: SimDuration::ZERO,
            reconfig_time_share: 0.0,
            core_utilization: vec![],
            tasks: 0,
            trace_counts: None,
            effective_cores: None,
            service: None,
            fault: None,
            memory: None,
        };
        CellRecord {
            schema: STORE_SCHEMA.to_string(),
            index: 0,
            cell: "test".into(),
            grid: "g".into(),
            spec_digest: spec_digest(spec),
            seed: spec.seed,
            wall_s,
            report,
            host: None,
            started_unix_ms: None,
            finished_unix_ms: None,
            spec: None,
        }
    }

    fn chain_spec(n: usize, cycles: u64) -> ScenarioSpec {
        ScenarioSpec::new("cal", WorkloadSpec::Chain { n, cycles })
    }

    fn forkjoin_spec(waves: usize, cycles: u64) -> ScenarioSpec {
        ScenarioSpec::new(
            "cal",
            WorkloadSpec::ForkJoin {
                waves,
                width: 4,
                cycles,
            },
        )
    }

    #[test]
    fn no_evidence_is_identity() {
        let cal = CostCalibration::fit(&[], &[]);
        assert!(cal.is_identity());
        let w = WorkloadSpec::Chain { n: 10, cycles: 7 };
        assert_eq!(cal.calibrated_cost(&w).unwrap(), w.cost_estimate());
    }

    #[test]
    fn fit_rescales_a_slow_family() {
        // Two families with identical built-in estimates (1000 cycles),
        // but forkjoin cells measure 4x the wall time of chain cells:
        // the fit must rank forkjoin 4x heavier.
        let chain = chain_spec(10, 100); // estimate 1000
        let fj = forkjoin_spec(10, 25); // 10*4*25 = 1000
        let records = vec![
            record(&chain, 1.0),
            record(&chain, 1.0),
            record(&fj, 4.0),
            record(&fj, 4.0),
        ];
        let specs = vec![chain.clone(), fj.clone()];
        let cal = CostCalibration::fit(&records, &specs);
        assert_eq!(cal.observations, 4);
        // Anchor = pooled lower median (1.0/1000); chain at 1.0x, fj 4x.
        assert_eq!(cal.scale["chain"], SCALE_ONE);
        assert_eq!(cal.scale["forkjoin"], 4 * SCALE_ONE);
        let c = cal.calibrated_cost(&chain.workload).unwrap();
        let f = cal.calibrated_cost(&fj.workload).unwrap();
        assert_eq!(c, 1000);
        assert_eq!(f, 4000);
    }

    #[test]
    fn fit_is_order_independent_and_skips_junk() {
        let chain = chain_spec(10, 100);
        let fj = forkjoin_spec(10, 25);
        let mut records = vec![
            record(&chain, 2.0),
            record(&fj, 1.0),
            record(&chain, 1.0),
            record(&fj, 3.0),
            record(&chain, 3.0),
        ];
        // Junk that must not perturb the fit: unmatched digest, broken
        // wall clocks.
        let mut stray = record(&chain, 1.0);
        stray.spec_digest = "cafebabe".into();
        records.push(stray);
        records.push(record(&fj, f64::NAN));
        records.push(record(&chain, 0.0));
        records.push(record(&chain, -1.0));

        let specs = vec![chain.clone(), fj.clone()];
        let forward = CostCalibration::fit(&records, &specs);
        records.reverse();
        let backward = CostCalibration::fit(&records, &specs);
        assert_eq!(forward, backward);
        assert_eq!(forward.observations, 5);
    }

    #[test]
    fn exact_workloads_pass_through() {
        let chain = chain_spec(10, 100);
        let cal = CostCalibration::fit(&[record(&chain, 5.0)], std::slice::from_ref(&chain));
        let tdg = cata_workloads::micro::chain(3, 500);
        let inline = WorkloadSpec::Inline(cata_tdg::TdgHandle::new(cata_tdg::TdgFile::from_graph(
            "cal-inline",
            &tdg,
        )));
        assert_eq!(
            cal.calibrated_cost(&inline).unwrap(),
            inline.try_cost_estimate().unwrap(),
            "exact inline estimates must not be rescaled"
        );
    }
}
