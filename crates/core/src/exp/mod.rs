//! # The experiment facade: scenarios, executors, registries, suites.
//!
//! The paper's contribution is a *matrix* of runtime configurations; this
//! module is the API that matrix is expressed in. Four pieces:
//!
//! - [`ScenarioSpec`] — a serde-serializable (JSON/TOML) description of one
//!   run: machine, workload, policy keys, parameters, costs, seed. A spec
//!   is the unit of reproducibility: same spec ⇒ bit-identical
//!   [`RunReport`](crate::RunReport) on the simulator.
//! - [`PolicyRegistries`] — string-keyed factories for
//!   [`SchedulerPolicy`](crate::policy::SchedulerPolicy),
//!   [`CriticalityEstimator`](cata_tdg::criticality::CriticalityEstimator)
//!   and [`AccelManager`](crate::accel::AccelManager). The six paper
//!   configurations are pre-registered; third-party policies register a
//!   closure under a new key and run everywhere, without touching core
//!   enums (the enums remain as thin wrappers resolving through the same
//!   registries).
//! - [`Executor`] — one call shape over every backend:
//!   [`SimExecutor`](crate::SimExecutor) (deterministic discrete-event
//!   simulation) and [`NativeExecutor`] (real threads + DVFS backend).
//! - [`Suite`] — fans `Vec<ScenarioSpec>` across a thread pool with
//!   deterministic per-run seeding; parallel and serial runs are
//!   bit-identical. [`Suite::shard`] partitions the cell grid across
//!   processes/machines, and [`Suite::run_with_store`] streams completed
//!   cells into a [`ResultsStore`] and resumes interrupted sweeps.
//! - [`ResultsStore`] — a JSONL store of [`CellRecord`]s (one completed
//!   cell per line, atomic append) with a validating reader and a shard
//!   merger, so long sweeps survive crashes and fan out across CI jobs.
//!
//! ```
//! use cata_core::exp::{Scenario, Suite, WorkloadSpec, ScenarioSpec};
//! use cata_core::SimExecutor;
//! use cata_workloads::{Benchmark, Scale};
//!
//! // One run, explicitly assembled…
//! let scenario = Scenario::builder("CATA")
//!     .scheduler("cats-homogeneous")
//!     .estimator("static-annotations")
//!     .accel("software-cata")
//!     .workload(WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, 42))
//!     .fast_cores(8)
//!     .build();
//! let report = scenario.run(&SimExecutor::default()).unwrap();
//! assert_eq!(report.label, "CATA");
//!
//! // …or the whole paper matrix, in parallel.
//! let suite = Suite::from_specs(ScenarioSpec::paper_matrix(
//!     8,
//!     WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, 42),
//! ))
//! .jobs(4);
//! let reports = suite.run_all(&SimExecutor::default());
//! assert_eq!(reports.len(), 6);
//! ```

pub mod calibrate;
pub mod error;
pub mod executor;
pub mod progress;
pub mod registry;
pub mod scenario;
pub mod spec;
pub mod store;
pub mod suite;

pub use calibrate::CostCalibration;
pub use error::ExpError;
pub use executor::{BackendDispatch, CapturedGraph, EnergySource, Executor, NativeExecutor};
pub use progress::{
    host_fingerprint, now_unix_ms, JsonlTail, ProgressEvent, ProgressRecord, ProgressWriter,
    PROGRESS_SCHEMA,
};
pub use registry::{
    default_event_queue_registry, default_registries, AccelEntry, AllNonCritical, EstimatorEntry,
    EventQueueRegistry, FactoryCtx, PolicyCaps, PolicyKeys, PolicyRegistries, SchedulerEntry,
};
pub use scenario::{Scenario, ScenarioBuilder};
pub use spec::{Backend, PolicyParams, ScenarioSpec, WorkloadSpec};
pub use store::{spec_digest, CellRecord, MergedRecords, ResultsStore, STORE_SCHEMA};
pub use suite::{derive_seed, ShardOrder, StoreRunOutcome, Suite};

// Trace collection is selected per spec (`ScenarioSpec::trace`); re-export
// the mode enum so facade users don't need a `cata_sim` import for it.
pub use cata_sim::trace::TraceMode;
