//! Streaming progress telemetry: heartbeat records for live observability.
//!
//! A sweep or service run is opaque while it executes — the store only
//! shows *finished* cells. This module adds a sidecar `.progress.jsonl`
//! stream the runners append heartbeat records to (cell started, grid N%
//! complete, cell finished, periodic service-mode snapshots), written with
//! the exact discipline [`ResultsStore`](super::store::ResultsStore)
//! established: one self-contained JSON line per record, serialized into a
//! single buffer ending in `\n` and appended with one `write_all` on an
//! `O_APPEND` handle. A reader therefore needs no IPC and tolerates a
//! killed writer the same way the store reader does — only a newline-less
//! trailing fragment is ever in doubt.
//!
//! [`JsonlTail`] is the matching reader: an incremental follower that
//! polls a growing JSONL file and yields only the *complete* lines that
//! arrived since the last poll, holding a torn tail back until its newline
//! lands (the writer may still be mid-append, or may have been killed and
//! later resumed by a fresh process). The `repro watch` dashboard tails
//! progress files, shard stores, and the perf trajectory through this one
//! follower.

use super::error::ExpError;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format tag carried by every progress record; bumped on breaking layout
/// changes.
pub const PROGRESS_SCHEMA: &str = "cata-progress/v1";

/// Milliseconds since the Unix epoch, for heartbeat timestamps. Wall-clock
/// time is *observability metadata only* — nothing deterministic (digests,
/// reports, resume keys) may depend on it.
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A stable fingerprint of the executing host: FNV-1a over the kernel
/// hostname and the CPU model line. Stamped onto store cells and perf
/// trajectory points so readers can refuse to mix measurements from
/// different machines (events/sec on two hosts is not one trajectory).
pub fn host_fingerprint() -> String {
    use std::sync::OnceLock;
    static FP: OnceLock<String> = OnceLock::new();
    FP.get_or_init(|| {
        let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .ok()
            .or_else(|| std::env::var("HOSTNAME").ok())
            .unwrap_or_else(|| "unknown-host".to_string());
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .map(str::to_string)
            })
            .unwrap_or_else(|| "unknown-cpu".to_string());
        cata_tdg::fnv1a_hex(format!("{}\n{cpu}", hostname.trim()).bytes())
    })
    .clone()
}

/// One heartbeat. Suite runners emit the cell/grid variants; the service
/// engine emits periodic snapshots of its open-system accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A suite worker picked up cell `index` and is executing it.
    CellStart {
        /// Global grid index of the cell.
        index: u64,
        /// The spec's configuration name (`CATA`, `FIFO`, …) — the full
        /// cell key is only known once the report names the workload that
        /// actually ran, so the start beat carries the cheap spec name.
        name: String,
        /// Digest of the cell's spec (joins the beat to store records).
        spec_digest: String,
    },
    /// A suite worker finished cell `index` (successfully or not).
    CellFinish {
        /// Global grid index of the cell.
        index: u64,
        /// Full cell key (`label@workload/fN/backend`) on success, the
        /// spec name on failure (a failed run has no report to name the
        /// workload).
        cell: String,
        /// Whether the cell produced a report (false ⇒ the error text is
        /// in `cell`-adjacent logs, and the store holds no record).
        ok: bool,
        /// Wall-clock seconds the execution took.
        wall_s: f64,
    },
    /// Shard-level completion: `done` of `total` cells finished. Emitted
    /// once at startup (counting resumed cells) and after every finish.
    GridProgress {
        /// Cells completed so far (including cells resumed from the store).
        done: u64,
        /// Cells this shard owns.
        total: u64,
    },
    /// Open-system service heartbeat: the engine's accounting at a fixed
    /// arrival cadence.
    ServiceSnapshot {
        /// Graph instances that arrived so far.
        arrivals: u64,
        /// Instances past admission control.
        admitted: u64,
        /// Instances that ran to completion.
        completed: u64,
        /// Instances shed by admission or recovery.
        dropped: u64,
        /// Admitted instances still in flight.
        in_flight: u64,
        /// p99 response time so far, picoseconds (0 until completions).
        p99_ps: u64,
        /// Simulated time of the snapshot, picoseconds.
        sim_time_ps: u64,
    },
}

impl ProgressEvent {
    /// The `kind` discriminator this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            ProgressEvent::CellStart { .. } => "cell-start",
            ProgressEvent::CellFinish { .. } => "cell-finish",
            ProgressEvent::GridProgress { .. } => "grid",
            ProgressEvent::ServiceSnapshot { .. } => "service",
        }
    }
}

/// One line of a `.progress.jsonl` stream: schema + shard + wall-clock
/// stamp + the event, flattened into a single JSON map keyed by `kind`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressRecord {
    /// Format tag ([`PROGRESS_SCHEMA`]).
    pub schema: String,
    /// 0-based shard id of the emitting runner (0 when unsharded).
    pub shard: u64,
    /// Wall-clock milliseconds since the Unix epoch at emit time.
    pub unix_ms: u64,
    /// The heartbeat payload.
    pub event: ProgressEvent,
}

// Serde is hand-written: the event fields are flattened into the record's
// own map under a `kind` discriminator (the vendored derive has no enum
// tagging attributes), keeping each heartbeat one flat, greppable line.
impl Serialize for ProgressRecord {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("schema".into(), self.schema.to_value()),
            ("shard".into(), self.shard.to_value()),
            ("unix_ms".into(), self.unix_ms.to_value()),
            ("kind".into(), self.event.kind().to_value()),
        ];
        match &self.event {
            ProgressEvent::CellStart {
                index,
                name,
                spec_digest,
            } => {
                m.push(("index".into(), index.to_value()));
                m.push(("name".into(), name.to_value()));
                m.push(("spec_digest".into(), spec_digest.to_value()));
            }
            ProgressEvent::CellFinish {
                index,
                cell,
                ok,
                wall_s,
            } => {
                m.push(("index".into(), index.to_value()));
                m.push(("cell".into(), cell.to_value()));
                m.push(("ok".into(), ok.to_value()));
                m.push(("wall_s".into(), wall_s.to_value()));
            }
            ProgressEvent::GridProgress { done, total } => {
                m.push(("done".into(), done.to_value()));
                m.push(("total".into(), total.to_value()));
            }
            ProgressEvent::ServiceSnapshot {
                arrivals,
                admitted,
                completed,
                dropped,
                in_flight,
                p99_ps,
                sim_time_ps,
            } => {
                m.push(("arrivals".into(), arrivals.to_value()));
                m.push(("admitted".into(), admitted.to_value()));
                m.push(("completed".into(), completed.to_value()));
                m.push(("dropped".into(), dropped.to_value()));
                m.push(("in_flight".into(), in_flight.to_value()));
                m.push(("p99_ps".into(), p99_ps.to_value()));
                m.push(("sim_time_ps".into(), sim_time_ps.to_value()));
            }
        }
        Value::Map(m)
    }
}

impl Deserialize for ProgressRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("ProgressRecord")?;
        let kind: String = serde::field(m, "kind", "ProgressRecord")?;
        let event = match kind.as_str() {
            "cell-start" => ProgressEvent::CellStart {
                index: serde::field(m, "index", "ProgressRecord")?,
                name: serde::field(m, "name", "ProgressRecord")?,
                spec_digest: serde::field(m, "spec_digest", "ProgressRecord")?,
            },
            "cell-finish" => ProgressEvent::CellFinish {
                index: serde::field(m, "index", "ProgressRecord")?,
                cell: serde::field(m, "cell", "ProgressRecord")?,
                ok: serde::field(m, "ok", "ProgressRecord")?,
                wall_s: serde::field(m, "wall_s", "ProgressRecord")?,
            },
            "grid" => ProgressEvent::GridProgress {
                done: serde::field(m, "done", "ProgressRecord")?,
                total: serde::field(m, "total", "ProgressRecord")?,
            },
            "service" => ProgressEvent::ServiceSnapshot {
                arrivals: serde::field(m, "arrivals", "ProgressRecord")?,
                admitted: serde::field(m, "admitted", "ProgressRecord")?,
                completed: serde::field(m, "completed", "ProgressRecord")?,
                dropped: serde::field(m, "dropped", "ProgressRecord")?,
                in_flight: serde::field(m, "in_flight", "ProgressRecord")?,
                p99_ps: serde::field(m, "p99_ps", "ProgressRecord")?,
                sim_time_ps: serde::field(m, "sim_time_ps", "ProgressRecord")?,
            },
            other => {
                return Err(DeError::new(format!(
                    "ProgressRecord: unknown kind `{other}`"
                )))
            }
        };
        Ok(ProgressRecord {
            schema: serde::field(m, "schema", "ProgressRecord")?,
            shard: serde::field(m, "shard", "ProgressRecord")?,
            unix_ms: serde::field(m, "unix_ms", "ProgressRecord")?,
            event,
        })
    }
}

fn progress_err(path: &Path, what: impl std::fmt::Display) -> ExpError {
    ExpError::Store(format!("{}: {what}", path.display()))
}

/// An append-only heartbeat writer bound to one `.progress.jsonl` file.
/// Safe to share across suite workers: each emit is one serialized line
/// written with a single `write_all` under a lock, then flushed — the
/// identical atomic-append discipline as the results store, so a reader
/// can never observe an interleaved or half-flushed record (only a
/// killed writer's newline-less fragment).
#[derive(Debug)]
pub struct ProgressWriter {
    path: PathBuf,
    shard: u64,
    writer: Mutex<File>,
}

impl ProgressWriter {
    /// Opens (creating if missing) the heartbeat stream at `path`,
    /// stamping every record with `shard`. Appends to an existing file —
    /// a resumed sweep continues the same stream.
    pub fn open(path: impl AsRef<Path>, shard: u64) -> Result<Self, ExpError> {
        let path = path.as_ref().to_path_buf();
        let writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| progress_err(&path, e))?;
        Ok(ProgressWriter {
            path,
            shard,
            writer: Mutex::new(writer),
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one heartbeat stamped with the current wall clock.
    pub fn emit(&self, event: ProgressEvent) -> Result<(), ExpError> {
        self.emit_at(now_unix_ms(), event)
    }

    /// Appends one heartbeat with an explicit timestamp (tests pin these
    /// for deterministic streams).
    pub fn emit_at(&self, unix_ms: u64, event: ProgressEvent) -> Result<(), ExpError> {
        let record = ProgressRecord {
            schema: PROGRESS_SCHEMA.to_string(),
            shard: self.shard,
            unix_ms,
            event,
        };
        let mut line = serde_json::to_string(&record)
            .map_err(|e| progress_err(&self.path, format!("serialize: {e}")))?;
        line.push('\n');
        let mut f = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| progress_err(&self.path, e))
    }
}

/// An incremental follower over a growing JSONL file.
///
/// Each [`poll`](Self::poll) reads everything appended since the last
/// poll and returns only the *complete* lines (newline-terminated). A
/// trailing newline-less fragment — a writer mid-append, or killed
/// mid-`write_all` — is left unconsumed: the follower's offset stays at
/// the last line boundary, so when the writer (or a successor process)
/// finishes the line, the next poll yields it whole. A missing file is
/// "no lines yet", not an error — the follower may be started before the
/// writer. If the file *shrinks* below the consumed offset (a resuming
/// `ResultsStore::open` truncating a torn tail), the follower restarts
/// from the beginning and re-yields the surviving lines; consumers keyed
/// by record identity (cell index, shard) dedupe naturally.
#[derive(Debug)]
pub struct JsonlTail {
    path: PathBuf,
    /// Bytes consumed into complete lines so far.
    offset: u64,
}

impl JsonlTail {
    /// A follower positioned at the start of `path` (which need not exist
    /// yet).
    pub fn new(path: impl AsRef<Path>) -> Self {
        JsonlTail {
            path: path.as_ref().to_path_buf(),
            offset: 0,
        }
    }

    /// The file being followed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Returns the complete lines appended since the last poll (empty
    /// strings filtered out; the trailing torn fragment, if any, is held
    /// back for a future poll).
    pub fn poll(&mut self) -> Result<Vec<String>, ExpError> {
        let mut f = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(progress_err(&self.path, e)),
        };
        let len = f.metadata().map_err(|e| progress_err(&self.path, e))?.len();
        if len < self.offset {
            // Truncated under us (torn-tail recovery by a fresh writer):
            // restart; dedupe is the consumer's job.
            self.offset = 0;
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        f.seek(SeekFrom::Start(self.offset))
            .map_err(|e| progress_err(&self.path, e))?;
        let mut buf = String::new();
        f.read_to_string(&mut buf)
            .map_err(|e| progress_err(&self.path, e))?;
        // Consume only up to the last newline; the fragment past it is a
        // line still being written.
        let Some(last_nl) = buf.rfind('\n') else {
            return Ok(Vec::new());
        };
        let complete = &buf[..=last_nl];
        self.offset += complete.len() as u64;
        Ok(complete
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cata-progress-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn records_round_trip_through_every_kind() {
        let events = [
            ProgressEvent::CellStart {
                index: 3,
                name: "CATA".into(),
                spec_digest: "abcd".into(),
            },
            ProgressEvent::CellFinish {
                index: 3,
                cell: "CATA@dedup-tiny/f8/sim".into(),
                ok: true,
                wall_s: 0.25,
            },
            ProgressEvent::GridProgress { done: 4, total: 12 },
            ProgressEvent::ServiceSnapshot {
                arrivals: 100,
                admitted: 90,
                completed: 80,
                dropped: 10,
                in_flight: 10,
                p99_ps: 12_345,
                sim_time_ps: 999,
            },
        ];
        for event in events {
            let rec = ProgressRecord {
                schema: PROGRESS_SCHEMA.into(),
                shard: 1,
                unix_ms: 1_700_000_000_000,
                event,
            };
            let line = serde_json::to_string(&rec).unwrap();
            let back: ProgressRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let line = r#"{"schema":"cata-progress/v1","shard":0,"unix_ms":1,"kind":"mystery"}"#;
        assert!(serde_json::from_str::<ProgressRecord>(line).is_err());
    }

    #[test]
    fn tail_holds_back_torn_fragment_until_newline_arrives() {
        let path = tmp("torn.progress.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut tail = JsonlTail::new(&path);
        assert!(tail.poll().unwrap().is_empty(), "missing file = no lines");

        let writer = ProgressWriter::open(&path, 0).unwrap();
        writer
            .emit_at(1, ProgressEvent::GridProgress { done: 0, total: 2 })
            .unwrap();
        assert_eq!(tail.poll().unwrap().len(), 1);

        // A writer killed mid-append leaves a newline-less fragment; the
        // follower must not yield it.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"schema\":\"cata-progress/v1\",\"shard\":0")
            .unwrap();
        f.flush().unwrap();
        assert!(tail.poll().unwrap().is_empty(), "fragment must be held");

        // The resumed writer finishes the line; the whole record arrives.
        f.write_all(b",\"unix_ms\":2,\"kind\":\"grid\",\"done\":1,\"total\":2}\n")
            .unwrap();
        drop(f);
        let lines = tail.poll().unwrap();
        assert_eq!(lines.len(), 1);
        let rec: ProgressRecord = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(rec.event, ProgressEvent::GridProgress { done: 1, total: 2 });
        assert!(tail.poll().unwrap().is_empty());
    }

    #[test]
    fn tail_restarts_after_truncation() {
        let path = tmp("trunc.progress.jsonl");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n").unwrap();
        let mut tail = JsonlTail::new(&path);
        assert_eq!(tail.poll().unwrap().len(), 2);
        // A fresh writer truncated the file (torn-tail recovery) and
        // appended anew: the follower re-reads from the start.
        std::fs::write(&path, "{\"a\":1}\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["{\"a\":1}".to_string()]);
    }

    #[test]
    fn host_fingerprint_is_stable_hex() {
        let a = host_fingerprint();
        assert_eq!(a, host_fingerprint());
        assert_eq!(a.len(), 16, "{a}");
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()), "{a}");
    }
}
