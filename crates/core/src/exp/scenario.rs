//! `Scenario`: a spec bound to the registries that can resolve it.

use super::error::ExpError;
use super::registry::{default_registries, PolicyRegistries};
use super::spec::{ScenarioSpec, WorkloadSpec};
use crate::report::RunReport;
use cata_cpufreq::software_path::SoftwarePathParams;
use cata_power::PowerParams;
use cata_sim::machine::MachineConfig;
use cata_sim::time::SimDuration;
use cata_sim::trace::TraceMode;
use std::sync::Arc;

/// A runnable experiment: a [`ScenarioSpec`] plus the
/// [`PolicyRegistries`] its keys resolve through. Execute it on any
/// [`Executor`](super::executor::Executor) — the simulator or the native
/// thread-pool runtime — with one call shape.
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
    registries: Arc<PolicyRegistries>,
}

impl Scenario {
    /// Starts a builder named `name` (the report label).
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            spec: ScenarioSpec::new(
                name,
                WorkloadSpec::ForkJoin {
                    waves: 3,
                    width: 16,
                    cycles: 1_000_000,
                },
            ),
            registries: None,
        }
    }

    /// Wraps an existing spec with the default (builtin) registries.
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        Scenario {
            spec,
            registries: Arc::clone(default_registries()),
        }
    }

    /// One of the six paper configurations by label, on `workload`.
    pub fn preset(name: &str, fast_cores: usize, workload: WorkloadSpec) -> Result<Self, ExpError> {
        ScenarioSpec::preset(name, fast_cores, workload).map(Self::from_spec)
    }

    /// Replaces the registries (e.g. to add third-party policies).
    pub fn with_registries(mut self, registries: Arc<PolicyRegistries>) -> Self {
        self.registries = registries;
        self
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Mutable access to the spec (sweeps tweak machines and costs).
    pub fn spec_mut(&mut self) -> &mut ScenarioSpec {
        &mut self.spec
    }

    /// The registries this scenario resolves through.
    pub fn registries(&self) -> &Arc<PolicyRegistries> {
        &self.registries
    }

    /// Runs on the given executor — sugar for `executor.execute(self)`.
    pub fn run(&self, executor: &dyn super::executor::Executor) -> Result<RunReport, ExpError> {
        executor.execute(self)
    }
}

/// Fluent construction of a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
    registries: Option<Arc<PolicyRegistries>>,
}

impl ScenarioBuilder {
    /// Sets the workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Sets the machine.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.spec.machine = machine;
        self
    }

    /// Sets the fast-core count / power budget.
    pub fn fast_cores(mut self, fast_cores: usize) -> Self {
        self.spec.fast_cores = fast_cores;
        self
    }

    /// Sets the scheduler registry key.
    pub fn scheduler(mut self, key: impl Into<String>) -> Self {
        self.spec.scheduler = key.into();
        self
    }

    /// Sets the estimator registry key.
    pub fn estimator(mut self, key: impl Into<String>) -> Self {
        self.spec.estimator = key.into();
        self
    }

    /// Sets the acceleration-manager registry key.
    pub fn accel(mut self, key: impl Into<String>) -> Self {
        self.spec.accel = key.into();
        self
    }

    /// Sets the bottom-level threshold parameter.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.spec.params.get_or_insert_with(Default::default).alpha = Some(alpha);
        self
    }

    /// Sets the software-path latency parameters.
    pub fn software_path(mut self, params: SoftwarePathParams) -> Self {
        self.spec
            .params
            .get_or_insert_with(Default::default)
            .software_path = Some(params);
        self
    }

    /// Sets the idle→halt OS timeout.
    pub fn idle_to_halt(mut self, timeout: Option<SimDuration>) -> Self {
        self.spec.idle_to_halt = timeout;
        self
    }

    /// Sets the power model.
    pub fn power(mut self, power: PowerParams) -> Self {
        self.spec.power = power;
        self
    }

    /// Enables full event tracing.
    pub fn trace(mut self) -> Self {
        self.spec.trace = TraceMode::Full;
        self
    }

    /// Selects an explicit trace collection mode.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.spec.trace = mode;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Selects the execution backend (sim default / native).
    pub fn backend(mut self, backend: super::spec::Backend) -> Self {
        self.spec.backend = backend;
        self
    }

    /// Attaches a deterministic fault-injection schedule.
    pub fn faults(mut self, faults: crate::fault::FaultSpec) -> Self {
        self.spec.faults = Some(faults);
        self
    }

    /// Shrinks the machine for unit tests.
    pub fn small_machine(mut self, n: usize, fast: usize) -> Self {
        self.spec = self.spec.with_small_machine(n, fast);
        self
    }

    /// Uses custom registries.
    pub fn registries(mut self, registries: Arc<PolicyRegistries>) -> Self {
        self.registries = Some(registries);
        self
    }

    /// Finalizes the scenario.
    pub fn build(self) -> Scenario {
        Scenario {
            spec: self.spec,
            registries: self
                .registries
                .unwrap_or_else(|| Arc::clone(default_registries())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_the_knobs() {
        let s = Scenario::builder("X")
            .fast_cores(4)
            .scheduler("cats-homogeneous")
            .estimator("static-annotations")
            .accel("rsu")
            .alpha(0.7)
            .seed(99)
            .small_machine(8, 4)
            .build();
        assert_eq!(s.spec().name, "X");
        assert_eq!(s.spec().scheduler, "cats-homogeneous");
        assert_eq!(s.spec().accel, "rsu");
        assert_eq!(s.spec().params_or_default().alpha_or_default(), 0.7);
        assert_eq!(s.spec().seed, 99);
        assert_eq!(s.spec().machine.num_cores, 8);
    }
}
