//! The `Executor` trait: one call shape over every backend.
//!
//! Both the deterministic discrete-event simulator ([`SimExecutor`]) and
//! the real thread-pool runtime ([`NativeExecutor`]) take a
//! [`Scenario`] and produce a [`RunReport`], so benches, sweeps and suites
//! are backend-agnostic.

use super::error::ExpError;
use super::scenario::Scenario;
use super::spec::Backend;
use crate::fault::FaultReport;
use crate::native::{MetricsSnapshot, NativeRuntime, RetryConfig, RsmMode};
use crate::report::RunReport;
use crate::sim_exec::SimExecutor;
use cata_cpufreq::backend::DvfsBackend;
use cata_power::{model_native_energy, EnergyReport, Measurement, RaplReader};
use cata_sim::progress::ExecProfile;
use cata_sim::stats::{Counters, LatencySamples};
use cata_sim::time::SimDuration;
use cata_sim::trace::Trace;
use cata_tdg::TdgFile;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A run's task graph, captured alongside its report as a replayable
/// [`TdgFile`] — the `RunReport`-adjacent artifact `repro record` writes.
///
/// Sim captures are the spec's graph verbatim (the simulator executes the
/// profiles exactly as written). Native captures substitute each task's
/// *observed* wall duration into its profile, so a replay on the simulator
/// is calibrated to what the host actually did.
#[derive(Debug, Clone)]
pub struct CapturedGraph {
    /// The executor that captured it ("sim", "native").
    pub backend: String,
    /// True when the profiles carry observed (host-measured) durations
    /// rather than the spec's modeled ones.
    pub calibrated: bool,
    /// The replayable graph; feed it back through
    /// [`WorkloadSpec::Inline`](super::spec::WorkloadSpec::Inline) or
    /// write it to a `.tdg.json` and reference it with
    /// [`WorkloadSpec::File`](super::spec::WorkloadSpec::File).
    pub tdg: TdgFile,
}

/// A backend that can execute scenarios.
pub trait Executor: Send + Sync {
    /// Short backend name for reports ("sim", "native").
    fn name(&self) -> &'static str;

    /// Executes the scenario to completion and reports.
    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError>;

    /// Executes the scenario and also captures its task graph as a
    /// replayable [`CapturedGraph`]. The default implementation captures
    /// the spec's graph as-is — exact for the simulator, whose replays are
    /// bit-identical; backends that observe real durations (the native
    /// executor) override it to substitute what they measured.
    ///
    /// The capture is taken *first*, and for the one workload kind with
    /// no stable content identity — an unpinned `File`, which re-reads
    /// its file on every build — the run executes the captured graph
    /// itself (substituted [`WorkloadSpec::Inline`]
    /// (super::spec::WorkloadSpec::Inline)), so the artifact and the
    /// report can never describe different graphs even if the file is
    /// edited mid-run. Every other workload builds deterministically
    /// through the shared graph cache, so executing the original
    /// scenario reuses the exact graph just captured (same cache key,
    /// same `Arc`) instead of paying a rebuild for a substitution that
    /// could not change anything.
    fn execute_captured(
        &self,
        scenario: &Scenario,
    ) -> Result<(RunReport, CapturedGraph), ExpError> {
        scenario.spec().validate()?;
        let workload = &scenario.spec().workload;
        let (_graph, tdg) = workload.capture()?;
        let report = if matches!(
            workload,
            super::spec::WorkloadSpec::File { digest: None, .. }
        ) {
            let mut pinned = scenario.clone();
            pinned.spec_mut().workload = super::spec::WorkloadSpec::Inline(tdg.clone().into());
            self.execute(&pinned)?
        } else {
            self.execute(scenario)?
        };
        Ok((
            report,
            CapturedGraph {
                backend: self.name().to_string(),
                calibrated: false,
                tdg,
            },
        ))
    }
}

impl Executor for SimExecutor {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        // This entry point cannot return the trace, so don't pay for
        // *recording* one — a `Full` spec drops to `Counters`, which keeps
        // the per-kind tallies (they surface as `RunReport::trace_counts`)
        // without storing records; use `run_scenario_traced` to keep the
        // ring buffer.
        if scenario.spec().trace == cata_sim::trace::TraceMode::Full {
            let mut spec = scenario.spec().clone();
            spec.trace = cata_sim::trace::TraceMode::Counters;
            return self
                .run_spec(&spec, scenario.registries())
                .map(|(report, _trace)| report);
        }
        self.run_spec(scenario.spec(), scenario.registries())
            .map(|(report, _trace)| report)
    }
}

impl SimExecutor {
    /// Facade execution that also returns the event trace (enable
    /// `spec.trace` to record one).
    pub fn run_scenario_traced(&self, scenario: &Scenario) -> Result<(RunReport, Trace), ExpError> {
        self.run_spec(scenario.spec(), scenario.registries())
    }

    /// Facade execution returning only the report.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        self.execute(scenario)
    }
}

/// Where a native run's joules come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnergySource {
    /// RAPL counters when `/sys/class/powercap` is readable, else the
    /// calibrated model — the right choice on real hardware.
    #[default]
    Auto,
    /// Always the calibrated model, even when RAPL is available —
    /// deterministic provenance for tests and CI.
    Model,
}

/// The host RAPL reader, probed once per process (the sysfs scan is not
/// free, and readability does not change mid-run).
fn host_rapl() -> Option<&'static RaplReader> {
    static RAPL: OnceLock<Option<RaplReader>> = OnceLock::new();
    RAPL.get_or_init(RaplReader::detect).as_ref()
}

/// RAPL counters are package-wide: two native cells sampling the same
/// counters around overlapping windows would each book the *whole*
/// package's joules — including the other cell's work — as their own.
/// These process-wide counters detect any overlap so the affected runs
/// fall back to the calibrated model instead of reporting contaminated
/// measurements. `NATIVE_IN_FLIGHT` counts concurrently executing native
/// cells; `OVERLAP_EPOCH` bumps whenever a run starts while another is in
/// flight, so the *earlier* run (which started alone) also notices.
static NATIVE_IN_FLIGHT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static OVERLAP_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The native thread-pool backend: really runs the scenario's task graph as
/// busy-work closures on worker threads, with the CATA algorithm driving a
/// DVFS backend (mock by default; sysfs where permitted).
///
/// The scenario's machine chooses the worker count (capped at the host's
/// parallelism) and `fast_cores` sets the acceleration budget. Simulated
/// task durations are scaled down by `work_divisor` so paper-scale
/// workloads finish in test time.
///
/// Energy: the runtime observes per-worker busy time at each frequency
/// class and the executor prices it through the spec's [`PowerParams`]
/// calibration ([`Measurement::Modeled`]); when the host exposes readable
/// RAPL counters the measured package joules are reported instead
/// ([`Measurement::Rapl`]). Native runs therefore carry nonzero,
/// sim-comparable energy — they used to hard-code 0 J, which made every
/// normalized-EDP table divide by zero.
pub struct NativeExecutor {
    /// Reconfiguration discipline (software lock vs RSU-emulated).
    pub rsm_mode: RsmMode,
    /// Divides each task's cycle count to size its busy-work loop.
    pub work_divisor: u64,
    /// Cap on worker threads (the scenario machine may name 32 cores).
    pub max_workers: usize,
    /// RAPL-vs-model policy.
    pub energy_source: EnergySource,
    backend: Option<Arc<dyn DvfsBackend>>,
}

impl Default for NativeExecutor {
    fn default() -> Self {
        NativeExecutor {
            rsm_mode: RsmMode::RsuEmulated,
            work_divisor: 1_000,
            max_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            energy_source: EnergySource::Auto,
            backend: None,
        }
    }
}

impl NativeExecutor {
    /// A native executor with defaults (RSU-emulated RSM, mock DVFS).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the reconfiguration discipline.
    pub fn rsm_mode(mut self, mode: RsmMode) -> Self {
        self.rsm_mode = mode;
        self
    }

    /// Sets the busy-work scale divisor.
    pub fn work_divisor(mut self, divisor: u64) -> Self {
        self.work_divisor = divisor.max(1);
        self
    }

    /// Sets the DVFS backend explicitly (sysfs, mock, null).
    pub fn backend(mut self, backend: Arc<dyn DvfsBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Caps the worker count.
    pub fn max_workers(mut self, n: usize) -> Self {
        self.max_workers = n.max(1);
        self
    }

    /// Selects the energy source (RAPL-auto vs model-only).
    pub fn energy_source(mut self, source: EnergySource) -> Self {
        self.energy_source = source;
        self
    }
}

fn busy_work(iters: u64) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// A DVFS backend wrapper failing writes with seeded probability `p` —
/// the native counterpart of the simulator's `reconfig_fail_p` fault
/// axis. Each write draws from a SplitMix64 sequence; the *sequence* is
/// reproducible per seed (the interleaving across worker threads is not,
/// native runs being inherently racy).
struct FlakyDvfs {
    inner: Arc<dyn DvfsBackend>,
    p: f64,
    state: std::sync::Mutex<cata_sim::seeded::SplitMix64>,
}

impl FlakyDvfs {
    fn new(inner: Arc<dyn DvfsBackend>, p: f64, seed: u64) -> Self {
        FlakyDvfs {
            inner,
            p,
            // Same stream-tagged seed as ever; the shared generator draws
            // the identical sequence the inlined copy did.
            state: std::sync::Mutex::new(cata_sim::seeded::SplitMix64::new(seed ^ 0xFA17_0001)),
        }
    }

    fn next_unit(&self) -> f64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_unit()
    }
}

impl DvfsBackend for FlakyDvfs {
    fn name(&self) -> &'static str {
        "flaky"
    }

    fn set_speed(&self, cpu: usize, khz: u32) -> std::io::Result<()> {
        if self.next_unit() < self.p {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient DVFS-write fault",
            ));
        }
        self.inner.set_speed(cpu, khz)
    }

    fn get_speed(&self, cpu: usize) -> std::io::Result<u32> {
        self.inner.get_speed(cpu)
    }

    fn num_cpus(&self) -> usize {
        self.inner.num_cpus()
    }
}

/// The native run's [`FaultReport`]: present exactly when the spec
/// carries a [`FaultSpec`](crate::fault::FaultSpec) (mirroring the sim
/// engines), populated from the runtime's classified reconfiguration
/// outcomes. Core fail-stop schedules don't apply to a real host, so
/// those counts stay zero.
fn native_fault_report(
    spec: &super::spec::ScenarioSpec,
    metrics: &MetricsSnapshot,
) -> Option<FaultReport> {
    spec.faults.as_ref()?;
    Some(FaultReport {
        reconfig_faults: metrics.reconfig_faults,
        reconfig_recovered: metrics.reconfig_recovered,
        reconfig_exhausted: metrics.reconfig_exhausted,
        ..FaultReport::default()
    })
}

impl NativeExecutor {
    /// The execution core shared by [`execute`](Executor::execute) and
    /// [`execute_captured`](Executor::execute_captured): runs `graph` —
    /// built *once* by the caller, so the capture path's observed-slot
    /// array and the spawned tasks can never disagree about the graph
    /// (an unpinned `File` workload re-reads its file per build) — on
    /// the thread pool, optionally storing each task's observed wall
    /// nanoseconds into `observed` (indexed by task id) for calibrated
    /// graph capture. `workload_label` comes from the same load as
    /// `graph` for the same reason: a fresh `label()` lookup on an
    /// unpinned file could name a newer revision than what ran.
    fn execute_inner(
        &self,
        scenario: &Scenario,
        graph: &cata_tdg::TaskGraph,
        workload_label: &str,
        observed: Option<&Arc<Vec<AtomicU64>>>,
    ) -> Result<RunReport, ExpError> {
        // Both callers validate the spec before building the graph they
        // hand in, so the spec is known-good here.
        let spec = scenario.spec();

        let workers = spec.machine.num_cores.clamp(1, self.max_workers);
        let budget = spec.fast_cores.min(workers);
        let fast_khz = spec
            .machine
            .fast_level
            .frequency
            .as_mhz()
            .saturating_mul(1000);
        let slow_khz = spec
            .machine
            .slow_level
            .frequency
            .as_mhz()
            .saturating_mul(1000);

        let mut builder = NativeRuntime::builder(workers)
            .budget(budget)
            .rsm_mode(self.rsm_mode)
            .frequencies_khz(fast_khz, slow_khz);
        // Fault injection on the native backend: flaky DVFS writes wrap
        // whichever backend the run would have used, and the runtime gets
        // a bounded-retry discipline (backoff jitter seeded by the run
        // seed) instead of the default single try.
        let backend: Option<Arc<dyn DvfsBackend>> = match &spec.faults {
            Some(f) if f.reconfig_fail_p > 0.0 => {
                let inner: Arc<dyn DvfsBackend> = self
                    .backend
                    .clone()
                    .unwrap_or_else(|| Arc::new(cata_cpufreq::backend::NullDvfs::new(workers)));
                Some(Arc::new(FlakyDvfs::new(
                    inner,
                    f.reconfig_fail_p,
                    spec.seed,
                )))
            }
            _ => self.backend.clone(),
        };
        if let Some(backend) = backend {
            builder = builder.backend(backend);
        }
        if let Some(f) = &spec.faults {
            builder = builder.retry(RetryConfig {
                max_retries: f.max_retries,
                backoff_base: std::time::Duration::from_micros(50),
                attempt_timeout: Some(std::time::Duration::from_millis(50)),
                seed: spec.seed,
            });
        }
        let rt = builder.build();

        use std::sync::atomic::Ordering;
        // Snapshot the epoch *before* announcing ourselves: a concurrent
        // run that starts between our announce and a later snapshot would
        // bump the epoch into our baseline and slip past the end check.
        let epoch_at_start = OVERLAP_EPOCH.load(Ordering::SeqCst);
        let already_running = NATIVE_IN_FLIGHT.fetch_add(1, Ordering::SeqCst) > 0;
        // Decrement even if the run panics (a leaked increment would
        // disable RAPL for the rest of the process).
        struct InFlight;
        impl Drop for InFlight {
            fn drop(&mut self) {
                NATIVE_IN_FLIGHT.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let _in_flight = InFlight;
        if already_running {
            // A later run contaminates the earlier one's window too; the
            // epoch bump tells it so at sampling time.
            OVERLAP_EPOCH.fetch_add(1, Ordering::SeqCst);
        }

        let rapl = match self.energy_source {
            EnergySource::Auto if !already_running => host_rapl(),
            _ => None,
        };
        let rapl_start = rapl.and_then(|r| r.sample());

        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(graph.num_tasks());
        for task in graph.tasks() {
            let deps: Vec<_> = task.preds().iter().map(|p| handles[p.index()]).collect();
            let critical = graph.type_of(task.id).criticality > 0;
            let iters = task.profile.cpu_cycles / self.work_divisor;
            let h = match observed {
                Some(slots) => {
                    let slots = Arc::clone(slots);
                    let idx = task.id.index();
                    rt.spawn(critical, &deps, move || {
                        let t0 = Instant::now();
                        std::hint::black_box(busy_work(iters));
                        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        slots[idx].store(ns, std::sync::atomic::Ordering::Relaxed);
                    })
                }
                None => rt.spawn(critical, &deps, move || {
                    std::hint::black_box(busy_work(iters));
                }),
            };
            handles.push(h);
        }
        rt.wait_all();
        let wall = t0.elapsed();
        let rapl_end = rapl.and_then(|r| r.sample());
        // The window is only clean if no other native run overlapped it:
        // nobody was in flight when we started, and nobody arrived since.
        let exclusive = !already_running && OVERLAP_EPOCH.load(Ordering::SeqCst) == epoch_at_start;
        let metrics = rt.metrics();
        let busy = rt.busy_intervals();
        drop(rt);

        let exec_time = SimDuration::from_ns(wall.as_nanos().min(u64::MAX as u128) as u64);
        let wall_s = exec_time.as_secs_f64();

        // Measured joules when the host allows it *and* this run had the
        // package to itself (RAPL is package-wide — an overlapping native
        // cell would be double-counted); the calibrated model — the spec's
        // own PowerParams priced over the observed busy-time-at-frequency
        // intervals — otherwise.
        let measured = match (rapl, &rapl_start, &rapl_end) {
            (Some(r), Some(a), Some(b)) if exclusive => {
                let j = r.joules_between(a, b);
                (j > 0.0).then(|| {
                    // RAPL gives a trustworthy package *total* but no
                    // attribution; the calibrated model gives attribution
                    // at modeled magnitude. Blend them: scale the model's
                    // per-component split to the measured total, tagged
                    // "rapl-split" so tables can tell a blended breakdown
                    // from a purely modeled one. Falls back to the plain
                    // breakdown-less RAPL report when the model prices
                    // the window at zero (nothing to apportion by).
                    let model = model_native_energy(
                        &spec.power,
                        spec.machine.fast_level,
                        spec.machine.slow_level,
                        spec.machine.num_cores,
                        wall_s,
                        &busy,
                    );
                    let total = model.breakdown.total_j();
                    if total > 0.0 && total.is_finite() {
                        let k = j / total;
                        let mut bd = model.breakdown;
                        bd.core_busy_j *= k;
                        bd.core_idle_j *= k;
                        bd.core_halt_j *= k;
                        bd.core_static_j *= k;
                        bd.uncore_j *= k;
                        EnergyReport::from_parts(wall_s, bd)
                            .with_measurement(Measurement::RaplSplit)
                    } else {
                        EnergyReport::measured(wall_s, j, Measurement::Rapl)
                    }
                })
            }
            _ => None,
        };
        let energy = measured.unwrap_or_else(|| {
            // Model over the *spec* machine, not the clamped worker pool:
            // `busy` only covers the mapped workers, so the spec's extra
            // cores are priced idle at the slow level, keeping the joules
            // comparable with full-width sim cells. A clamped run's
            // provenance tag says so ("modeled-scaled").
            let report = model_native_energy(
                &spec.power,
                spec.machine.fast_level,
                spec.machine.slow_level,
                spec.machine.num_cores,
                wall_s,
                &busy,
            );
            if workers != spec.machine.num_cores {
                report.with_measurement(Measurement::ModeledScaled)
            } else {
                report
            }
        });

        let mut lock_waits = LatencySamples::new();
        if metrics.rsm_lock_ns > 0 {
            lock_waits.record(SimDuration::from_ns(metrics.rsm_lock_ns));
        }
        let overhead = SimDuration::from_ns(metrics.rsm_lock_ns);
        let agg_core_ps = exec_time.as_ps().saturating_mul(workers as u64);

        Ok(RunReport {
            label: spec.name.clone(),
            workload: workload_label.to_string(),
            fast_cores: budget,
            exec_time,
            energy,
            counters: Counters {
                tasks_completed: metrics.tasks_run,
                reconfigs_requested: metrics.reconfigs,
                reconfigs_applied: metrics.reconfigs.saturating_sub(metrics.reconfig_failures),
                accel_denied: metrics.accel_denied,
                ..Counters::default()
            },
            lock_waits,
            reconfig_latencies: LatencySamples::new(),
            reconfig_overhead: overhead,
            reconfig_time_share: if agg_core_ps == 0 {
                0.0
            } else {
                overhead.as_ps() as f64 / agg_core_ps as f64
            },
            core_utilization: Vec::new(),
            tasks: graph.num_tasks(),
            // The native backend has no event-trace plumbing.
            trace_counts: None,
            // A clamped machine is part of the result's identity: a
            // 32-core spec executed with 8 workers is an 8-core run.
            effective_cores: (workers != spec.machine.num_cores).then_some(workers),
            // Native runs are closed-system: one graph, no arrivals.
            service: None,
            fault: native_fault_report(scenario.spec(), &metrics),
            // The native backend runs on real shared memory; the modeled
            // interference gate is a simulator-only component.
            memory: None,
        })
    }
}

impl Executor for NativeExecutor {
    fn name(&self) -> &'static str {
        "native"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        // Validate before building: an invalid spec must not pay for (or
        // cache) a paper-scale graph generation just to be rejected.
        scenario.spec().validate()?;
        let (graph, label) = scenario.spec().workload.build_labeled_graph()?;
        self.execute_inner(scenario, &graph, &label, None)
    }

    /// Native capture substitutes *observed* wall durations into the
    /// profiles: each task's measured nanoseconds are scaled back up by
    /// `work_divisor` (undoing the busy-work scale-down) and expressed as
    /// cycles at the spec machine's slow level, so a replay on the
    /// simulator reproduces the host's relative task durations at
    /// sim-comparable magnitudes.
    fn execute_captured(
        &self,
        scenario: &Scenario,
    ) -> Result<(RunReport, CapturedGraph), ExpError> {
        let spec = scenario.spec();
        spec.validate()?;
        // One workload load serves the execution graph, the observed-slot
        // sizing *and* the artifact (name included): a separate build or
        // label lookup could see a different revision of an unpinned
        // `File` workload than what actually runs.
        let (graph, mut tdg) = spec.workload.capture()?;
        let observed: Arc<Vec<AtomicU64>> =
            Arc::new((0..graph.num_tasks()).map(|_| AtomicU64::new(0)).collect());
        let report = self.execute_inner(scenario, &graph, &tdg.name, Some(&observed))?;

        let slow_mhz = spec.machine.slow_level.frequency.as_mhz() as u64;
        for (i, task) in tdg.tasks.iter_mut().enumerate() {
            // A task that executed took *some* time, even when it beat
            // the clock's resolution — floor at 1 ns so no captured
            // profile degenerates to zero-cost.
            let ns = observed[i]
                .load(std::sync::atomic::Ordering::Relaxed)
                .max(1);
            // duration_at(slow) == observed_ns * work_divisor: cycles =
            // wall time × cycles-per-ns at the slow clock.
            let cycles = (ns
                .saturating_mul(self.work_divisor)
                .saturating_mul(slow_mhz)
                / 1000)
                .max(1);
            // An observed duration replaces the whole cost model; memory
            // time and blocking points are folded into what was measured.
            task.profile = ExecProfile::new(cycles, 0);
        }
        tdg.refresh_digest();
        Ok((
            report,
            CapturedGraph {
                backend: self.name().to_string(),
                calibrated: true,
                tdg,
            },
        ))
    }
}

/// An executor that routes each scenario to the backend its spec names —
/// the way a suite runs sim and native cells side by side in one grid.
pub struct BackendDispatch {
    sim: SimExecutor,
    native: NativeExecutor,
}

impl Default for BackendDispatch {
    fn default() -> Self {
        Self::new()
    }
}

impl BackendDispatch {
    /// A dispatcher over default sim and native executors.
    pub fn new() -> Self {
        BackendDispatch {
            sim: SimExecutor::default(),
            native: NativeExecutor::new(),
        }
    }

    /// Replaces the native executor (e.g. to pin a mock DVFS backend or a
    /// deterministic energy source).
    pub fn with_native(mut self, native: NativeExecutor) -> Self {
        self.native = native;
        self
    }
}

impl Executor for BackendDispatch {
    fn name(&self) -> &'static str {
        "dispatch"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        match scenario.spec().backend {
            Backend::Sim => self.sim.execute(scenario),
            Backend::Native => self.native.execute(scenario),
        }
    }

    fn execute_captured(
        &self,
        scenario: &Scenario,
    ) -> Result<(RunReport, CapturedGraph), ExpError> {
        match scenario.spec().backend {
            Backend::Sim => self.sim.execute_captured(scenario),
            Backend::Native => self.native.execute_captured(scenario),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::WorkloadSpec;

    #[test]
    fn both_executors_share_one_call_shape() {
        let scenario = Scenario::preset(
            "CATA+RSU",
            2,
            WorkloadSpec::ForkJoin {
                waves: 2,
                width: 8,
                cycles: 200_000,
            },
        )
        .unwrap();
        let mut small = scenario.clone();
        small.spec_mut().machine = cata_sim::machine::MachineConfig::small_test(4);
        small.spec_mut().fast_cores = 2;

        let executors: Vec<Box<dyn Executor>> = vec![
            Box::new(SimExecutor::default()),
            Box::new(NativeExecutor::new().max_workers(4)),
        ];
        for exec in &executors {
            let report = exec.execute(&small).unwrap_or_else(|e| {
                panic!("{} failed: {e}", exec.name());
            });
            assert_eq!(report.tasks, 18, "{} task count", exec.name());
            assert_eq!(
                report.counters.tasks_completed,
                18,
                "{} completion count",
                exec.name()
            );
            assert_eq!(report.label, "CATA+RSU");
        }
    }

    #[test]
    fn native_runs_report_nonzero_modeled_energy() {
        let mut scenario = Scenario::preset(
            "CATA+RSU",
            2,
            WorkloadSpec::ForkJoin {
                waves: 2,
                width: 8,
                cycles: 500_000,
            },
        )
        .unwrap();
        scenario.spec_mut().machine = cata_sim::machine::MachineConfig::small_test(4);
        scenario.spec_mut().fast_cores = 2;

        let exec = NativeExecutor::new()
            .max_workers(4)
            .energy_source(EnergySource::Model);
        let report = exec.execute(&scenario).unwrap();
        assert!(
            report.energy.has_energy(),
            "native run still reports {} J",
            report.energy.energy_j
        );
        assert_eq!(report.energy.measurement, Measurement::Modeled);
        assert!(report.energy.edp > 0.0);
        // Sim and native cells are now comparable: a normalized EDP exists.
        let sim = SimExecutor::default().execute(&scenario).unwrap();
        assert_eq!(sim.energy.measurement, Measurement::Simulated);
        assert!(report.edp_normalized_to(&sim).is_some());
    }

    #[test]
    fn dispatch_routes_by_spec_backend() {
        use crate::exp::spec::Backend;
        let mut scenario = Scenario::preset(
            "CATA",
            2,
            WorkloadSpec::ForkJoin {
                waves: 1,
                width: 4,
                cycles: 100_000,
            },
        )
        .unwrap();
        scenario.spec_mut().machine = cata_sim::machine::MachineConfig::small_test(4);
        scenario.spec_mut().fast_cores = 2;

        // Pin the worker pool to the spec machine so the provenance tag
        // is host-independent (a narrower host would clamp and report
        // `modeled-scaled` instead).
        let dispatch = BackendDispatch::new().with_native(
            NativeExecutor::new()
                .max_workers(4)
                .energy_source(EnergySource::Model),
        );
        let sim = dispatch.execute(&scenario).unwrap();
        assert_eq!(sim.energy.measurement, Measurement::Simulated);

        scenario.spec_mut().backend = Backend::Native;
        let native = dispatch.execute(&scenario).unwrap();
        assert_eq!(native.energy.measurement, Measurement::Modeled);
        assert!(native.energy.has_energy());
    }
}
