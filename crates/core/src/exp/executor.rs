//! The `Executor` trait: one call shape over every backend.
//!
//! Both the deterministic discrete-event simulator ([`SimExecutor`]) and
//! the real thread-pool runtime ([`NativeExecutor`]) take a
//! [`Scenario`] and produce a [`RunReport`], so benches, sweeps and suites
//! are backend-agnostic.

use super::error::ExpError;
use super::scenario::Scenario;
use crate::native::{NativeRuntime, RsmMode};
use crate::report::RunReport;
use crate::sim_exec::SimExecutor;
use cata_cpufreq::backend::DvfsBackend;
use cata_power::{EnergyBreakdown, EnergyReport};
use cata_sim::stats::{Counters, LatencySamples};
use cata_sim::time::{SimDuration, SimTime};
use cata_sim::trace::Trace;
use std::sync::Arc;
use std::time::Instant;

/// A backend that can execute scenarios.
pub trait Executor: Send + Sync {
    /// Short backend name for reports ("sim", "native").
    fn name(&self) -> &'static str;

    /// Executes the scenario to completion and reports.
    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError>;
}

impl Executor for SimExecutor {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        // This entry point cannot return the trace, so don't pay for
        // *recording* one — a `Full` spec drops to `Counters`, which keeps
        // the per-kind tallies (they surface as `RunReport::trace_counts`)
        // without storing records; use `run_scenario_traced` to keep the
        // ring buffer.
        if scenario.spec().trace == cata_sim::trace::TraceMode::Full {
            let mut spec = scenario.spec().clone();
            spec.trace = cata_sim::trace::TraceMode::Counters;
            return self
                .run_spec(&spec, scenario.registries())
                .map(|(report, _trace)| report);
        }
        self.run_spec(scenario.spec(), scenario.registries())
            .map(|(report, _trace)| report)
    }
}

impl SimExecutor {
    /// Facade execution that also returns the event trace (enable
    /// `spec.trace` to record one).
    pub fn run_scenario_traced(&self, scenario: &Scenario) -> Result<(RunReport, Trace), ExpError> {
        self.run_spec(scenario.spec(), scenario.registries())
    }

    /// Facade execution returning only the report.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        self.execute(scenario)
    }
}

/// The native thread-pool backend: really runs the scenario's task graph as
/// busy-work closures on worker threads, with the CATA algorithm driving a
/// DVFS backend (mock by default; sysfs where permitted).
///
/// The scenario's machine chooses the worker count (capped at the host's
/// parallelism) and `fast_cores` sets the acceleration budget. Simulated
/// task durations are scaled down by `work_divisor` so paper-scale
/// workloads finish in test time.
pub struct NativeExecutor {
    /// Reconfiguration discipline (software lock vs RSU-emulated).
    pub rsm_mode: RsmMode,
    /// Divides each task's cycle count to size its busy-work loop.
    pub work_divisor: u64,
    /// Cap on worker threads (the scenario machine may name 32 cores).
    pub max_workers: usize,
    backend: Option<Arc<dyn DvfsBackend>>,
}

impl Default for NativeExecutor {
    fn default() -> Self {
        NativeExecutor {
            rsm_mode: RsmMode::RsuEmulated,
            work_divisor: 1_000,
            max_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            backend: None,
        }
    }
}

impl NativeExecutor {
    /// A native executor with defaults (RSU-emulated RSM, mock DVFS).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the reconfiguration discipline.
    pub fn rsm_mode(mut self, mode: RsmMode) -> Self {
        self.rsm_mode = mode;
        self
    }

    /// Sets the busy-work scale divisor.
    pub fn work_divisor(mut self, divisor: u64) -> Self {
        self.work_divisor = divisor.max(1);
        self
    }

    /// Sets the DVFS backend explicitly (sysfs, mock, null).
    pub fn backend(mut self, backend: Arc<dyn DvfsBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Caps the worker count.
    pub fn max_workers(mut self, n: usize) -> Self {
        self.max_workers = n.max(1);
        self
    }
}

fn busy_work(iters: u64) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

impl Executor for NativeExecutor {
    fn name(&self) -> &'static str {
        "native"
    }

    fn execute(&self, scenario: &Scenario) -> Result<RunReport, ExpError> {
        let spec = scenario.spec();
        spec.validate()?;
        let graph = spec.workload.build_graph();

        let workers = spec.machine.num_cores.clamp(1, self.max_workers);
        let budget = spec.fast_cores.min(workers);
        let fast_khz = spec
            .machine
            .fast_level
            .frequency
            .as_mhz()
            .saturating_mul(1000);
        let slow_khz = spec
            .machine
            .slow_level
            .frequency
            .as_mhz()
            .saturating_mul(1000);

        let mut builder = NativeRuntime::builder(workers)
            .budget(budget)
            .rsm_mode(self.rsm_mode)
            .frequencies_khz(fast_khz, slow_khz);
        if let Some(backend) = &self.backend {
            builder = builder.backend(Arc::clone(backend));
        }
        let rt = builder.build();

        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(graph.num_tasks());
        for task in graph.tasks() {
            let deps: Vec<_> = task.preds().iter().map(|p| handles[p.index()]).collect();
            let critical = graph.type_of(task.id).criticality > 0;
            let iters = task.profile.cpu_cycles / self.work_divisor;
            let h = rt.spawn(critical, &deps, move || {
                std::hint::black_box(busy_work(iters));
            });
            handles.push(h);
        }
        rt.wait_all();
        let wall = t0.elapsed();
        let metrics = rt.metrics();
        drop(rt);

        let exec_time = SimDuration::from_ns(wall.as_nanos().min(u64::MAX as u128) as u64);
        let mut lock_waits = LatencySamples::new();
        if metrics.rsm_lock_ns > 0 {
            lock_waits.record(SimDuration::from_ns(metrics.rsm_lock_ns));
        }
        let overhead = SimDuration::from_ns(metrics.rsm_lock_ns);
        let agg_core_ps = exec_time.as_ps().saturating_mul(workers as u64);
        let end = SimTime::ZERO + exec_time;

        Ok(RunReport {
            label: spec.name.clone(),
            workload: spec.workload.label(),
            fast_cores: budget,
            exec_time,
            // The native backend measures time and events; it has no power
            // sensor, so the energy report is time-only (0 J).
            energy: EnergyReport::from_parts(
                end.since(SimTime::ZERO).as_secs_f64(),
                EnergyBreakdown::default(),
            ),
            counters: Counters {
                tasks_completed: metrics.tasks_run,
                reconfigs_requested: metrics.reconfigs,
                reconfigs_applied: metrics.reconfigs.saturating_sub(metrics.reconfig_failures),
                accel_denied: metrics.accel_denied,
                ..Counters::default()
            },
            lock_waits,
            reconfig_latencies: LatencySamples::new(),
            reconfig_overhead: overhead,
            reconfig_time_share: if agg_core_ps == 0 {
                0.0
            } else {
                overhead.as_ps() as f64 / agg_core_ps as f64
            },
            core_utilization: Vec::new(),
            tasks: graph.num_tasks(),
            // The native backend has no event-trace plumbing.
            trace_counts: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::WorkloadSpec;

    #[test]
    fn both_executors_share_one_call_shape() {
        let scenario = Scenario::preset(
            "CATA+RSU",
            2,
            WorkloadSpec::ForkJoin {
                waves: 2,
                width: 8,
                cycles: 200_000,
            },
        )
        .unwrap();
        let mut small = scenario.clone();
        small.spec_mut().machine = cata_sim::machine::MachineConfig::small_test(4);
        small.spec_mut().fast_cores = 2;

        let executors: Vec<Box<dyn Executor>> = vec![
            Box::new(SimExecutor::default()),
            Box::new(NativeExecutor::new().max_workers(4)),
        ];
        for exec in &executors {
            let report = exec.execute(&small).unwrap_or_else(|e| {
                panic!("{} failed: {e}", exec.name());
            });
            assert_eq!(report.tasks, 18, "{} task count", exec.name());
            assert_eq!(
                report.counters.tasks_completed,
                18,
                "{} completion count",
                exec.name()
            );
            assert_eq!(report.label, "CATA+RSU");
        }
    }
}
