//! `ScenarioSpec`: the complete, serializable description of one run.
//!
//! A spec names *everything* a run depends on — machine, workload,
//! scheduler/estimator/accel registry keys, policy parameters, runtime
//! costs, and the seed — so a run is reproducible from its serialized form
//! alone. JSON and TOML render the same structure.

use super::error::ExpError;
use crate::config::{RunConfig, RuntimeCosts};
use cata_cpufreq::software_path::SoftwarePathParams;
use cata_power::PowerParams;
use cata_sim::machine::MachineConfig;
use cata_sim::time::SimDuration;
use cata_sim::trace::TraceMode;
use cata_tdg::{TaskGraph, TdgFile, TdgHandle};
use cata_workloads::{generate, micro, Benchmark, Scale};
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Which executor a scenario runs on. A suite axis: the same spec grid can
/// carry sim and native cells side by side, and the backend is part of the
/// cell's identity (it participates in the spec digest for native cells).
///
/// Serialized as `"sim"` / `"native"`; the field is *omitted* for `Sim`,
/// so pre-backend specs — and their store digests — are byte-identical to
/// what this repo produced before the field existed, and legacy spec files
/// parse unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event simulator.
    #[default]
    Sim,
    /// The real thread-pool runtime with a DVFS backend.
    Native,
}

impl Backend {
    /// The serialized / table form ("sim", "native").
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            other => Err(format!("unknown backend `{other}` (want sim|native)")),
        }
    }
}

impl Serialize for Backend {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for Backend {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(DeError::new),
            other => Err(DeError::new(format!(
                "Backend: expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

/// The workload a scenario runs: a PARSECSs-shaped generator or one of the
/// micro-graphs with every generation parameter pinned — or, since the TDG
/// capture & replay subsystem, a concrete task graph itself: [`Inline`]
/// (WorkloadSpec::Inline) embeds a [`TdgFile`] in the spec, and [`File`]
/// (WorkloadSpec::File) references a `.tdg.json` on disk pinned by its
/// content digest. Both replay through every executor, suite, shard and
/// store path exactly like a generated workload (the TDG participates in
/// the spec digest, so a cell's identity sees the graph's content).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One of the paper's six benchmarks at a given scale and seed.
    Parsec {
        /// The benchmark.
        bench: Benchmark,
        /// Generation scale.
        scale: Scale,
        /// Workload-generation seed.
        seed: u64,
    },
    /// A serial chain of `n` tasks of `cycles` each.
    Chain {
        /// Task count.
        n: usize,
        /// Cycles per task.
        cycles: u64,
    },
    /// `waves` fork-join waves of `width` tasks of `cycles` each.
    ForkJoin {
        /// Wave count.
        waves: usize,
        /// Tasks per wave.
        width: usize,
        /// Cycles per task.
        cycles: u64,
    },
    /// A diamond whose first branch is `skew`× longer (paper Figure 1).
    SkewedDiamond {
        /// Branch count.
        width: usize,
        /// Cycles per normal branch.
        cycles: u64,
        /// Length multiplier of the critical branch.
        skew: u64,
    },
    /// A random DAG (see `cata_workloads::micro::random_dag`).
    RandomDag {
        /// Task count.
        n: usize,
        /// Edge probability.
        edge_p: f64,
        /// Minimum task cycles.
        min_cycles: u64,
        /// Maximum task cycles.
        max_cycles: u64,
        /// Generation seed.
        seed: u64,
    },
    /// A concrete task graph embedded in the spec — a captured/exported
    /// [`TdgFile`] carried inline (behind a hash-consed [`TdgHandle`]
    /// whose verification is memoized), so the spec is a self-contained,
    /// shippable experiment artifact.
    Inline(TdgHandle),
    /// A task graph stored in a `.tdg.json` (or `.toml`) file. `digest`
    /// pins the file's *content* digest: the spec digest (and therefore
    /// the cell identity in stores) sees it, so an edited TDG is a new
    /// cell, never a silent cache hit. `None` accepts whatever content the
    /// path holds — convenient while iterating, but unpinned: stores
    /// cannot tell two revisions apart.
    File {
        /// Path to the TDG file.
        path: String,
        /// Expected content digest ([`TdgFile::content_digest`]), or
        /// `None` to accept any content.
        digest: Option<String>,
    },
}

/// A tiny process-wide FIFO memo: string keys, linear scan (these caches
/// stay small), FIFO eviction at `cap`, duplicate puts are no-ops. Both
/// the TDG-file cache and the graph cache are instances, so their lock
/// handling and eviction behavior cannot drift apart.
struct FifoCache<V> {
    cap: usize,
    entries: Mutex<Vec<(String, Arc<V>)>>,
}

impl<V> FifoCache<V> {
    const fn new(cap: usize) -> Self {
        FifoCache {
            cap,
            entries: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, key: &str) -> Option<Arc<V>> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| Arc::clone(v))
    }

    fn put(&self, key: String, value: &Arc<V>) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if !entries.iter().any(|(k, _)| *k == key) {
            if entries.len() >= self.cap {
                entries.remove(0);
            }
            entries.push((key, Arc::clone(value)));
        }
    }
}

/// The process-wide cache behind [`load_tdg_cached`], keyed by
/// `path\0digest`. Only digest-*pinned* loads live here — a pinned
/// digest names immutable content, so entries can never go stale.
static TDG_CACHE: FifoCache<TdgFile> = FifoCache::new(16);

fn tdg_cache_key(path: &str, digest: Option<&str>) -> String {
    format!("{path}\u{0}{}", digest.unwrap_or(""))
}

/// The memoized TDG file loader behind [`WorkloadSpec::File`]: a
/// `File`-workload's graph, label and cost estimate all consult the file,
/// and a suite may hold thousands of cells over one TDG — so each
/// *pinned* `(path, digest)` is read and parsed once per process (content
/// behind a verified pin is immutable by identity, so a cached copy can
/// never go stale). Unpinned loads (`digest: None`) bypass the cache in
/// both directions: the variant's contract is "accept whatever the path
/// holds *right now*", and a process-wide cache would silently keep
/// serving the first revision it saw while the user iterates on the
/// file. Failures are never cached (a fixed file is picked up on retry).
fn load_tdg_cached(path: &str, digest: Option<&str>) -> Result<Arc<TdgFile>, ExpError> {
    if let Some(want) = digest {
        if let Some(file) = TDG_CACHE.get(&tdg_cache_key(path, Some(want))) {
            return Ok(file);
        }
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| ExpError::Workload(format!("{path}: {e}")))?;
    let file = if path.ends_with(".toml") {
        TdgFile::from_toml(&text)
    } else {
        TdgFile::from_json(&text)
    }
    .map_err(|e| ExpError::Workload(format!("{path}: {e}")))?;
    let file = Arc::new(file);
    if let Some(want) = digest {
        let actual = file.content_digest();
        if actual != want {
            return Err(ExpError::Workload(format!(
                "{path}: content digest {actual} does not match the spec's pin {want} \
                 (the file changed since the spec was written)"
            )));
        }
        TDG_CACHE.put(tdg_cache_key(path, Some(want)), &file);
    }
    Ok(file)
}

/// `app.tdg.json` → `app`: the label fallback when a `File` workload
/// cannot be read (reports still need *some* name).
fn tdg_file_stem(path: &str) -> String {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path);
    stem.strip_suffix(".tdg").unwrap_or(stem).to_string()
}

impl WorkloadSpec {
    /// The default paper workload: one benchmark at one scale with the
    /// bench harness's fixed seed.
    pub fn parsec(bench: Benchmark, scale: Scale, seed: u64) -> Self {
        WorkloadSpec::Parsec { bench, scale, seed }
    }

    /// A digest-pinned [`File`](WorkloadSpec::File) workload: reads the
    /// TDG at `path` once to compute its content digest, so the resulting
    /// spec — and every store cell derived from it — names this exact
    /// revision of the graph.
    pub fn tdg_file_pinned(path: impl Into<String>) -> Result<Self, ExpError> {
        let path = path.into();
        let file = load_tdg_cached(&path, None)?;
        let digest = file.content_digest();
        // Seed the digest-qualified cache entry: the loads the pinned
        // spec makes next (graph build, label, cost) hit it instead of
        // re-reading the file.
        TDG_CACHE.put(tdg_cache_key(&path, Some(&digest)), &file);
        Ok(WorkloadSpec::File {
            path,
            digest: Some(digest),
        })
    }

    /// Builds the task graph this spec describes (deterministic). Unlike
    /// the generators, `Inline`/`File` workloads can carry a malformed or
    /// missing TDG; this is the fallible path every executor uses.
    pub fn try_build_graph(&self) -> Result<TaskGraph, ExpError> {
        Ok(match *self {
            WorkloadSpec::Parsec { bench, scale, seed } => generate(bench, scale, seed),
            WorkloadSpec::Chain { n, cycles } => micro::chain(n, cycles),
            WorkloadSpec::ForkJoin {
                waves,
                width,
                cycles,
            } => micro::fork_join(waves, width, cycles),
            WorkloadSpec::SkewedDiamond {
                width,
                cycles,
                skew,
            } => micro::skewed_diamond(width, cycles, skew),
            WorkloadSpec::RandomDag {
                n,
                edge_p,
                min_cycles,
                max_cycles,
                seed,
            } => micro::random_dag(n, edge_p, min_cycles, max_cycles, seed),
            WorkloadSpec::Inline(ref tdg) => tdg
                .to_graph()
                .map_err(|e| ExpError::Workload(format!("inline TDG: {e}")))?,
            WorkloadSpec::File {
                ref path,
                ref digest,
            } => load_tdg_cached(path, digest.as_deref())?
                .to_graph()
                .map_err(|e| ExpError::Workload(format!("{path}: {e}")))?,
        })
    }

    /// Generates the task graph this spec describes (deterministic).
    ///
    /// # Panics
    /// Panics when an `Inline`/`File` TDG cannot be loaded or validated;
    /// use [`try_build_graph`](Self::try_build_graph) where errors must
    /// surface as values (every executor does).
    pub fn build_graph(&self) -> TaskGraph {
        self.try_build_graph()
            .unwrap_or_else(|e| panic!("workload graph unavailable: {e}"))
    }

    /// Like [`try_build_graph`](Self::try_build_graph), but memoized
    /// process-wide behind an `Arc`: matrices and sweeps run the same
    /// workload under many configurations, and generation is
    /// deterministic, so identical specs share one graph. The cache is
    /// small and FIFO-evicted; misses just regenerate.
    pub fn try_build_graph_shared(&self) -> Result<Arc<TaskGraph>, ExpError> {
        static CACHE: FifoCache<TaskGraph> = FifoCache::new(32);
        // Unpinned file workloads have no stable content identity to key
        // a cache on ("accept whatever the path holds right now"), so
        // they build fresh every time — a cached graph would silently
        // survive edits to the file.
        let Some(key) = self.try_graph_cache_key()? else {
            return Ok(Arc::new(self.try_build_graph()?));
        };
        if let Some(graph) = CACHE.get(&key) {
            return Ok(graph);
        }
        // Generate outside the lock so distinct workloads build in
        // parallel; a racing duplicate is deterministic and harmless
        // (`put` keeps the first copy).
        let graph = Arc::new(self.try_build_graph()?);
        CACHE.put(key, &graph);
        Ok(graph)
    }

    /// The graph cache's key for this workload, or `None` for workloads
    /// with no stable content identity (unpinned `File`s), which must
    /// not be cached. Generators serialize their (small) parameter
    /// struct. `Inline` runs the file's full header check
    /// ([`TdgFile::verify`], memoized per handle by
    /// [`TdgHandle::verify_cached`] so repeat probes are O(1)) and keys
    /// on the *computed* content digest —
    /// 16 hex chars, so probes compare tiny keys instead of a fully
    /// serialized spec, and crucially *never* the unchecked embedded
    /// digest field: trusting an embedded digest that an edit left stale
    /// would alias the edited graph to the original's cache entry, and
    /// skipping verification at probe time would make an invalid file
    /// (wrong schema, corrupt digest) succeed or fail depending on cache
    /// warmth. Pinned `File`s key on `path + pin`: the pin is verified
    /// against content on every fresh load, so it faithfully names what
    /// the cache holds.
    fn try_graph_cache_key(&self) -> Result<Option<String>, ExpError> {
        Ok(match self {
            WorkloadSpec::Inline(tdg) => {
                let digest = tdg
                    .verify_cached()
                    .map_err(|e| ExpError::Workload(format!("inline TDG: {e}")))?;
                Some(format!("inline\u{0}{digest}"))
            }
            WorkloadSpec::File {
                path,
                digest: Some(pin),
            } => Some(format!("tdg-file\u{0}{path}\u{0}{pin}")),
            WorkloadSpec::File { digest: None, .. } => None,
            other => Some(serde_json::to_string(other).expect("workload spec serializes")),
        })
    }

    /// True when [`try_build_graph_shared`](Self::try_build_graph_shared)
    /// can serve this workload from the process-wide cache — i.e. it has
    /// a stable content identity. Unpinned `File`s do not: warming the
    /// cache for them is pure waste (the build is discarded and the run
    /// re-reads the file).
    pub fn graph_cache_eligible(&self) -> bool {
        !matches!(self, WorkloadSpec::File { digest: None, .. })
    }

    /// Builds the graph *and* its replayable [`TdgFile`] form from one
    /// workload load — the capture primitive behind
    /// [`Executor::execute_captured`](super::executor::Executor::execute_captured).
    /// For file workloads the artifact's name and its tasks come from the
    /// same read: a separate `label()` lookup could see a *different
    /// revision* of an unpinned file than the graph build did (the
    /// mid-edit race), producing a misnamed artifact. The returned file
    /// always carries a fresh content digest.
    pub fn capture(&self) -> Result<(Arc<TaskGraph>, TdgFile), ExpError> {
        match self {
            WorkloadSpec::File { path, digest } => {
                let (graph, file) = self.load_file_graph(path, digest)?;
                let mut tdg = (*file).clone();
                tdg.refresh_digest();
                Ok((graph, tdg))
            }
            WorkloadSpec::Inline(tdg) => {
                let graph = self.try_build_graph_shared()?;
                let mut tdg = (**tdg).clone();
                tdg.refresh_digest();
                Ok((graph, tdg))
            }
            generator => {
                let graph = generator.try_build_graph_shared()?;
                let tdg = TdgFile::from_graph(generator.label(), &graph);
                Ok((graph, tdg))
            }
        }
    }

    /// Builds the graph *and* the report label from one workload load —
    /// what every executor's plain-run path uses so a `RunReport` (and
    /// any store cell keyed from it) can never carry the name of a
    /// *different revision* of an unpinned `File` than the graph that
    /// actually ran.
    pub fn build_labeled_graph(&self) -> Result<(Arc<TaskGraph>, String), ExpError> {
        match self {
            WorkloadSpec::File { path, digest } => {
                let (graph, file) = self.load_file_graph(path, digest)?;
                Ok((graph, file.name.clone()))
            }
            other => Ok((other.try_build_graph_shared()?, other.label())),
        }
    }

    /// One-load graph + file pair for a `File` workload: pinned loads hit
    /// the caches (the pin names immutable content), unpinned ones build
    /// the graph from the very read that produced the file — a second
    /// read could see a newer revision.
    fn load_file_graph(
        &self,
        path: &str,
        digest: &Option<String>,
    ) -> Result<(Arc<TaskGraph>, Arc<TdgFile>), ExpError> {
        let file = load_tdg_cached(path, digest.as_deref())?;
        let graph = match digest {
            // Pinned: the load above verified the pin, so the shared
            // cache (keyed on path + pin) is coherent with it by
            // construction.
            Some(_) => self.try_build_graph_shared()?,
            None => Arc::new(
                file.to_graph()
                    .map_err(|e| ExpError::Workload(format!("{path}: {e}")))?,
            ),
        };
        Ok((graph, file))
    }

    /// Panicking form of [`try_build_graph_shared`]
    /// (Self::try_build_graph_shared), for callers whose workloads are
    /// generators by construction.
    pub fn build_graph_shared(&self) -> Arc<TaskGraph> {
        self.try_build_graph_shared()
            .unwrap_or_else(|e| panic!("workload graph unavailable: {e}"))
    }

    /// The workload label used in reports. Replayed TDGs report the name
    /// recorded in the file — an exported generator replays under the
    /// generator's own label, so its `RunReport` is bit-identical to the
    /// original run's.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Parsec { bench, .. } => bench.name().to_string(),
            WorkloadSpec::Chain { n, .. } => format!("chain-{n}"),
            WorkloadSpec::ForkJoin { waves, width, .. } => format!("forkjoin-{waves}x{width}"),
            WorkloadSpec::SkewedDiamond { width, .. } => format!("diamond-{width}"),
            WorkloadSpec::RandomDag { n, .. } => format!("randdag-{n}"),
            WorkloadSpec::Inline(tdg) => tdg.name.clone(),
            WorkloadSpec::File { path, digest } => {
                match load_tdg_cached(path, digest.as_deref()) {
                    Ok(tdg) => tdg.name.clone(),
                    // An unloadable file still needs a report label; the
                    // run itself will surface the error.
                    Err(_) => tdg_file_stem(path),
                }
            }
        }
    }

    /// A deterministic estimate of this workload's total work in cycles —
    /// used only for cost-aware shard assignment
    /// ([`Suite::shard_ordered`](super::suite::Suite::shard_ordered)).
    /// Generator estimates are coarse shape guesses (cheap: no graph
    /// generation, stable across processes). `Inline`/`File` workloads
    /// carry their profiles, so their estimate is *exact* — the sum of
    /// per-task work — which is what lets snake sharding order replayed
    /// grids correctly (a shape guess for a concrete graph would rank a
    /// heavy captured app below a tiny generated one).
    ///
    /// The `Err` case exists for `File` workloads whose file cannot be
    /// read: snake sharding *must* fail loudly there — a host that
    /// silently ranked the cell at 0 would deal the grid differently
    /// from its peer shards, breaking the disjoint/covering guarantee.
    pub fn try_cost_estimate(&self) -> Result<u64, ExpError> {
        Ok(match *self {
            // PARSECSs generators repeat a per-benchmark frame pattern
            // `scale.factor()` times; a few hundred tasks of ~100k cycles
            // per factor unit is the right order of magnitude.
            WorkloadSpec::Parsec { scale, .. } => scale.factor() as u64 * 256 * 200_000,
            WorkloadSpec::Chain { n, cycles } => (n as u64).saturating_mul(cycles),
            WorkloadSpec::ForkJoin {
                waves,
                width,
                cycles,
            } => (waves as u64)
                .saturating_mul(width as u64)
                .saturating_mul(cycles),
            WorkloadSpec::SkewedDiamond {
                width,
                cycles,
                skew,
            } => (width as u64).saturating_add(skew).saturating_mul(cycles),
            WorkloadSpec::RandomDag {
                n,
                min_cycles,
                max_cycles,
                ..
            } => (n as u64).saturating_mul(min_cycles / 2 + max_cycles / 2),
            WorkloadSpec::Inline(ref tdg) => tdg.total_work_cycles(),
            WorkloadSpec::File {
                ref path,
                ref digest,
            } => load_tdg_cached(path, digest.as_deref())?.total_work_cycles(),
        })
    }

    /// Infallible form of [`try_cost_estimate`](Self::try_cost_estimate):
    /// an unreadable `File` ranks 0. Fine for display and local
    /// heuristics; cross-process shard assignment must use the fallible
    /// form (and does).
    pub fn cost_estimate(&self) -> u64 {
        self.try_cost_estimate().unwrap_or(0)
    }
}

/// Parameters consumed by policy factories. Every field is optional; a
/// factory falls back to the paper's defaults for missing values, so specs
/// only mention what they change.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Bottom-level criticality threshold fraction (default 1.0 = CATS).
    pub alpha: Option<f64>,
    /// Latency parameters of the software reconfiguration path (default:
    /// the paper calibration).
    pub software_path: Option<SoftwarePathParams>,
}

impl PolicyParams {
    /// The BL threshold, defaulted.
    pub fn alpha_or_default(&self) -> f64 {
        self.alpha.unwrap_or(1.0)
    }

    /// The software-path latencies, defaulted.
    pub fn software_path_or_default(&self) -> SoftwarePathParams {
        self.software_path
            .unwrap_or_else(SoftwarePathParams::paper_calibrated)
    }
}

/// A complete description of one experimental run.
///
/// `scheduler`, `estimator` and `accel` are string keys resolved through
/// [`PolicyRegistries`](super::registry::PolicyRegistries); the six paper
/// configurations are pre-registered, and third-party policies resolve the
/// same way without touching any core enum.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Configuration label for reports ("FIFO", "CATA+RSU", …).
    pub name: String,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The machine (Table I by default).
    pub machine: MachineConfig,
    /// Static fast-core count *and* dynamic power budget.
    pub fast_cores: usize,
    /// Scheduler registry key (e.g. "fifo", "cats", "cats-homogeneous").
    pub scheduler: String,
    /// Estimator registry key (e.g. "none", "static-annotations",
    /// "bottom-level").
    pub estimator: String,
    /// Acceleration-manager registry key (e.g. "static-hetero",
    /// "software-cata", "rsu", "turbo").
    pub accel: String,
    /// Policy parameters; omitted values fall back to paper defaults.
    pub params: Option<PolicyParams>,
    /// Runtime cost constants.
    pub costs: RuntimeCosts,
    /// Idle→halt OS timeout (TurboMode only in the paper matrix).
    pub idle_to_halt: Option<SimDuration>,
    /// Idle deceleration debounce (§V-B).
    pub idle_decel_delay: SimDuration,
    /// C1-exit latency.
    pub wake_latency: SimDuration,
    /// Power model calibration.
    pub power: PowerParams,
    /// Trace collection mode (off by default, and the right setting for
    /// suites: nobody reads a per-run trace in a million-run sweep).
    pub trace: TraceMode,
    /// Seed of the run's deterministic RNG.
    pub seed: u64,
    /// Which executor runs this cell (`sim` default / `native`).
    pub backend: Backend,
    /// Deterministic fault-injection schedule, or `None` for a perfect
    /// machine. Omitted from the serialized form when absent, so
    /// fault-free specs — and their store digests — stay byte-identical
    /// to the pre-fault layout.
    pub faults: Option<crate::fault::FaultSpec>,
    /// Event-queue backend registry key (`"heap"`, `"calendar-wheel"`,
    /// or a third-party alias registered in an
    /// [`EventQueueRegistry`](super::registry::EventQueueRegistry)), or
    /// `None` for the engine default. Every backend pops the same total
    /// `(time, seq)` order, so this knob changes *speed only* — results
    /// are bit-identical — and it is omitted from the serialized form
    /// when absent, keeping spec digests, golden preset digests, store
    /// records and tapes byte-identical to the pre-knob layout.
    pub event_queue: Option<String>,
    /// Shared-memory interference model, or `None` for the uncontended
    /// legacy machine (memory demand elapses for free inside the blended
    /// task duration). Omitted from the serialized form when absent, so
    /// uncontended specs — and their store digests — stay byte-identical
    /// to the pre-interference layout.
    pub memory: Option<crate::mem::MemorySpec>,
}

// Serde is hand-written (the vendored derive has no `#[serde(skip…)]` or
// `#[serde(default)]`) so the `backend` field is *omitted* for `Sim` and
// the `faults`/`event_queue` fields are *omitted* when `None`: a
// fault-free, default-queue sim spec serializes byte-identically to the
// pre-backend, pre-fault, pre-event-queue layout — keeping `spec_digest`
// stable, so existing JSONL stores still resume — and legacy spec files
// (no `backend`/`faults`/`event_queue` keys) parse unchanged.
impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("name".into(), self.name.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("machine".into(), self.machine.to_value()),
            ("fast_cores".into(), self.fast_cores.to_value()),
            ("scheduler".into(), self.scheduler.to_value()),
            ("estimator".into(), self.estimator.to_value()),
            ("accel".into(), self.accel.to_value()),
            ("params".into(), self.params.to_value()),
            ("costs".into(), self.costs.to_value()),
            ("idle_to_halt".into(), self.idle_to_halt.to_value()),
            ("idle_decel_delay".into(), self.idle_decel_delay.to_value()),
            ("wake_latency".into(), self.wake_latency.to_value()),
            ("power".into(), self.power.to_value()),
            ("trace".into(), self.trace.to_value()),
            ("seed".into(), self.seed.to_value()),
        ];
        if self.backend != Backend::Sim {
            m.push(("backend".into(), self.backend.to_value()));
        }
        if let Some(ref faults) = self.faults {
            m.push(("faults".into(), faults.to_value()));
        }
        if let Some(ref eq) = self.event_queue {
            m.push(("event_queue".into(), eq.to_value()));
        }
        if let Some(ref mem) = self.memory {
            m.push(("memory".into(), mem.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("ScenarioSpec")?;
        let backend: Option<Backend> = serde::field(m, "backend", "ScenarioSpec")?;
        Ok(ScenarioSpec {
            name: serde::field(m, "name", "ScenarioSpec")?,
            workload: serde::field(m, "workload", "ScenarioSpec")?,
            machine: serde::field(m, "machine", "ScenarioSpec")?,
            fast_cores: serde::field(m, "fast_cores", "ScenarioSpec")?,
            scheduler: serde::field(m, "scheduler", "ScenarioSpec")?,
            estimator: serde::field(m, "estimator", "ScenarioSpec")?,
            accel: serde::field(m, "accel", "ScenarioSpec")?,
            params: serde::field(m, "params", "ScenarioSpec")?,
            costs: serde::field(m, "costs", "ScenarioSpec")?,
            idle_to_halt: serde::field(m, "idle_to_halt", "ScenarioSpec")?,
            idle_decel_delay: serde::field(m, "idle_decel_delay", "ScenarioSpec")?,
            wake_latency: serde::field(m, "wake_latency", "ScenarioSpec")?,
            power: serde::field(m, "power", "ScenarioSpec")?,
            trace: serde::field(m, "trace", "ScenarioSpec")?,
            seed: serde::field(m, "seed", "ScenarioSpec")?,
            backend: backend.unwrap_or_default(),
            faults: serde::field(m, "faults", "ScenarioSpec")?,
            event_queue: serde::field(m, "event_queue", "ScenarioSpec")?,
            memory: serde::field(m, "memory", "ScenarioSpec")?,
        })
    }
}

/// The six paper configuration labels, in figure order — the canonical
/// list behind [`ScenarioSpec::preset`], `repro preset`, and the
/// unknown-preset error message.
pub const PAPER_PRESETS: [&str; 6] = [
    "FIFO",
    "CATS+BL",
    "CATS+SA",
    "CATA",
    "CATA+RSU",
    "TurboMode",
];

impl ScenarioSpec {
    /// A spec running `workload` with every other knob at the FIFO-baseline
    /// defaults; use the builder or the presets for the paper matrix.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        let base = RunConfig::fifo(16);
        ScenarioSpec {
            name: name.into(),
            workload,
            machine: base.machine,
            fast_cores: base.fast_cores,
            scheduler: "fifo".to_string(),
            estimator: "none".to_string(),
            accel: "static-hetero".to_string(),
            params: None,
            costs: base.costs,
            idle_to_halt: base.idle_to_halt,
            idle_decel_delay: base.idle_decel_delay,
            wake_latency: base.wake_latency,
            power: base.power,
            trace: base.trace,
            seed: base.seed,
            backend: Backend::Sim,
            faults: None,
            event_queue: None,
            memory: None,
        }
    }

    /// One of the six paper configurations by figure label (`"FIFO"`,
    /// `"CATS+BL"`, `"CATS+SA"`, `"CATA"`, `"CATA+RSU"`, `"TurboMode"`).
    pub fn preset(name: &str, fast_cores: usize, workload: WorkloadSpec) -> Result<Self, ExpError> {
        let cfg = match name {
            "FIFO" => RunConfig::fifo(fast_cores),
            "CATS+BL" => RunConfig::cats_bl(fast_cores),
            "CATS+SA" => RunConfig::cats_sa(fast_cores),
            "CATA" => RunConfig::cata(fast_cores),
            "CATA+RSU" => RunConfig::cata_rsu(fast_cores),
            "TurboMode" => RunConfig::turbo(fast_cores),
            other => return Err(ExpError::UnknownPreset(other.to_string())),
        };
        Ok(cfg.to_spec(workload))
    }

    /// All six paper configurations at one fast-core count, in figure
    /// order.
    pub fn paper_matrix(fast_cores: usize, workload: WorkloadSpec) -> Vec<Self> {
        RunConfig::paper_matrix(fast_cores)
            .into_iter()
            .map(|cfg| cfg.to_spec(workload.clone()))
            .collect()
    }

    /// The resolved policy parameters (missing → defaults).
    pub fn params_or_default(&self) -> PolicyParams {
        self.params.clone().unwrap_or_default()
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serializes")
    }

    /// Serializes to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a JSON spec.
    pub fn from_json(text: &str) -> Result<Self, ExpError> {
        serde_json::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Serializes to TOML.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("spec serializes")
    }

    /// Parses a TOML spec.
    pub fn from_toml(text: &str) -> Result<Self, ExpError> {
        toml::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Basic structural validation (a usable machine, budget ≤ cores,
    /// non-empty keys).
    pub fn validate(&self) -> Result<(), ExpError> {
        if self.machine.num_cores == 0 {
            return Err(ExpError::InvalidSpec(
                "machine.num_cores must be at least 1".to_string(),
            ));
        }
        if self.fast_cores > self.machine.num_cores {
            return Err(ExpError::InvalidSpec(format!(
                "fast_cores {} exceeds machine size {}",
                self.fast_cores, self.machine.num_cores
            )));
        }
        for (what, key) in [
            ("scheduler", &self.scheduler),
            ("estimator", &self.estimator),
            ("accel", &self.accel),
        ] {
            if key.is_empty() {
                return Err(ExpError::InvalidSpec(format!("empty {what} key")));
            }
        }
        if let Some(ref faults) = self.faults {
            faults.validate(self.machine.num_cores)?;
        }
        if let Some(ref key) = self.event_queue {
            super::registry::default_event_queue_registry().resolve(key)?;
        }
        if let Some(ref memory) = self.memory {
            memory.validate()?;
        }
        Ok(())
    }

    /// Shrinks the machine for unit tests (mirrors
    /// [`RunConfig::with_small_machine`]).
    pub fn with_small_machine(mut self, n: usize, fast: usize) -> Self {
        self.machine = MachineConfig::small_test(n);
        self.fast_cores = fast;
        self
    }

    /// Enables full event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceMode::Full;
        self
    }

    /// Selects an explicit trace collection mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Replaces the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a deterministic fault-injection schedule.
    pub fn with_faults(mut self, faults: crate::fault::FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Pins the event-queue backend by registry key (`"heap"`,
    /// `"calendar-wheel"`). The backends pop identical orders, so this
    /// changes speed only, never results.
    pub fn with_event_queue(mut self, key: impl Into<String>) -> Self {
        self.event_queue = Some(key.into());
        self
    }

    /// Attaches a shared-memory interference model (bandwidth slots +
    /// arbitration policy). `slots == 0` keeps the uncontended model.
    pub fn with_memory(mut self, memory: crate::mem::MemorySpec) -> Self {
        self.memory = Some(memory);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_carry_registry_keys() {
        let w = WorkloadSpec::ForkJoin {
            waves: 2,
            width: 4,
            cycles: 1000,
        };
        let specs = ScenarioSpec::paper_matrix(8, w);
        let keys: Vec<(&str, &str, &str)> = specs
            .iter()
            .map(|s| (s.scheduler.as_str(), s.estimator.as_str(), s.accel.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("fifo", "none", "static-hetero"),
                ("cats", "bottom-level", "static-hetero"),
                ("cats", "static-annotations", "static-hetero"),
                ("cats-homogeneous", "static-annotations", "software-cata"),
                ("cats-homogeneous", "static-annotations", "rsu"),
                ("fifo", "none", "turbo"),
            ]
        );
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let err = ScenarioSpec::preset("CATS+XL", 8, w).unwrap_err();
        assert!(matches!(err, ExpError::UnknownPreset(_)));
    }

    #[test]
    fn json_and_toml_round_trip() {
        let w = WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, 42);
        let spec = ScenarioSpec::preset("CATA", 16, w).unwrap().with_trace();
        let json = spec.to_json_pretty();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
        let toml_text = spec.to_toml();
        assert_eq!(ScenarioSpec::from_toml(&toml_text).unwrap(), spec);
    }

    #[test]
    fn sim_specs_omit_backend_and_legacy_specs_parse() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let sim = ScenarioSpec::preset("CATA", 8, w.clone()).unwrap();
        assert_eq!(sim.backend, Backend::Sim);
        let json = sim.to_json();
        assert!(
            !json.contains("backend"),
            "sim specs must keep the pre-backend layout (digest stability): {json}"
        );
        // A legacy spec (no backend key) parses as sim.
        let parsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(parsed.backend, Backend::Sim);
        assert_eq!(parsed, sim);

        let native = sim.clone().with_backend(Backend::Native);
        let njson = native.to_json();
        assert!(njson.contains("\"backend\":\"native\""), "{njson}");
        assert_eq!(ScenarioSpec::from_json(&njson).unwrap(), native);
        let ntoml = native.to_toml();
        assert_eq!(ScenarioSpec::from_toml(&ntoml).unwrap(), native);
        // The backend is part of the cell identity.
        assert_ne!(json, njson);
    }

    #[test]
    fn event_queue_key_is_omitted_when_default() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let spec = ScenarioSpec::preset("CATA", 8, w).unwrap();
        assert_eq!(spec.event_queue, None);
        let json = spec.to_json();
        assert!(
            !json.contains("event_queue"),
            "default specs must keep the pre-knob layout (digest stability): {json}"
        );
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);

        let pinned = spec.clone().with_event_queue("heap");
        let pjson = pinned.to_json();
        assert!(pjson.contains("\"event_queue\":\"heap\""), "{pjson}");
        assert_eq!(ScenarioSpec::from_json(&pjson).unwrap(), pinned);
        assert_eq!(ScenarioSpec::from_toml(&pinned.to_toml()).unwrap(), pinned);
        assert!(pinned.validate().is_ok());

        // Unknown keys are caught at validation, naming the alternatives.
        let bad = ScenarioSpec::from_json(&pjson.replace("heap", "splay-tree")).unwrap();
        assert!(matches!(
            bad.validate(),
            Err(ExpError::UnknownEventQueue { .. })
        ));
    }

    #[test]
    fn cost_estimate_is_deterministic_and_scales() {
        let small = WorkloadSpec::Parsec {
            bench: Benchmark::Dedup,
            scale: Scale::Small,
            seed: 1,
        };
        let paper = WorkloadSpec::Parsec {
            bench: Benchmark::Dedup,
            scale: Scale::Paper,
            seed: 1,
        };
        assert!(paper.cost_estimate() > small.cost_estimate());
        assert_eq!(small.cost_estimate(), small.cost_estimate());
        assert_eq!(WorkloadSpec::Chain { n: 10, cycles: 7 }.cost_estimate(), 70);
    }

    #[test]
    fn validation_rejects_oversized_budget() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let mut spec = ScenarioSpec::new("bad", w);
        spec.fast_cores = spec.machine.num_cores + 1;
        assert!(matches!(spec.validate(), Err(ExpError::InvalidSpec(_))));
    }
}
