//! `ScenarioSpec`: the complete, serializable description of one run.
//!
//! A spec names *everything* a run depends on — machine, workload,
//! scheduler/estimator/accel registry keys, policy parameters, runtime
//! costs, and the seed — so a run is reproducible from its serialized form
//! alone. JSON and TOML render the same structure.

use super::error::ExpError;
use crate::config::{RunConfig, RuntimeCosts};
use cata_cpufreq::software_path::SoftwarePathParams;
use cata_power::PowerParams;
use cata_sim::machine::MachineConfig;
use cata_sim::time::SimDuration;
use cata_sim::trace::TraceMode;
use cata_tdg::TaskGraph;
use cata_workloads::{generate, micro, Benchmark, Scale};
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::{Arc, Mutex, OnceLock};

/// Which executor a scenario runs on. A suite axis: the same spec grid can
/// carry sim and native cells side by side, and the backend is part of the
/// cell's identity (it participates in the spec digest for native cells).
///
/// Serialized as `"sim"` / `"native"`; the field is *omitted* for `Sim`,
/// so pre-backend specs — and their store digests — are byte-identical to
/// what this repo produced before the field existed, and legacy spec files
/// parse unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event simulator.
    #[default]
    Sim,
    /// The real thread-pool runtime with a DVFS backend.
    Native,
}

impl Backend {
    /// The serialized / table form ("sim", "native").
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            other => Err(format!("unknown backend `{other}` (want sim|native)")),
        }
    }
}

impl Serialize for Backend {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for Backend {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s.parse().map_err(DeError::new),
            other => Err(DeError::new(format!(
                "Backend: expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

/// The workload a scenario runs: a PARSECSs-shaped generator or one of the
/// micro-graphs, with every generation parameter pinned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One of the paper's six benchmarks at a given scale and seed.
    Parsec {
        /// The benchmark.
        bench: Benchmark,
        /// Generation scale.
        scale: Scale,
        /// Workload-generation seed.
        seed: u64,
    },
    /// A serial chain of `n` tasks of `cycles` each.
    Chain {
        /// Task count.
        n: usize,
        /// Cycles per task.
        cycles: u64,
    },
    /// `waves` fork-join waves of `width` tasks of `cycles` each.
    ForkJoin {
        /// Wave count.
        waves: usize,
        /// Tasks per wave.
        width: usize,
        /// Cycles per task.
        cycles: u64,
    },
    /// A diamond whose first branch is `skew`× longer (paper Figure 1).
    SkewedDiamond {
        /// Branch count.
        width: usize,
        /// Cycles per normal branch.
        cycles: u64,
        /// Length multiplier of the critical branch.
        skew: u64,
    },
    /// A random DAG (see `cata_workloads::micro::random_dag`).
    RandomDag {
        /// Task count.
        n: usize,
        /// Edge probability.
        edge_p: f64,
        /// Minimum task cycles.
        min_cycles: u64,
        /// Maximum task cycles.
        max_cycles: u64,
        /// Generation seed.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// The default paper workload: one benchmark at one scale with the
    /// bench harness's fixed seed.
    pub fn parsec(bench: Benchmark, scale: Scale, seed: u64) -> Self {
        WorkloadSpec::Parsec { bench, scale, seed }
    }

    /// Generates the task graph this spec describes (deterministic).
    pub fn build_graph(&self) -> TaskGraph {
        match *self {
            WorkloadSpec::Parsec { bench, scale, seed } => generate(bench, scale, seed),
            WorkloadSpec::Chain { n, cycles } => micro::chain(n, cycles),
            WorkloadSpec::ForkJoin {
                waves,
                width,
                cycles,
            } => micro::fork_join(waves, width, cycles),
            WorkloadSpec::SkewedDiamond {
                width,
                cycles,
                skew,
            } => micro::skewed_diamond(width, cycles, skew),
            WorkloadSpec::RandomDag {
                n,
                edge_p,
                min_cycles,
                max_cycles,
                seed,
            } => micro::random_dag(n, edge_p, min_cycles, max_cycles, seed),
        }
    }

    /// Like [`build_graph`](Self::build_graph), but memoized process-wide
    /// behind an `Arc`: matrices and sweeps run the same workload under
    /// many configurations, and generation is deterministic, so identical
    /// specs share one graph. The cache is small and FIFO-evicted; misses
    /// just regenerate.
    pub fn build_graph_shared(&self) -> Arc<TaskGraph> {
        type GraphCache = Mutex<Vec<(String, Arc<TaskGraph>)>>;
        const CAP: usize = 32;
        static CACHE: OnceLock<GraphCache> = OnceLock::new();
        let key = serde_json::to_string(self).expect("workload spec serializes");
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        {
            let entries = cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((_, graph)) = entries.iter().find(|(k, _)| *k == key) {
                return Arc::clone(graph);
            }
        }
        // Generate outside the lock so distinct workloads build in
        // parallel; a racing duplicate is deterministic and harmless.
        let graph = Arc::new(self.build_graph());
        let mut entries = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, cached)) = entries.iter().find(|(k, _)| *k == key) {
            return Arc::clone(cached);
        }
        if entries.len() >= CAP {
            entries.remove(0);
        }
        entries.push((key, Arc::clone(&graph)));
        graph
    }

    /// The workload label used in reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Parsec { bench, .. } => bench.name().to_string(),
            WorkloadSpec::Chain { n, .. } => format!("chain-{n}"),
            WorkloadSpec::ForkJoin { waves, width, .. } => format!("forkjoin-{waves}x{width}"),
            WorkloadSpec::SkewedDiamond { width, .. } => format!("diamond-{width}"),
            WorkloadSpec::RandomDag { n, .. } => format!("randdag-{n}"),
        }
    }

    /// A coarse, deterministic estimate of this workload's total work in
    /// cycles — used only for cost-aware shard assignment
    /// ([`Suite::shard_ordered`](super::suite::Suite::shard_ordered)), so
    /// it must be cheap (no graph generation) and stable across processes,
    /// not accurate in absolute terms.
    pub fn cost_estimate(&self) -> u64 {
        match *self {
            // PARSECSs generators repeat a per-benchmark frame pattern
            // `scale.factor()` times; a few hundred tasks of ~100k cycles
            // per factor unit is the right order of magnitude.
            WorkloadSpec::Parsec { scale, .. } => scale.factor() as u64 * 256 * 200_000,
            WorkloadSpec::Chain { n, cycles } => (n as u64).saturating_mul(cycles),
            WorkloadSpec::ForkJoin {
                waves,
                width,
                cycles,
            } => (waves as u64)
                .saturating_mul(width as u64)
                .saturating_mul(cycles),
            WorkloadSpec::SkewedDiamond {
                width,
                cycles,
                skew,
            } => (width as u64).saturating_add(skew).saturating_mul(cycles),
            WorkloadSpec::RandomDag {
                n,
                min_cycles,
                max_cycles,
                ..
            } => (n as u64).saturating_mul(min_cycles / 2 + max_cycles / 2),
        }
    }
}

/// Parameters consumed by policy factories. Every field is optional; a
/// factory falls back to the paper's defaults for missing values, so specs
/// only mention what they change.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Bottom-level criticality threshold fraction (default 1.0 = CATS).
    pub alpha: Option<f64>,
    /// Latency parameters of the software reconfiguration path (default:
    /// the paper calibration).
    pub software_path: Option<SoftwarePathParams>,
}

impl PolicyParams {
    /// The BL threshold, defaulted.
    pub fn alpha_or_default(&self) -> f64 {
        self.alpha.unwrap_or(1.0)
    }

    /// The software-path latencies, defaulted.
    pub fn software_path_or_default(&self) -> SoftwarePathParams {
        self.software_path
            .unwrap_or_else(SoftwarePathParams::paper_calibrated)
    }
}

/// A complete description of one experimental run.
///
/// `scheduler`, `estimator` and `accel` are string keys resolved through
/// [`PolicyRegistries`](super::registry::PolicyRegistries); the six paper
/// configurations are pre-registered, and third-party policies resolve the
/// same way without touching any core enum.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Configuration label for reports ("FIFO", "CATA+RSU", …).
    pub name: String,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The machine (Table I by default).
    pub machine: MachineConfig,
    /// Static fast-core count *and* dynamic power budget.
    pub fast_cores: usize,
    /// Scheduler registry key (e.g. "fifo", "cats", "cats-homogeneous").
    pub scheduler: String,
    /// Estimator registry key (e.g. "none", "static-annotations",
    /// "bottom-level").
    pub estimator: String,
    /// Acceleration-manager registry key (e.g. "static-hetero",
    /// "software-cata", "rsu", "turbo").
    pub accel: String,
    /// Policy parameters; omitted values fall back to paper defaults.
    pub params: Option<PolicyParams>,
    /// Runtime cost constants.
    pub costs: RuntimeCosts,
    /// Idle→halt OS timeout (TurboMode only in the paper matrix).
    pub idle_to_halt: Option<SimDuration>,
    /// Idle deceleration debounce (§V-B).
    pub idle_decel_delay: SimDuration,
    /// C1-exit latency.
    pub wake_latency: SimDuration,
    /// Power model calibration.
    pub power: PowerParams,
    /// Trace collection mode (off by default, and the right setting for
    /// suites: nobody reads a per-run trace in a million-run sweep).
    pub trace: TraceMode,
    /// Seed of the run's deterministic RNG.
    pub seed: u64,
    /// Which executor runs this cell (`sim` default / `native`).
    pub backend: Backend,
}

// Serde is hand-written (the vendored derive has no `#[serde(skip…)]` or
// `#[serde(default)]`) so the `backend` field is *omitted* for `Sim`:
// a sim spec serializes byte-identically to the pre-backend layout —
// keeping `spec_digest` stable, so existing JSONL stores still resume —
// and legacy spec files (no `backend` key) parse as sim.
impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("name".into(), self.name.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("machine".into(), self.machine.to_value()),
            ("fast_cores".into(), self.fast_cores.to_value()),
            ("scheduler".into(), self.scheduler.to_value()),
            ("estimator".into(), self.estimator.to_value()),
            ("accel".into(), self.accel.to_value()),
            ("params".into(), self.params.to_value()),
            ("costs".into(), self.costs.to_value()),
            ("idle_to_halt".into(), self.idle_to_halt.to_value()),
            ("idle_decel_delay".into(), self.idle_decel_delay.to_value()),
            ("wake_latency".into(), self.wake_latency.to_value()),
            ("power".into(), self.power.to_value()),
            ("trace".into(), self.trace.to_value()),
            ("seed".into(), self.seed.to_value()),
        ];
        if self.backend != Backend::Sim {
            m.push(("backend".into(), self.backend.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("ScenarioSpec")?;
        let backend: Option<Backend> = serde::field(m, "backend", "ScenarioSpec")?;
        Ok(ScenarioSpec {
            name: serde::field(m, "name", "ScenarioSpec")?,
            workload: serde::field(m, "workload", "ScenarioSpec")?,
            machine: serde::field(m, "machine", "ScenarioSpec")?,
            fast_cores: serde::field(m, "fast_cores", "ScenarioSpec")?,
            scheduler: serde::field(m, "scheduler", "ScenarioSpec")?,
            estimator: serde::field(m, "estimator", "ScenarioSpec")?,
            accel: serde::field(m, "accel", "ScenarioSpec")?,
            params: serde::field(m, "params", "ScenarioSpec")?,
            costs: serde::field(m, "costs", "ScenarioSpec")?,
            idle_to_halt: serde::field(m, "idle_to_halt", "ScenarioSpec")?,
            idle_decel_delay: serde::field(m, "idle_decel_delay", "ScenarioSpec")?,
            wake_latency: serde::field(m, "wake_latency", "ScenarioSpec")?,
            power: serde::field(m, "power", "ScenarioSpec")?,
            trace: serde::field(m, "trace", "ScenarioSpec")?,
            seed: serde::field(m, "seed", "ScenarioSpec")?,
            backend: backend.unwrap_or_default(),
        })
    }
}

/// The six paper configuration labels, in figure order — the canonical
/// list behind [`ScenarioSpec::preset`], `repro preset`, and the
/// unknown-preset error message.
pub const PAPER_PRESETS: [&str; 6] = [
    "FIFO",
    "CATS+BL",
    "CATS+SA",
    "CATA",
    "CATA+RSU",
    "TurboMode",
];

impl ScenarioSpec {
    /// A spec running `workload` with every other knob at the FIFO-baseline
    /// defaults; use the builder or the presets for the paper matrix.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        let base = RunConfig::fifo(16);
        ScenarioSpec {
            name: name.into(),
            workload,
            machine: base.machine,
            fast_cores: base.fast_cores,
            scheduler: "fifo".to_string(),
            estimator: "none".to_string(),
            accel: "static-hetero".to_string(),
            params: None,
            costs: base.costs,
            idle_to_halt: base.idle_to_halt,
            idle_decel_delay: base.idle_decel_delay,
            wake_latency: base.wake_latency,
            power: base.power,
            trace: base.trace,
            seed: base.seed,
            backend: Backend::Sim,
        }
    }

    /// One of the six paper configurations by figure label (`"FIFO"`,
    /// `"CATS+BL"`, `"CATS+SA"`, `"CATA"`, `"CATA+RSU"`, `"TurboMode"`).
    pub fn preset(name: &str, fast_cores: usize, workload: WorkloadSpec) -> Result<Self, ExpError> {
        let cfg = match name {
            "FIFO" => RunConfig::fifo(fast_cores),
            "CATS+BL" => RunConfig::cats_bl(fast_cores),
            "CATS+SA" => RunConfig::cats_sa(fast_cores),
            "CATA" => RunConfig::cata(fast_cores),
            "CATA+RSU" => RunConfig::cata_rsu(fast_cores),
            "TurboMode" => RunConfig::turbo(fast_cores),
            other => return Err(ExpError::UnknownPreset(other.to_string())),
        };
        Ok(cfg.to_spec(workload))
    }

    /// All six paper configurations at one fast-core count, in figure
    /// order.
    pub fn paper_matrix(fast_cores: usize, workload: WorkloadSpec) -> Vec<Self> {
        RunConfig::paper_matrix(fast_cores)
            .into_iter()
            .map(|cfg| cfg.to_spec(workload.clone()))
            .collect()
    }

    /// The resolved policy parameters (missing → defaults).
    pub fn params_or_default(&self) -> PolicyParams {
        self.params.clone().unwrap_or_default()
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serializes")
    }

    /// Serializes to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a JSON spec.
    pub fn from_json(text: &str) -> Result<Self, ExpError> {
        serde_json::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Serializes to TOML.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("spec serializes")
    }

    /// Parses a TOML spec.
    pub fn from_toml(text: &str) -> Result<Self, ExpError> {
        toml::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Basic structural validation (a usable machine, budget ≤ cores,
    /// non-empty keys).
    pub fn validate(&self) -> Result<(), ExpError> {
        if self.machine.num_cores == 0 {
            return Err(ExpError::InvalidSpec(
                "machine.num_cores must be at least 1".to_string(),
            ));
        }
        if self.fast_cores > self.machine.num_cores {
            return Err(ExpError::InvalidSpec(format!(
                "fast_cores {} exceeds machine size {}",
                self.fast_cores, self.machine.num_cores
            )));
        }
        for (what, key) in [
            ("scheduler", &self.scheduler),
            ("estimator", &self.estimator),
            ("accel", &self.accel),
        ] {
            if key.is_empty() {
                return Err(ExpError::InvalidSpec(format!("empty {what} key")));
            }
        }
        Ok(())
    }

    /// Shrinks the machine for unit tests (mirrors
    /// [`RunConfig::with_small_machine`]).
    pub fn with_small_machine(mut self, n: usize, fast: usize) -> Self {
        self.machine = MachineConfig::small_test(n);
        self.fast_cores = fast;
        self
    }

    /// Enables full event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceMode::Full;
        self
    }

    /// Selects an explicit trace collection mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Replaces the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_carry_registry_keys() {
        let w = WorkloadSpec::ForkJoin {
            waves: 2,
            width: 4,
            cycles: 1000,
        };
        let specs = ScenarioSpec::paper_matrix(8, w);
        let keys: Vec<(&str, &str, &str)> = specs
            .iter()
            .map(|s| (s.scheduler.as_str(), s.estimator.as_str(), s.accel.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("fifo", "none", "static-hetero"),
                ("cats", "bottom-level", "static-hetero"),
                ("cats", "static-annotations", "static-hetero"),
                ("cats-homogeneous", "static-annotations", "software-cata"),
                ("cats-homogeneous", "static-annotations", "rsu"),
                ("fifo", "none", "turbo"),
            ]
        );
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let err = ScenarioSpec::preset("CATS+XL", 8, w).unwrap_err();
        assert!(matches!(err, ExpError::UnknownPreset(_)));
    }

    #[test]
    fn json_and_toml_round_trip() {
        let w = WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, 42);
        let spec = ScenarioSpec::preset("CATA", 16, w).unwrap().with_trace();
        let json = spec.to_json_pretty();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
        let toml_text = spec.to_toml();
        assert_eq!(ScenarioSpec::from_toml(&toml_text).unwrap(), spec);
    }

    #[test]
    fn sim_specs_omit_backend_and_legacy_specs_parse() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let sim = ScenarioSpec::preset("CATA", 8, w.clone()).unwrap();
        assert_eq!(sim.backend, Backend::Sim);
        let json = sim.to_json();
        assert!(
            !json.contains("backend"),
            "sim specs must keep the pre-backend layout (digest stability): {json}"
        );
        // A legacy spec (no backend key) parses as sim.
        let parsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(parsed.backend, Backend::Sim);
        assert_eq!(parsed, sim);

        let native = sim.clone().with_backend(Backend::Native);
        let njson = native.to_json();
        assert!(njson.contains("\"backend\":\"native\""), "{njson}");
        assert_eq!(ScenarioSpec::from_json(&njson).unwrap(), native);
        let ntoml = native.to_toml();
        assert_eq!(ScenarioSpec::from_toml(&ntoml).unwrap(), native);
        // The backend is part of the cell identity.
        assert_ne!(json, njson);
    }

    #[test]
    fn cost_estimate_is_deterministic_and_scales() {
        let small = WorkloadSpec::Parsec {
            bench: Benchmark::Dedup,
            scale: Scale::Small,
            seed: 1,
        };
        let paper = WorkloadSpec::Parsec {
            bench: Benchmark::Dedup,
            scale: Scale::Paper,
            seed: 1,
        };
        assert!(paper.cost_estimate() > small.cost_estimate());
        assert_eq!(small.cost_estimate(), small.cost_estimate());
        assert_eq!(WorkloadSpec::Chain { n: 10, cycles: 7 }.cost_estimate(), 70);
    }

    #[test]
    fn validation_rejects_oversized_budget() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let mut spec = ScenarioSpec::new("bad", w);
        spec.fast_cores = spec.machine.num_cores + 1;
        assert!(matches!(spec.validate(), Err(ExpError::InvalidSpec(_))));
    }
}
