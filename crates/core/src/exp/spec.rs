//! `ScenarioSpec`: the complete, serializable description of one run.
//!
//! A spec names *everything* a run depends on — machine, workload,
//! scheduler/estimator/accel registry keys, policy parameters, runtime
//! costs, and the seed — so a run is reproducible from its serialized form
//! alone. JSON and TOML render the same structure.

use super::error::ExpError;
use crate::config::{RunConfig, RuntimeCosts};
use cata_cpufreq::software_path::SoftwarePathParams;
use cata_power::PowerParams;
use cata_sim::machine::MachineConfig;
use cata_sim::time::SimDuration;
use cata_sim::trace::TraceMode;
use cata_tdg::TaskGraph;
use cata_workloads::{generate, micro, Benchmark, Scale};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, OnceLock};

/// The workload a scenario runs: a PARSECSs-shaped generator or one of the
/// micro-graphs, with every generation parameter pinned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One of the paper's six benchmarks at a given scale and seed.
    Parsec {
        /// The benchmark.
        bench: Benchmark,
        /// Generation scale.
        scale: Scale,
        /// Workload-generation seed.
        seed: u64,
    },
    /// A serial chain of `n` tasks of `cycles` each.
    Chain {
        /// Task count.
        n: usize,
        /// Cycles per task.
        cycles: u64,
    },
    /// `waves` fork-join waves of `width` tasks of `cycles` each.
    ForkJoin {
        /// Wave count.
        waves: usize,
        /// Tasks per wave.
        width: usize,
        /// Cycles per task.
        cycles: u64,
    },
    /// A diamond whose first branch is `skew`× longer (paper Figure 1).
    SkewedDiamond {
        /// Branch count.
        width: usize,
        /// Cycles per normal branch.
        cycles: u64,
        /// Length multiplier of the critical branch.
        skew: u64,
    },
    /// A random DAG (see `cata_workloads::micro::random_dag`).
    RandomDag {
        /// Task count.
        n: usize,
        /// Edge probability.
        edge_p: f64,
        /// Minimum task cycles.
        min_cycles: u64,
        /// Maximum task cycles.
        max_cycles: u64,
        /// Generation seed.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// The default paper workload: one benchmark at one scale with the
    /// bench harness's fixed seed.
    pub fn parsec(bench: Benchmark, scale: Scale, seed: u64) -> Self {
        WorkloadSpec::Parsec { bench, scale, seed }
    }

    /// Generates the task graph this spec describes (deterministic).
    pub fn build_graph(&self) -> TaskGraph {
        match *self {
            WorkloadSpec::Parsec { bench, scale, seed } => generate(bench, scale, seed),
            WorkloadSpec::Chain { n, cycles } => micro::chain(n, cycles),
            WorkloadSpec::ForkJoin {
                waves,
                width,
                cycles,
            } => micro::fork_join(waves, width, cycles),
            WorkloadSpec::SkewedDiamond {
                width,
                cycles,
                skew,
            } => micro::skewed_diamond(width, cycles, skew),
            WorkloadSpec::RandomDag {
                n,
                edge_p,
                min_cycles,
                max_cycles,
                seed,
            } => micro::random_dag(n, edge_p, min_cycles, max_cycles, seed),
        }
    }

    /// Like [`build_graph`](Self::build_graph), but memoized process-wide
    /// behind an `Arc`: matrices and sweeps run the same workload under
    /// many configurations, and generation is deterministic, so identical
    /// specs share one graph. The cache is small and FIFO-evicted; misses
    /// just regenerate.
    pub fn build_graph_shared(&self) -> Arc<TaskGraph> {
        type GraphCache = Mutex<Vec<(String, Arc<TaskGraph>)>>;
        const CAP: usize = 32;
        static CACHE: OnceLock<GraphCache> = OnceLock::new();
        let key = serde_json::to_string(self).expect("workload spec serializes");
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        {
            let entries = cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((_, graph)) = entries.iter().find(|(k, _)| *k == key) {
                return Arc::clone(graph);
            }
        }
        // Generate outside the lock so distinct workloads build in
        // parallel; a racing duplicate is deterministic and harmless.
        let graph = Arc::new(self.build_graph());
        let mut entries = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, cached)) = entries.iter().find(|(k, _)| *k == key) {
            return Arc::clone(cached);
        }
        if entries.len() >= CAP {
            entries.remove(0);
        }
        entries.push((key, Arc::clone(&graph)));
        graph
    }

    /// The workload label used in reports.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Parsec { bench, .. } => bench.name().to_string(),
            WorkloadSpec::Chain { n, .. } => format!("chain-{n}"),
            WorkloadSpec::ForkJoin { waves, width, .. } => format!("forkjoin-{waves}x{width}"),
            WorkloadSpec::SkewedDiamond { width, .. } => format!("diamond-{width}"),
            WorkloadSpec::RandomDag { n, .. } => format!("randdag-{n}"),
        }
    }
}

/// Parameters consumed by policy factories. Every field is optional; a
/// factory falls back to the paper's defaults for missing values, so specs
/// only mention what they change.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Bottom-level criticality threshold fraction (default 1.0 = CATS).
    pub alpha: Option<f64>,
    /// Latency parameters of the software reconfiguration path (default:
    /// the paper calibration).
    pub software_path: Option<SoftwarePathParams>,
}

impl PolicyParams {
    /// The BL threshold, defaulted.
    pub fn alpha_or_default(&self) -> f64 {
        self.alpha.unwrap_or(1.0)
    }

    /// The software-path latencies, defaulted.
    pub fn software_path_or_default(&self) -> SoftwarePathParams {
        self.software_path
            .unwrap_or_else(SoftwarePathParams::paper_calibrated)
    }
}

/// A complete description of one experimental run.
///
/// `scheduler`, `estimator` and `accel` are string keys resolved through
/// [`PolicyRegistries`](super::registry::PolicyRegistries); the six paper
/// configurations are pre-registered, and third-party policies resolve the
/// same way without touching any core enum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Configuration label for reports ("FIFO", "CATA+RSU", …).
    pub name: String,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// The machine (Table I by default).
    pub machine: MachineConfig,
    /// Static fast-core count *and* dynamic power budget.
    pub fast_cores: usize,
    /// Scheduler registry key (e.g. "fifo", "cats", "cats-homogeneous").
    pub scheduler: String,
    /// Estimator registry key (e.g. "none", "static-annotations",
    /// "bottom-level").
    pub estimator: String,
    /// Acceleration-manager registry key (e.g. "static-hetero",
    /// "software-cata", "rsu", "turbo").
    pub accel: String,
    /// Policy parameters; omitted values fall back to paper defaults.
    pub params: Option<PolicyParams>,
    /// Runtime cost constants.
    pub costs: RuntimeCosts,
    /// Idle→halt OS timeout (TurboMode only in the paper matrix).
    pub idle_to_halt: Option<SimDuration>,
    /// Idle deceleration debounce (§V-B).
    pub idle_decel_delay: SimDuration,
    /// C1-exit latency.
    pub wake_latency: SimDuration,
    /// Power model calibration.
    pub power: PowerParams,
    /// Trace collection mode (off by default, and the right setting for
    /// suites: nobody reads a per-run trace in a million-run sweep).
    pub trace: TraceMode,
    /// Seed of the run's deterministic RNG.
    pub seed: u64,
}

/// The six paper configuration labels, in figure order — the canonical
/// list behind [`ScenarioSpec::preset`], `repro preset`, and the
/// unknown-preset error message.
pub const PAPER_PRESETS: [&str; 6] = [
    "FIFO",
    "CATS+BL",
    "CATS+SA",
    "CATA",
    "CATA+RSU",
    "TurboMode",
];

impl ScenarioSpec {
    /// A spec running `workload` with every other knob at the FIFO-baseline
    /// defaults; use the builder or the presets for the paper matrix.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        let base = RunConfig::fifo(16);
        ScenarioSpec {
            name: name.into(),
            workload,
            machine: base.machine,
            fast_cores: base.fast_cores,
            scheduler: "fifo".to_string(),
            estimator: "none".to_string(),
            accel: "static-hetero".to_string(),
            params: None,
            costs: base.costs,
            idle_to_halt: base.idle_to_halt,
            idle_decel_delay: base.idle_decel_delay,
            wake_latency: base.wake_latency,
            power: base.power,
            trace: base.trace,
            seed: base.seed,
        }
    }

    /// One of the six paper configurations by figure label (`"FIFO"`,
    /// `"CATS+BL"`, `"CATS+SA"`, `"CATA"`, `"CATA+RSU"`, `"TurboMode"`).
    pub fn preset(name: &str, fast_cores: usize, workload: WorkloadSpec) -> Result<Self, ExpError> {
        let cfg = match name {
            "FIFO" => RunConfig::fifo(fast_cores),
            "CATS+BL" => RunConfig::cats_bl(fast_cores),
            "CATS+SA" => RunConfig::cats_sa(fast_cores),
            "CATA" => RunConfig::cata(fast_cores),
            "CATA+RSU" => RunConfig::cata_rsu(fast_cores),
            "TurboMode" => RunConfig::turbo(fast_cores),
            other => return Err(ExpError::UnknownPreset(other.to_string())),
        };
        Ok(cfg.to_spec(workload))
    }

    /// All six paper configurations at one fast-core count, in figure
    /// order.
    pub fn paper_matrix(fast_cores: usize, workload: WorkloadSpec) -> Vec<Self> {
        RunConfig::paper_matrix(fast_cores)
            .into_iter()
            .map(|cfg| cfg.to_spec(workload.clone()))
            .collect()
    }

    /// The resolved policy parameters (missing → defaults).
    pub fn params_or_default(&self) -> PolicyParams {
        self.params.clone().unwrap_or_default()
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serializes")
    }

    /// Serializes to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a JSON spec.
    pub fn from_json(text: &str) -> Result<Self, ExpError> {
        serde_json::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Serializes to TOML.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("spec serializes")
    }

    /// Parses a TOML spec.
    pub fn from_toml(text: &str) -> Result<Self, ExpError> {
        toml::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Basic structural validation (a usable machine, budget ≤ cores,
    /// non-empty keys).
    pub fn validate(&self) -> Result<(), ExpError> {
        if self.machine.num_cores == 0 {
            return Err(ExpError::InvalidSpec(
                "machine.num_cores must be at least 1".to_string(),
            ));
        }
        if self.fast_cores > self.machine.num_cores {
            return Err(ExpError::InvalidSpec(format!(
                "fast_cores {} exceeds machine size {}",
                self.fast_cores, self.machine.num_cores
            )));
        }
        for (what, key) in [
            ("scheduler", &self.scheduler),
            ("estimator", &self.estimator),
            ("accel", &self.accel),
        ] {
            if key.is_empty() {
                return Err(ExpError::InvalidSpec(format!("empty {what} key")));
            }
        }
        Ok(())
    }

    /// Shrinks the machine for unit tests (mirrors
    /// [`RunConfig::with_small_machine`]).
    pub fn with_small_machine(mut self, n: usize, fast: usize) -> Self {
        self.machine = MachineConfig::small_test(n);
        self.fast_cores = fast;
        self
    }

    /// Enables full event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceMode::Full;
        self
    }

    /// Selects an explicit trace collection mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Replaces the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_carry_registry_keys() {
        let w = WorkloadSpec::ForkJoin {
            waves: 2,
            width: 4,
            cycles: 1000,
        };
        let specs = ScenarioSpec::paper_matrix(8, w);
        let keys: Vec<(&str, &str, &str)> = specs
            .iter()
            .map(|s| (s.scheduler.as_str(), s.estimator.as_str(), s.accel.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("fifo", "none", "static-hetero"),
                ("cats", "bottom-level", "static-hetero"),
                ("cats", "static-annotations", "static-hetero"),
                ("cats-homogeneous", "static-annotations", "software-cata"),
                ("cats-homogeneous", "static-annotations", "rsu"),
                ("fifo", "none", "turbo"),
            ]
        );
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let err = ScenarioSpec::preset("CATS+XL", 8, w).unwrap_err();
        assert!(matches!(err, ExpError::UnknownPreset(_)));
    }

    #[test]
    fn json_and_toml_round_trip() {
        let w = WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, 42);
        let spec = ScenarioSpec::preset("CATA", 16, w).unwrap().with_trace();
        let json = spec.to_json_pretty();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
        let toml_text = spec.to_toml();
        assert_eq!(ScenarioSpec::from_toml(&toml_text).unwrap(), spec);
    }

    #[test]
    fn validation_rejects_oversized_budget() {
        let w = WorkloadSpec::Chain { n: 2, cycles: 10 };
        let mut spec = ScenarioSpec::new("bad", w);
        spec.fast_cores = spec.machine.num_cores + 1;
        assert!(matches!(spec.validate(), Err(ExpError::InvalidSpec(_))));
    }
}
