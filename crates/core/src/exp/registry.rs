//! String-keyed registries of policy factories.
//!
//! The experiment facade resolves the three policy dimensions of a
//! [`ScenarioSpec`](super::spec::ScenarioSpec) — scheduler, criticality
//! estimator, acceleration manager — through these registries instead of
//! matching on closed enums. The six paper configurations are
//! pre-registered under [`PolicyRegistries::with_builtins`]; third-party
//! policies register a factory closure under a new key and immediately work
//! with every executor, the suite runner, and the bench harness, without
//! touching `cata-core`'s enums (which remain as thin wrappers resolving
//! through these same registries).

use super::error::ExpError;
use super::spec::PolicyParams;
use crate::accel::{AccelManager, RsuCata, SoftwareCata, StaticAccel, TurboModeCtl};
use crate::policy::{CatsPolicy, FifoPolicy, SchedulerPolicy};
use cata_sim::machine::{Machine, MachineConfig};
use cata_sim::EventBackend;
use cata_tdg::criticality::{BottomLevelEstimator, CriticalityEstimator, StaticAnnotations};
use cata_tdg::{TaskGraph, TaskId};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Estimator for configurations that ignore criticality: every task is
/// non-critical (FIFO's single queue; TurboMode).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllNonCritical;

impl CriticalityEstimator for AllNonCritical {
    fn name(&self) -> &'static str {
        "none"
    }
    fn classify(&mut self, _graph: &TaskGraph, _task: TaskId) -> bool {
        false
    }
}

/// Everything a policy factory may consult while constructing its policy.
pub struct FactoryCtx<'a> {
    /// The already-constructed machine of the run.
    pub machine: &'a Machine,
    /// Per-core static speed class (all-true on homogeneous machines).
    pub is_fast_static: &'a [bool],
    /// Fast-core count / power budget.
    pub fast_cores: usize,
    /// The run seed (e.g. TurboMode's victim picks).
    pub seed: u64,
    /// Policy parameters from the spec.
    pub params: &'a PolicyParams,
}

type SchedFactory =
    dyn Fn(&FactoryCtx<'_>) -> Result<Box<dyn SchedulerPolicy>, ExpError> + Send + Sync;
type EstFactory =
    dyn Fn(&FactoryCtx<'_>) -> Result<Box<dyn CriticalityEstimator>, ExpError> + Send + Sync;
type AccelFactory =
    dyn Fn(&FactoryCtx<'_>) -> Result<Box<dyn AccelManager>, ExpError> + Send + Sync;

/// Capabilities and dispatch metadata of a registered policy — the struct
/// the registry's former loose `prefer_fast`/`static_hetero` bools grew
/// into once replayed-graph dispatch became a second consumer. A scheduler
/// entry contributes `prefer_fast`, an accel entry `static_hetero`;
/// [`PolicyRegistries::resolve`] merges both into the single
/// [`ResolvedPolicies::caps`] every executor reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyCaps {
    /// The executor's dispatch loop should offer idle *fast* cores first
    /// (CATS exploits core speeds; FIFO is blind).
    pub prefer_fast: bool,
    /// The machine is built with statically heterogeneous cores (the
    /// first `fast_cores` run fast permanently; no reconfiguration).
    pub static_hetero: bool,
}

impl PolicyCaps {
    /// Scheduler-side caps: only the dispatch preference is meaningful.
    pub fn scheduler(prefer_fast: bool) -> Self {
        PolicyCaps {
            prefer_fast,
            ..Default::default()
        }
    }

    /// Accel-side caps: only the machine build is meaningful.
    pub fn accel(static_hetero: bool) -> Self {
        PolicyCaps {
            static_hetero,
            ..Default::default()
        }
    }
}

/// A registered scheduler: factory plus dispatch metadata.
#[derive(Clone)]
pub struct SchedulerEntry {
    factory: Arc<SchedFactory>,
    /// Dispatch capabilities (only `prefer_fast` is scheduler-owned).
    pub caps: PolicyCaps,
}

/// A registered estimator.
#[derive(Clone)]
pub struct EstimatorEntry {
    factory: Arc<EstFactory>,
}

/// A registered acceleration manager: factory plus machine metadata.
#[derive(Clone)]
pub struct AccelEntry {
    factory: Arc<AccelFactory>,
    /// Machine-build capabilities (only `static_hetero` is accel-owned).
    pub caps: PolicyCaps,
}

/// The three policy registries of the experiment facade.
#[derive(Clone)]
pub struct PolicyRegistries {
    schedulers: BTreeMap<String, SchedulerEntry>,
    estimators: BTreeMap<String, EstimatorEntry>,
    accels: BTreeMap<String, AccelEntry>,
}

impl PolicyRegistries {
    /// Empty registries (useful for fully custom matrices).
    pub fn empty() -> Self {
        PolicyRegistries {
            schedulers: BTreeMap::new(),
            estimators: BTreeMap::new(),
            accels: BTreeMap::new(),
        }
    }

    /// Registries pre-loaded with every policy of the paper's comparison
    /// matrix:
    ///
    /// | kind | keys |
    /// |---|---|
    /// | scheduler | `fifo`, `cats`, `cats-homogeneous` |
    /// | estimator | `none`, `static-annotations`, `bottom-level` |
    /// | accel | `static-hetero`, `software-cata`, `rsu`, `turbo` |
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register_scheduler("fifo", false, |_ctx| Ok(Box::new(FifoPolicy::new())));
        r.register_scheduler("cats", true, |ctx| {
            Ok(Box::new(CatsPolicy::new(ctx.is_fast_static)))
        });
        r.register_scheduler("cats-homogeneous", true, |ctx| {
            Ok(Box::new(CatsPolicy::homogeneous(ctx.machine.num_cores())))
        });

        r.register_estimator("none", |_ctx| Ok(Box::new(AllNonCritical)));
        r.register_estimator("static-annotations", |_ctx| Ok(Box::new(StaticAnnotations)));
        r.register_estimator("bottom-level", |ctx| {
            let alpha = ctx.params.alpha_or_default();
            if !(alpha > 0.0 && alpha <= 1.0) {
                return Err(ExpError::InvalidSpec(format!(
                    "bottom-level alpha must be in (0, 1], got {alpha}"
                )));
            }
            Ok(Box::new(BottomLevelEstimator::with_alpha(alpha)))
        });

        r.register_accel("static-hetero", true, |_ctx| Ok(Box::new(StaticAccel)));
        r.register_accel("software-cata", false, |ctx| {
            Ok(Box::new(SoftwareCata::new(
                ctx.machine,
                ctx.fast_cores,
                ctx.params.software_path_or_default(),
            )))
        });
        r.register_accel("rsu", false, |ctx| {
            Ok(Box::new(RsuCata::new(ctx.machine, ctx.fast_cores)))
        });
        r.register_accel("turbo", false, |ctx| {
            Ok(Box::new(TurboModeCtl::new(
                ctx.machine,
                ctx.fast_cores,
                ctx.seed,
            )))
        });
        r
    }

    /// Registers (or replaces) a scheduler factory under `key`.
    /// `prefer_fast` tells the dispatch loop to offer idle fast cores
    /// first.
    pub fn register_scheduler(
        &mut self,
        key: impl Into<String>,
        prefer_fast: bool,
        factory: impl Fn(&FactoryCtx<'_>) -> Result<Box<dyn SchedulerPolicy>, ExpError>
            + Send
            + Sync
            + 'static,
    ) {
        self.schedulers.insert(
            key.into(),
            SchedulerEntry {
                factory: Arc::new(factory),
                caps: PolicyCaps::scheduler(prefer_fast),
            },
        );
    }

    /// Registers (or replaces) an estimator factory under `key`.
    pub fn register_estimator(
        &mut self,
        key: impl Into<String>,
        factory: impl Fn(&FactoryCtx<'_>) -> Result<Box<dyn CriticalityEstimator>, ExpError>
            + Send
            + Sync
            + 'static,
    ) {
        self.estimators.insert(
            key.into(),
            EstimatorEntry {
                factory: Arc::new(factory),
            },
        );
    }

    /// Registers (or replaces) an acceleration-manager factory under `key`.
    /// `static_hetero` selects the statically heterogeneous machine build.
    pub fn register_accel(
        &mut self,
        key: impl Into<String>,
        static_hetero: bool,
        factory: impl Fn(&FactoryCtx<'_>) -> Result<Box<dyn AccelManager>, ExpError>
            + Send
            + Sync
            + 'static,
    ) {
        self.accels.insert(
            key.into(),
            AccelEntry {
                factory: Arc::new(factory),
                caps: PolicyCaps::accel(static_hetero),
            },
        );
    }

    /// The registered scheduler keys, sorted.
    pub fn scheduler_keys(&self) -> Vec<String> {
        self.schedulers.keys().cloned().collect()
    }

    /// The registered estimator keys, sorted.
    pub fn estimator_keys(&self) -> Vec<String> {
        self.estimators.keys().cloned().collect()
    }

    /// The registered acceleration-manager keys, sorted.
    pub fn accel_keys(&self) -> Vec<String> {
        self.accels.keys().cloned().collect()
    }

    /// Constructs a scheduler policy by key (trait-object path).
    pub fn build_scheduler(
        &self,
        key: &str,
        ctx: &FactoryCtx<'_>,
    ) -> Result<Box<dyn SchedulerPolicy>, ExpError> {
        let entry = self
            .schedulers
            .get(key)
            .ok_or_else(|| ExpError::UnknownScheduler {
                key: key.to_string(),
                known: self.scheduler_keys(),
            })?;
        (entry.factory)(ctx)
    }

    /// Constructs a criticality estimator by key (trait-object path).
    pub fn build_estimator(
        &self,
        key: &str,
        ctx: &FactoryCtx<'_>,
    ) -> Result<Box<dyn CriticalityEstimator>, ExpError> {
        let entry = self
            .estimators
            .get(key)
            .ok_or_else(|| ExpError::UnknownEstimator {
                key: key.to_string(),
                known: self.estimator_keys(),
            })?;
        (entry.factory)(ctx)
    }

    /// Constructs an acceleration manager by key (trait-object path).
    pub fn build_accel(
        &self,
        key: &str,
        ctx: &FactoryCtx<'_>,
    ) -> Result<Box<dyn AccelManager>, ExpError> {
        let entry = self.accels.get(key).ok_or_else(|| ExpError::UnknownAccel {
            key: key.to_string(),
            known: self.accel_keys(),
        })?;
        (entry.factory)(ctx)
    }

    /// The dispatch metadata of a scheduler key.
    pub fn scheduler_entry(&self, key: &str) -> Result<&SchedulerEntry, ExpError> {
        self.schedulers
            .get(key)
            .ok_or_else(|| ExpError::UnknownScheduler {
                key: key.to_string(),
                known: self.scheduler_keys(),
            })
    }

    /// The machine metadata of an acceleration-manager key.
    pub fn accel_entry(&self, key: &str) -> Result<&AccelEntry, ExpError> {
        self.accels.get(key).ok_or_else(|| ExpError::UnknownAccel {
            key: key.to_string(),
            known: self.accel_keys(),
        })
    }

    /// Resolves a full policy triple into engine-ready parts: builds the
    /// machine (honoring the accel entry's `static_hetero`), then each
    /// policy through its factory.
    pub fn resolve(
        &self,
        keys: &PolicyKeys,
        machine_cfg: &MachineConfig,
        fast_cores: usize,
        seed: u64,
        params: &PolicyParams,
    ) -> Result<ResolvedPolicies, ExpError> {
        let n_cores = machine_cfg.num_cores;
        if fast_cores > n_cores {
            return Err(ExpError::InvalidSpec(format!(
                "fast_cores {fast_cores} exceeds machine size {n_cores}"
            )));
        }
        let accel_entry = self.accel_entry(&keys.accel)?;
        let sched_entry = self.scheduler_entry(&keys.scheduler)?;
        // The merged capability view: scheduler dispatch preference plus
        // accel machine build, in one struct.
        let caps = PolicyCaps {
            prefer_fast: sched_entry.caps.prefer_fast,
            static_hetero: accel_entry.caps.static_hetero,
        };
        let static_hetero = caps.static_hetero;
        let machine = if static_hetero {
            Machine::new_static_hetero(machine_cfg.clone(), fast_cores)
        } else {
            Machine::new(machine_cfg.clone())
        };
        let is_fast_static: Vec<bool> = (0..n_cores)
            .map(|i| !static_hetero || i < fast_cores)
            .collect();
        let ctx = FactoryCtx {
            machine: &machine,
            is_fast_static: &is_fast_static,
            fast_cores,
            seed,
            params,
        };
        let policy = self.build_scheduler(&keys.scheduler, &ctx)?;
        let estimator = self.build_estimator(&keys.estimator, &ctx)?;
        let accel = self.build_accel(&keys.accel, &ctx)?;
        Ok(ResolvedPolicies {
            policy,
            estimator,
            accel,
            machine,
            is_fast_static,
            caps,
        })
    }
}

impl Default for PolicyRegistries {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl std::fmt::Debug for PolicyRegistries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistries")
            .field("schedulers", &self.scheduler_keys())
            .field("estimators", &self.estimator_keys())
            .field("accels", &self.accel_keys())
            .finish()
    }
}

/// The policy triple of a run, as registry keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyKeys {
    /// Scheduler key.
    pub scheduler: String,
    /// Estimator key.
    pub estimator: String,
    /// Acceleration-manager key.
    pub accel: String,
}

/// Engine-ready resolution output: the constructed machine and the three
/// boxed policies.
pub struct ResolvedPolicies {
    /// The ready-queue policy.
    pub policy: Box<dyn SchedulerPolicy>,
    /// The criticality estimator.
    pub estimator: Box<dyn CriticalityEstimator>,
    /// The acceleration manager.
    pub accel: Box<dyn AccelManager>,
    /// The constructed machine.
    pub machine: Machine,
    /// Per-core static speed class.
    pub is_fast_static: Vec<bool>,
    /// Merged policy capabilities (dispatch preference + machine build).
    pub caps: PolicyCaps,
}

impl std::fmt::Debug for ResolvedPolicies {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedPolicies")
            .field("policy", &self.policy.name())
            .field("estimator", &self.estimator.name())
            .field("accel", &self.accel.name())
            .field("caps", &self.caps)
            .finish_non_exhaustive()
    }
}

/// The process-wide default registries (builtins only). Scenarios without
/// explicit registries resolve through these.
pub fn default_registries() -> &'static Arc<PolicyRegistries> {
    static DEFAULT: OnceLock<Arc<PolicyRegistries>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(PolicyRegistries::with_builtins()))
}

/// String-keyed registry of event-queue backends — the same family shape
/// as the scheduler/admission/recovery registries, resolving
/// [`ScenarioSpec::event_queue`](super::spec::ScenarioSpec::event_queue).
/// The backends themselves live in `cata_sim` behind the
/// [`EventSource`](cata_sim::EventSource) trait; the registry maps spec
/// keys (and third-party aliases) onto them.
pub struct EventQueueRegistry {
    entries: BTreeMap<String, EventBackend>,
}

impl EventQueueRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        EventQueueRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry with every built-in backend under its canonical name.
    pub fn with_builtins() -> Self {
        let mut r = EventQueueRegistry::empty();
        for backend in EventBackend::ALL {
            r.register(backend.name(), backend);
        }
        r
    }

    /// Registers (or re-aliases) `backend` under `key`.
    pub fn register(&mut self, key: impl Into<String>, backend: EventBackend) {
        self.entries.insert(key.into(), backend);
    }

    /// Registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// The backend registered under `key`.
    pub fn resolve(&self, key: &str) -> Result<EventBackend, ExpError> {
        self.entries
            .get(key)
            .copied()
            .ok_or_else(|| ExpError::UnknownEventQueue {
                key: key.to_string(),
                known: self.keys(),
            })
    }

    /// Resolves a spec's optional key: `None` (the omitted-when-default
    /// serialized form) selects the engine default backend.
    pub fn resolve_spec(&self, key: Option<&str>) -> Result<EventBackend, ExpError> {
        match key {
            Some(k) => self.resolve(k),
            None => Ok(cata_sim::event::default_backend()),
        }
    }
}

impl std::fmt::Debug for EventQueueRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueueRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

/// The process-wide default event-queue registry (builtins only).
pub fn default_event_queue_registry() -> &'static EventQueueRegistry {
    static REG: OnceLock<EventQueueRegistry> = OnceLock::new();
    REG.get_or_init(EventQueueRegistry::with_builtins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_less_resolve(keys: PolicyKeys) -> Result<ResolvedPolicies, ExpError> {
        PolicyRegistries::with_builtins().resolve(
            &keys,
            &MachineConfig::small_test(4),
            2,
            7,
            &PolicyParams::default(),
        )
    }

    #[test]
    fn builtin_keys_resolve() {
        for (s, e, a) in [
            ("fifo", "none", "static-hetero"),
            ("cats", "bottom-level", "static-hetero"),
            ("cats", "static-annotations", "static-hetero"),
            ("cats-homogeneous", "static-annotations", "software-cata"),
            ("cats-homogeneous", "static-annotations", "rsu"),
            ("fifo", "none", "turbo"),
        ] {
            let r = ctx_less_resolve(PolicyKeys {
                scheduler: s.into(),
                estimator: e.into(),
                accel: a.into(),
            })
            .unwrap_or_else(|err| panic!("{s}/{e}/{a}: {err}"));
            assert_eq!(r.is_fast_static.len(), 4);
        }
    }

    #[test]
    fn unknown_keys_name_the_alternatives() {
        let err = ctx_less_resolve(PolicyKeys {
            scheduler: "fifo".into(),
            estimator: "none".into(),
            accel: "warp-drive".into(),
        })
        .unwrap_err();
        match err {
            ExpError::UnknownAccel { key, known } => {
                assert_eq!(key, "warp-drive");
                assert!(known.contains(&"software-cata".to_string()));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn bad_alpha_is_rejected_at_resolution() {
        let err = PolicyRegistries::with_builtins()
            .resolve(
                &PolicyKeys {
                    scheduler: "cats".into(),
                    estimator: "bottom-level".into(),
                    accel: "static-hetero".into(),
                },
                &MachineConfig::small_test(4),
                2,
                7,
                &PolicyParams {
                    alpha: Some(0.0),
                    software_path: None,
                },
            )
            .unwrap_err();
        assert!(matches!(err, ExpError::InvalidSpec(_)));
    }

    #[test]
    fn event_queue_builtins_resolve() {
        let r = EventQueueRegistry::with_builtins();
        assert_eq!(r.resolve("heap").unwrap(), EventBackend::Heap);
        assert_eq!(
            r.resolve("calendar-wheel").unwrap(),
            EventBackend::CalendarWheel
        );
        // The omitted-when-default spec form selects the engine default.
        assert_eq!(
            r.resolve_spec(None).unwrap(),
            cata_sim::event::default_backend()
        );
        assert_eq!(r.resolve_spec(Some("heap")).unwrap(), EventBackend::Heap);
    }

    #[test]
    fn unknown_event_queue_names_the_alternatives() {
        let err = EventQueueRegistry::with_builtins()
            .resolve("fibonacci-heap")
            .unwrap_err();
        match err {
            ExpError::UnknownEventQueue { key, known } => {
                assert_eq!(key, "fibonacci-heap");
                assert_eq!(known, vec!["calendar-wheel", "heap"]);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn event_queue_aliases_register() {
        let mut r = EventQueueRegistry::with_builtins();
        r.register("wheel", EventBackend::CalendarWheel);
        assert_eq!(r.resolve("wheel").unwrap(), EventBackend::CalendarWheel);
        assert_eq!(r.keys(), vec!["calendar-wheel", "heap", "wheel"]);
    }
}
