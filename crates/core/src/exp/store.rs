//! `ResultsStore`: a JSONL store of completed suite cells.
//!
//! The paper's evaluation is a large configuration matrix, and a suite of
//! thousands of cells should not live or die inside one process. The store
//! streams every completed cell to disk as one self-contained JSON line (a
//! [`CellRecord`]) the moment it finishes:
//!
//! - **Atomic append**: each record is serialized into one buffer ending in
//!   `\n` and written with a single `write_all` on an `O_APPEND` handle, so
//!   concurrent workers (and even concurrent processes sharding one grid
//!   into separate files) never interleave partial lines.
//! - **Resume**: [`Suite::run_with_store`](super::suite::Suite::run_with_store)
//!   loads an existing store, skips every cell whose `(index, spec_digest)`
//!   is already present, and executes only the remainder. A torn trailing
//!   line — the signature of a killed writer — is detected on open and
//!   truncated away, so a crashed sweep resumes cleanly.
//! - **Sharding**: [`Suite::shard`](super::suite::Suite::shard) partitions
//!   the cell grid deterministically; each shard appends to its own file,
//!   and [`merge_files`](ResultsStore::merge_files) recombines them,
//!   validating schema and digests and rejecting conflicting duplicates.
//!
//! Because the engine is deterministic and `RunReport` serialization is
//! bit-exact (floats render in shortest round-trip form), a report loaded
//! from the store is indistinguishable from a freshly computed one — the
//! golden-digest and kill-and-resume tests pin exactly that.

use super::error::ExpError;
use super::spec::ScenarioSpec;
use crate::report::RunReport;
// The workspace-wide digest function: sharing TDG content digests' FNV-1a
// keeps every identity — spec, grid, graph — in one namespace by
// construction.
use cata_tdg::fnv1a_hex as fnv1a;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format tag carried by every record; bumped on breaking layout changes.
pub const STORE_SCHEMA: &str = "cata-results/v1";

/// Stable 64-bit digest (FNV-1a) of a spec's compact JSON form — the cell
/// identity the store keys on. Field order in the vendored serde is
/// declaration order, so the digest is deterministic across processes.
pub fn spec_digest(spec: &ScenarioSpec) -> String {
    fnv1a(spec.to_json().bytes())
}

/// Digest of a whole cell grid: the ordered `(index, spec_digest)` pairs.
/// Every shard of one grid records the *full* grid's digest (captured
/// before sharding), so the merger can tell shards of one experiment from
/// unrelated stores even when their cell indices never collide.
pub fn grid_digest<'a>(pairs: impl Iterator<Item = (u64, &'a str)>) -> String {
    let mut text = String::new();
    for (i, d) in pairs {
        text.push_str(&format!("{i}:{d};"));
    }
    fnv1a(text.bytes())
}

/// One completed suite cell, as stored on one JSONL line.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Format tag ([`STORE_SCHEMA`]).
    pub schema: String,
    /// Global index of the cell in the full (unsharded) grid.
    pub index: u64,
    /// Human-readable cell key (`label@workload/fN/backend`), for
    /// dashboards and error messages; identity is `(index, spec_digest)`
    /// (the digest also sees the backend: native specs serialize it).
    pub cell: String,
    /// Digest of the full (unsharded) grid this cell belongs to (see
    /// [`grid_digest`]) — the provenance tag the merger uses to flag
    /// accidental mixing of unrelated experiments.
    pub grid: String,
    /// Digest of the cell's [`ScenarioSpec`] (see [`spec_digest`]).
    pub spec_digest: String,
    /// The run seed the spec pinned.
    pub seed: u64,
    /// Wall-clock seconds the cell took to execute (workload generation
    /// is warmed outside the timed window, so this approximates engine
    /// time and stays comparable to the perf-harness summaries).
    pub wall_s: f64,
    /// The measured result.
    pub report: RunReport,
    /// Fingerprint of the executing host (see
    /// [`host_fingerprint`](super::progress::host_fingerprint)), so
    /// readers can refuse to treat cross-host wall times as one series.
    /// `None` — and skipped in the serialized form, so legacy stores stay
    /// byte-identical — on records written before this field existed.
    pub host: Option<String>,
    /// Wall-clock start of the execution, milliseconds since the Unix
    /// epoch. Observability metadata only (dashboard throughput/ETA
    /// columns); `None` and skipped on legacy records.
    pub started_unix_ms: Option<u64>,
    /// Wall-clock end of the execution, same convention as
    /// `started_unix_ms`.
    pub finished_unix_ms: Option<u64>,
    /// The full spec the cell executed, embedded so the record is
    /// replayable on the spot (`repro replay`) without the generating
    /// grid. `None` and skipped on legacy records — those replay only via
    /// an externally supplied spec matching `spec_digest`.
    pub spec: Option<ScenarioSpec>,
}

// Serde is hand-written (the vendored derive would emit `None` fields as
// `null`) so every optional field is *omitted* when absent: a legacy
// record loaded and re-serialized (merge --out, gc rewrite) stays
// byte-identical, and golden store fixtures never see the new fields.
impl Serialize for CellRecord {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("schema".into(), self.schema.to_value()),
            ("index".into(), self.index.to_value()),
            ("cell".into(), self.cell.to_value()),
            ("grid".into(), self.grid.to_value()),
            ("spec_digest".into(), self.spec_digest.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("wall_s".into(), self.wall_s.to_value()),
            ("report".into(), self.report.to_value()),
        ];
        if let Some(h) = &self.host {
            m.push(("host".into(), h.to_value()));
        }
        if let Some(ms) = self.started_unix_ms {
            m.push(("started_unix_ms".into(), ms.to_value()));
        }
        if let Some(ms) = self.finished_unix_ms {
            m.push(("finished_unix_ms".into(), ms.to_value()));
        }
        if let Some(spec) = &self.spec {
            m.push(("spec".into(), spec.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for CellRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("CellRecord")?;
        Ok(CellRecord {
            schema: serde::field(m, "schema", "CellRecord")?,
            index: serde::field(m, "index", "CellRecord")?,
            cell: serde::field(m, "cell", "CellRecord")?,
            grid: serde::field(m, "grid", "CellRecord")?,
            spec_digest: serde::field(m, "spec_digest", "CellRecord")?,
            seed: serde::field(m, "seed", "CellRecord")?,
            wall_s: serde::field(m, "wall_s", "CellRecord")?,
            report: serde::field(m, "report", "CellRecord")?,
            host: serde::field(m, "host", "CellRecord")?,
            started_unix_ms: serde::field(m, "started_unix_ms", "CellRecord")?,
            finished_unix_ms: serde::field(m, "finished_unix_ms", "CellRecord")?,
            spec: serde::field(m, "spec", "CellRecord")?,
        })
    }
}

impl CellRecord {
    /// Builds the record for one completed cell of the grid tagged
    /// `grid` (see [`grid_digest`]).
    pub fn new(
        index: u64,
        spec: &ScenarioSpec,
        grid: String,
        wall_s: f64,
        report: RunReport,
    ) -> Self {
        CellRecord {
            schema: STORE_SCHEMA.to_string(),
            index,
            // The workload name comes from the report, which carries the
            // label of the load that actually ran — `spec.workload.label()`
            // would re-read an unpinned TDG file here and could name a
            // *different revision* than the executed graph (and costs a
            // disk read per stored cell even when pinned).
            cell: format!(
                "{}@{}/f{}/{}",
                spec.name,
                report.workload,
                spec.fast_cores,
                spec.backend.name()
            ),
            grid,
            spec_digest: spec_digest(spec),
            seed: spec.seed,
            wall_s,
            report,
            host: None,
            started_unix_ms: None,
            finished_unix_ms: None,
            spec: None,
        }
    }

    /// Stamps the executing host's fingerprint onto the record.
    pub fn with_host(mut self, host: String) -> Self {
        self.host = Some(host);
        self
    }

    /// Stamps the wall-clock execution window onto the record
    /// (observability metadata: dashboard throughput/ETA columns).
    pub fn with_times(mut self, started_unix_ms: u64, finished_unix_ms: u64) -> Self {
        self.started_unix_ms = Some(started_unix_ms);
        self.finished_unix_ms = Some(finished_unix_ms);
        self
    }

    /// Embeds the executed spec so the record replays standalone
    /// (`repro replay CELL --store FILE`).
    pub fn with_spec(mut self, spec: ScenarioSpec) -> Self {
        self.spec = Some(spec);
        self
    }
}

/// The result of merging shard files: the deduplicated, index-ordered
/// records plus bookkeeping about what the reader had to tolerate.
#[derive(Debug)]
pub struct MergedRecords {
    /// Records ordered by grid index (duplicates collapsed).
    pub records: Vec<CellRecord>,
    /// Shard files that ended in a torn (discarded) trailing line.
    pub truncated_shards: usize,
    /// Records collapsed away: bit-identical cross-shard copies, plus
    /// stale within-file records superseded by a later append (the
    /// resume-after-spec-edit flow).
    pub duplicates: usize,
    /// Distinct full-grid digests among the merged records. `1` for
    /// shards of one experiment; more means either a resumed-after-edit
    /// store (benign) or unrelated stores merged by mistake — callers
    /// should surface it (cell indices of different grids rarely collide,
    /// so the per-cell conflict check alone cannot catch the mix-up).
    pub distinct_grids: usize,
}

/// An append-only JSONL store of [`CellRecord`]s bound to one file.
#[derive(Debug)]
pub struct ResultsStore {
    path: PathBuf,
    records: Vec<CellRecord>,
    truncated: bool,
    writer: Mutex<File>,
}

fn store_err(path: &Path, what: impl std::fmt::Display) -> ExpError {
    ExpError::Store(format!("{}: {what}", path.display()))
}

/// Parses the complete lines of a store file. Returns the records, the
/// byte length of the valid prefix, and whether a torn tail was
/// discarded. Only a *final line missing its newline* is tolerated as a
/// torn tail: [`ResultsStore::append`] writes payload + `\n` in one
/// `write_all`, and a partial write truncates the end of that buffer, so
/// a killed writer can only ever leave a newline-less fragment. Any
/// unparseable line that kept its newline completed its append and is
/// therefore real corruption — a hard error, never silently truncated.
fn parse_lines(path: &Path, text: &str) -> Result<(Vec<CellRecord>, u64, bool), ExpError> {
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut offset = 0usize;
    let mut truncated = false;
    while offset < text.len() {
        let rest = &text[offset..];
        let (line, consumed, complete) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1, true),
            None => (rest, rest.len(), false),
        };
        let end = offset + consumed;
        if !complete {
            // The killed-writer signature; the fragment may even parse as
            // JSON (only the newline was cut) — still discarded.
            truncated = true;
        } else if !line.trim().is_empty() {
            match serde_json::from_str::<CellRecord>(line) {
                Ok(rec) if rec.schema == STORE_SCHEMA => {
                    records.push(rec);
                    valid_len = end as u64;
                }
                Ok(rec) => {
                    return Err(store_err(
                        path,
                        format!("unsupported schema `{}` (want {STORE_SCHEMA})", rec.schema),
                    ));
                }
                Err(e) => {
                    return Err(store_err(path, format!("corrupt record: {e}")));
                }
            }
        } else {
            valid_len = end as u64;
        }
        offset = end;
    }
    Ok((records, valid_len, truncated))
}

impl ResultsStore {
    /// Opens (creating if missing) the store at `path`, loading every
    /// already-completed record. A torn trailing line is discarded and the
    /// file truncated back to its valid prefix so subsequent appends start
    /// on a line boundary.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ExpError> {
        let path = path.as_ref().to_path_buf();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(store_err(&path, e)),
        };
        let (records, valid_len, truncated) = parse_lines(&path, &text)?;
        if truncated {
            let f = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| store_err(&path, e))?;
            f.set_len(valid_len).map_err(|e| store_err(&path, e))?;
        }
        let writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| store_err(&path, e))?;
        Ok(ResultsStore {
            path,
            records,
            truncated,
            writer: Mutex::new(writer),
        })
    }

    /// The file this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The records that were already in the store when it was opened.
    pub fn records(&self) -> &[CellRecord] {
        &self.records
    }

    /// True when opening discarded a torn trailing line.
    pub fn recovered_torn_tail(&self) -> bool {
        self.truncated
    }

    /// Appends one record as a single atomic line (serialize + `\n`, one
    /// `write_all`, then flush). Safe to call from many suite workers.
    pub fn append(&self, record: &CellRecord) -> Result<(), ExpError> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| store_err(&self.path, format!("serialize: {e}")))?;
        line.push('\n');
        let mut f = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| store_err(&self.path, e))
    }

    /// Loads a store file read-only (same tolerant reader as
    /// [`open`](Self::open), without mutating the file). Returns the
    /// records and whether a torn tail was discarded.
    pub fn load(path: impl AsRef<Path>) -> Result<(Vec<CellRecord>, bool), ExpError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| store_err(path, e))?;
        let (records, _, truncated) = parse_lines(path, &text)?;
        Ok((records, truncated))
    }

    /// Merges shard files into one index-ordered record list.
    ///
    /// *Within* one file, a later record at the same index supersedes an
    /// earlier one — a single store's appends are chronological, and the
    /// resume-after-spec-edit flow legitimately leaves a stale record
    /// behind the fresh one. *Across* files, duplicate
    /// `(index, spec_digest)` entries are verified bit-identical (the
    /// determinism contract) and collapsed, while the same index carrying
    /// two *different* digests means the shards came from different grids
    /// and is an error. Linear in the total record count.
    pub fn merge_files<P: AsRef<Path>>(paths: &[P]) -> Result<MergedRecords, ExpError> {
        let mut all: HashMap<u64, CellRecord> = HashMap::new();
        let mut truncated_shards = 0usize;
        let mut duplicates = 0usize;
        for p in paths {
            let (records, truncated) = Self::load(p)?;
            if truncated {
                truncated_shards += 1;
            }
            // Chronological last-wins within this file.
            let mut file_latest: HashMap<u64, CellRecord> = HashMap::new();
            for rec in records {
                if file_latest.insert(rec.index, rec).is_some() {
                    duplicates += 1;
                }
            }
            for (index, rec) in file_latest {
                match all.entry(index) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(rec);
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        let prev = o.get();
                        if prev.spec_digest != rec.spec_digest {
                            return Err(ExpError::Store(format!(
                                "cell {} has conflicting spec digests {} vs {} — \
                                 shards are from different grids",
                                rec.index, prev.spec_digest, rec.spec_digest
                            )));
                        }
                        let a = serde_json::to_string(&prev.report);
                        let b = serde_json::to_string(&rec.report);
                        if a != b {
                            return Err(ExpError::Store(format!(
                                "cell {} ({}) appears twice with diverging reports — \
                                 determinism violation",
                                rec.index, rec.cell
                            )));
                        }
                        duplicates += 1;
                    }
                }
            }
        }
        let mut records: Vec<CellRecord> = all.into_values().collect();
        records.sort_by_key(|r| r.index);
        let distinct_grids = records
            .iter()
            .map(|r| r.grid.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len();
        Ok(MergedRecords {
            records,
            truncated_shards,
            duplicates,
            distinct_grids,
        })
    }

    /// Garbage-collects a store against a spec grid: records whose
    /// `(index, spec_digest)` no longer appears in `grid` — stale cells
    /// left behind by spec edits, reshapes, or removed presets — are
    /// dropped and the file is rewritten in place. Returns
    /// `(kept, dropped)`. A torn trailing line is discarded like any other
    /// reader would.
    pub fn gc(path: impl AsRef<Path>, grid: &[(u64, String)]) -> Result<(usize, usize), ExpError> {
        let path = path.as_ref();
        let valid: std::collections::HashSet<(u64, &str)> =
            grid.iter().map(|(i, d)| (*i, d.as_str())).collect();
        let (records, _) = Self::load(path)?;
        let total = records.len();
        let kept: Vec<CellRecord> = records
            .into_iter()
            .filter(|r| valid.contains(&(r.index, r.spec_digest.as_str())))
            .collect();
        let dropped = total - kept.len();
        if dropped > 0 {
            // Rewrite via temp-file + rename: a truncate-in-place write
            // interrupted midway would silently destroy valid records (and
            // the torn-tail-tolerant reader would mask the loss as an
            // ordinary interrupted append).
            let tmp = path.with_extension("gc-tmp");
            Self::write_all(&tmp, &kept)?;
            std::fs::rename(&tmp, path).map_err(|e| store_err(path, e))?;
        }
        Ok((kept.len(), dropped))
    }

    /// Writes records to `path` as a fresh JSONL store (e.g. the merged
    /// output of several shards).
    pub fn write_all(path: impl AsRef<Path>, records: &[CellRecord]) -> Result<(), ExpError> {
        let path = path.as_ref();
        let mut out = String::new();
        for rec in records {
            out.push_str(
                &serde_json::to_string(rec)
                    .map_err(|e| store_err(path, format!("serialize: {e}")))?,
            );
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| store_err(path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::WorkloadSpec;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::preset(
            "CATA",
            2,
            WorkloadSpec::Chain {
                n: 3,
                cycles: 10_000,
            },
        )
        .unwrap()
        .with_small_machine(4, 2)
    }

    fn record(index: u64) -> CellRecord {
        let s = spec();
        let report = crate::SimExecutor::default()
            .run_spec(&s, crate::exp::default_registries())
            .unwrap()
            .0;
        CellRecord::new(index, &s, "test-grid".into(), 0.001, report)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cata-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn digest_is_stable_and_spec_sensitive() {
        let a = spec_digest(&spec());
        assert_eq!(a, spec_digest(&spec()), "digest must be deterministic");
        let mut other = spec();
        other.seed ^= 1;
        assert_ne!(a, spec_digest(&other), "digest must see the seed");
    }

    #[test]
    fn append_load_round_trips_bit_identically() {
        let path = tmp("round-trip.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = record(3);
        let store = ResultsStore::open(&path).unwrap();
        store.append(&rec).unwrap();
        let (loaded, truncated) = ResultsStore::load(&path).unwrap();
        assert!(!truncated);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].index, 3);
        assert_eq!(loaded[0].spec_digest, rec.spec_digest);
        assert_eq!(
            serde_json::to_string(&loaded[0].report).unwrap(),
            serde_json::to_string(&rec.report).unwrap(),
            "stored report must be bit-identical"
        );
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated_on_open() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultsStore::open(&path).unwrap();
            store.append(&record(0)).unwrap();
        }
        // Simulate a writer killed mid-line: half a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"schema\":\"cata-results/v1\",\"index\":9")
                .unwrap();
        }
        let store = ResultsStore::open(&path).unwrap();
        assert!(store.recovered_torn_tail());
        assert_eq!(store.records().len(), 1);
        // The file was truncated back to a line boundary: appending again
        // yields two clean records.
        store.append(&record(1)).unwrap();
        let (loaded, truncated) = ResultsStore::load(&path).unwrap();
        assert!(!truncated);
        assert_eq!(
            loaded.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn corrupt_middle_line_is_a_hard_error() {
        let path = tmp("corrupt.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = serde_json::to_string(&record(0)).unwrap();
        std::fs::write(&path, format!("not json\n{rec}\n")).unwrap();
        assert!(matches!(ResultsStore::open(&path), Err(ExpError::Store(_))));
    }

    #[test]
    fn corrupt_final_line_with_newline_is_corruption_not_a_torn_tail() {
        // A surviving newline means the append completed — an unparseable
        // line that kept it is real corruption and must never be silently
        // truncated away as if it were a killed writer's fragment.
        let path = tmp("corrupt-final.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = serde_json::to_string(&record(0)).unwrap();
        std::fs::write(
            &path,
            format!("{rec}\n{{\"schema\":\"cata-results/v1\",GARBAGE\n"),
        )
        .unwrap();
        let err = ResultsStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        // The evidence is preserved: the file was not truncated.
        assert!(std::fs::read_to_string(&path).unwrap().contains("GARBAGE"));
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let path = tmp("schema.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut rec = record(0);
        rec.schema = "cata-results/v999".into();
        std::fs::write(&path, format!("{}\n", serde_json::to_string(&rec).unwrap())).unwrap();
        let err = ResultsStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn merge_dedupes_and_orders_by_index() {
        let a_path = tmp("merge-a.jsonl");
        let b_path = tmp("merge-b.jsonl");
        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
        let r0 = record(0);
        let r1 = record(1);
        ResultsStore::write_all(&a_path, &[r1.clone(), r0.clone()]).unwrap();
        ResultsStore::write_all(&b_path, std::slice::from_ref(&r0)).unwrap();
        let merged = ResultsStore::merge_files(&[&a_path, &b_path]).unwrap();
        assert_eq!(merged.duplicates, 1);
        assert_eq!(
            merged.records.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1]
        );

        // Same index, different digest: different grids, hard error.
        let mut foreign = r1.clone();
        foreign.index = 0;
        foreign.spec_digest = "0000000000000000".into();
        ResultsStore::write_all(&b_path, &[foreign]).unwrap();
        assert!(ResultsStore::merge_files(&[&a_path, &b_path]).is_err());
    }

    #[test]
    fn gc_drops_records_outside_the_grid_and_keeps_the_rest() {
        let path = tmp("gc.jsonl");
        let _ = std::fs::remove_file(&path);
        let r0 = record(0);
        let r1 = record(1);
        let mut stale = record(2);
        stale.spec_digest = "feedfeedfeedfeed".into(); // spec since edited
        ResultsStore::write_all(&path, &[r0.clone(), r1.clone(), stale]).unwrap();

        // The current grid only has cells 0 and 1 (and cell 2 under a new
        // digest that no stored record matches).
        let grid = vec![
            (0, r0.spec_digest.clone()),
            (1, r1.spec_digest.clone()),
            (2, spec_digest(&spec())),
        ];
        let (kept, dropped) = ResultsStore::gc(&path, &grid).unwrap();
        assert_eq!((kept, dropped), (2, 1));
        let (loaded, _) = ResultsStore::load(&path).unwrap();
        assert_eq!(
            loaded.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1]
        );

        // Idempotent: a second pass drops nothing (and rewrites nothing).
        let (kept, dropped) = ResultsStore::gc(&path, &grid).unwrap();
        assert_eq!((kept, dropped), (2, 0));
    }

    #[test]
    fn cell_key_names_the_backend() {
        let rec = record(0);
        assert!(rec.cell.ends_with("/sim"), "{}", rec.cell);
        let native_spec = spec().with_backend(crate::exp::spec::Backend::Native);
        let rec = CellRecord::new(1, &native_spec, "g".into(), 0.0, rec.report);
        assert!(rec.cell.ends_with("/native"), "{}", rec.cell);
    }

    #[test]
    fn observability_fields_are_omitted_when_absent_and_round_trip_when_present() {
        // Legacy layout: a bare record serializes without any of the new
        // optional fields, so existing stores rewritten by merge/gc stay
        // byte-identical.
        let bare = record(0);
        let json = serde_json::to_string(&bare).unwrap();
        for field in [
            "\"host\"",
            "started_unix_ms",
            "finished_unix_ms",
            "\"spec\"",
        ] {
            assert!(!json.contains(field), "{field} must be omitted: {json}");
        }
        let back: CellRecord = serde_json::from_str(&json).unwrap();
        assert!(back.host.is_none() && back.spec.is_none());
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            json,
            "byte-identical"
        );

        // Stamped records round-trip, and the embedded spec re-digests to
        // the record's own digest (the replay precondition).
        let s = spec();
        let full = record(1)
            .with_host("deadbeefdeadbeef".into())
            .with_times(1_000, 2_500)
            .with_spec(s.clone());
        let json = serde_json::to_string(&full).unwrap();
        let back: CellRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.host.as_deref(), Some("deadbeefdeadbeef"));
        assert_eq!(back.started_unix_ms, Some(1_000));
        assert_eq!(back.finished_unix_ms, Some(2_500));
        assert_eq!(spec_digest(back.spec.as_ref().unwrap()), spec_digest(&s));
    }

    #[test]
    fn merge_counts_distinct_grids_even_when_indices_never_collide() {
        // Shards of *different* grids typically have disjoint indices, so
        // the per-cell conflict check cannot fire; the grid tag is what
        // surfaces the mix-up.
        let a_path = tmp("grids-a.jsonl");
        let b_path = tmp("grids-b.jsonl");
        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
        let r0 = record(0);
        let mut r1 = record(1);
        r1.grid = "another-grid".into();
        ResultsStore::write_all(&a_path, std::slice::from_ref(&r0)).unwrap();
        ResultsStore::write_all(&b_path, std::slice::from_ref(&r1)).unwrap();
        let merged = ResultsStore::merge_files(&[&a_path, &b_path]).unwrap();
        assert_eq!(merged.records.len(), 2);
        assert_eq!(merged.distinct_grids, 2, "the mix must be visible");

        let same = ResultsStore::merge_files(&[&a_path]).unwrap();
        assert_eq!(same.distinct_grids, 1);
    }
}
