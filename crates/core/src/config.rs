//! Run configuration: the six experimental configurations of the paper plus
//! every knob the ablations sweep.
//!
//! Since the `exp` facade landed, these enums are thin compatibility
//! wrappers: executors resolve them into policies through the string-keyed
//! [`PolicyRegistries`](crate::exp::PolicyRegistries) (see
//! [`SchedulerKind::registry_key`] and friends), so enum-based and
//! spec-based runs construct their policies through one path.

use crate::exp::registry::PolicyKeys;
use crate::exp::spec::{PolicyParams, ScenarioSpec, WorkloadSpec};
use cata_cpufreq::software_path::SoftwarePathParams;
use cata_power::PowerParams;
use cata_sim::machine::MachineConfig;
use cata_sim::time::SimDuration;
use cata_sim::trace::TraceMode;
use serde::{Deserialize, Serialize};

/// Which ready-queue policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Single blind FIFO queue.
    Fifo,
    /// CATS dual queues (HPRQ/LPRQ) over static fast/slow cores.
    CatsHetero,
    /// CATS dual queues with all cores equivalent (the CATA setting).
    CatsHomogeneous,
}

/// Which criticality estimator classifies ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Everything non-critical (FIFO / TurboMode).
    NoneAllNonCritical,
    /// Static `criticality(c)` annotations on task types.
    StaticAnnotations,
    /// Dynamic bottom-level with threshold fraction `alpha` (1.0 = CATS).
    BottomLevel {
        /// Criticality threshold as a fraction of the max pending BL.
        alpha: f64,
    },
}

/// Which acceleration manager reconfigures cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccelKind {
    /// Static heterogeneous cores, no reconfiguration (FIFO, CATS).
    StaticHetero,
    /// Software CATA: RSM + serialized cpufreq path.
    SoftwareCata {
        /// Latency parameters of the software path.
        params: SoftwarePathParams,
    },
    /// Hardware CATA: the Runtime Support Unit.
    HardwareRsu,
    /// The TurboMode controller (criticality-blind).
    TurboMode,
}

/// Runtime cost constants (Nanos++-scale).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeCosts {
    /// Master-thread cost of creating/submitting one task (dependence
    /// registration, allocation).
    pub task_creation: SimDuration,
    /// Extra creation cost per TDG node visited by the bottom-level
    /// estimator's ancestor walk (the CATS+BL overhead, §V-A).
    pub per_bl_visit: SimDuration,
    /// Worker-side cost of dequeuing a task (scheduler critical section).
    pub dispatch: SimDuration,
}

impl Default for RuntimeCosts {
    fn default() -> Self {
        RuntimeCosts {
            task_creation: SimDuration::from_ns(800),
            per_bl_visit: SimDuration::from_ns(250),
            dispatch: SimDuration::from_ns(300),
        }
    }
}

/// Complete configuration of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// A label for reports ("FIFO", "CATS+SA", …).
    pub label: String,
    /// The machine (Table I by default).
    pub machine: MachineConfig,
    /// Static fast-core count *and* dynamic power budget — the paper uses
    /// the same number (8, 16 or 24) for both roles.
    pub fast_cores: usize,
    /// Ready-queue policy.
    pub scheduler: SchedulerKind,
    /// Criticality estimator.
    pub estimator: EstimatorKind,
    /// Acceleration manager.
    pub accel: AccelKind,
    /// Runtime cost constants.
    pub costs: RuntimeCosts,
    /// If set, an idle core halts (C1) after this long — the OS idle loop.
    /// The paper's Nanos++ workers busy-wait, so only the TurboMode
    /// configuration sets this.
    pub idle_to_halt: Option<SimDuration>,
    /// How long a core must stay idle before CATA decelerates it (§V-B:
    /// deceleration happens when "there are no other tasks ready", which a
    /// real runtime only concludes after spinning a while — transient queue
    /// emptiness between dependent tasks must not trigger a reconfiguration
    /// pair).
    pub idle_decel_delay: SimDuration,
    /// Latency of waking a halted core (C1 exit).
    pub wake_latency: SimDuration,
    /// Power model calibration.
    pub power: PowerParams,
    /// Trace collection mode (off by default; `Full` costs memory and is
    /// for tests/examples).
    pub trace: TraceMode,
    /// Seed for the deterministic RNG (TurboMode's random victim pick).
    pub seed: u64,
}

impl SchedulerKind {
    /// The policy-registry key this enum value resolves through.
    pub fn registry_key(self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::CatsHetero => "cats",
            SchedulerKind::CatsHomogeneous => "cats-homogeneous",
        }
    }
}

impl EstimatorKind {
    /// The policy-registry key this enum value resolves through.
    pub fn registry_key(&self) -> &'static str {
        match self {
            EstimatorKind::NoneAllNonCritical => "none",
            EstimatorKind::StaticAnnotations => "static-annotations",
            EstimatorKind::BottomLevel { .. } => "bottom-level",
        }
    }
}

impl AccelKind {
    /// The policy-registry key this enum value resolves through.
    pub fn registry_key(&self) -> &'static str {
        match self {
            AccelKind::StaticHetero => "static-hetero",
            AccelKind::SoftwareCata { .. } => "software-cata",
            AccelKind::HardwareRsu => "rsu",
            AccelKind::TurboMode => "turbo",
        }
    }
}

impl RunConfig {
    fn base(label: &str, fast_cores: usize) -> Self {
        RunConfig {
            label: label.into(),
            machine: MachineConfig::paper_table1(),
            fast_cores,
            scheduler: SchedulerKind::Fifo,
            estimator: EstimatorKind::NoneAllNonCritical,
            accel: AccelKind::StaticHetero,
            costs: RuntimeCosts::default(),
            idle_to_halt: None,
            idle_decel_delay: SimDuration::from_us(25),
            wake_latency: SimDuration::from_us(1),
            power: PowerParams::mcpat_22nm(),
            trace: TraceMode::Off,
            seed: 0xCA7A_2016,
        }
    }

    /// The paper's `FIFO` baseline: blind queue on static fast/slow cores.
    pub fn fifo(fast_cores: usize) -> Self {
        Self::base("FIFO", fast_cores)
    }

    /// `CATS+BL`: dual queues, bottom-level criticality, static cores.
    pub fn cats_bl(fast_cores: usize) -> Self {
        RunConfig {
            scheduler: SchedulerKind::CatsHetero,
            estimator: EstimatorKind::BottomLevel { alpha: 1.0 },
            ..Self::base("CATS+BL", fast_cores)
        }
    }

    /// `CATS+SA`: dual queues, static annotations, static cores.
    pub fn cats_sa(fast_cores: usize) -> Self {
        RunConfig {
            scheduler: SchedulerKind::CatsHetero,
            estimator: EstimatorKind::StaticAnnotations,
            ..Self::base("CATS+SA", fast_cores)
        }
    }

    /// `CATA`: dual queues, static annotations, software-driven DVFS with
    /// the power budget set to `fast_cores`.
    pub fn cata(fast_cores: usize) -> Self {
        RunConfig {
            scheduler: SchedulerKind::CatsHomogeneous,
            estimator: EstimatorKind::StaticAnnotations,
            accel: AccelKind::SoftwareCata {
                params: SoftwarePathParams::paper_calibrated(),
            },
            ..Self::base("CATA", fast_cores)
        }
    }

    /// `CATA+RSU`: as [`cata`](Self::cata) but reconfiguring through the
    /// hardware Runtime Support Unit.
    pub fn cata_rsu(fast_cores: usize) -> Self {
        RunConfig {
            scheduler: SchedulerKind::CatsHomogeneous,
            estimator: EstimatorKind::StaticAnnotations,
            accel: AccelKind::HardwareRsu,
            ..Self::base("CATA+RSU", fast_cores)
        }
    }

    /// `TurboMode`: blind FIFO queue plus the halt-driven controller.
    pub fn turbo(fast_cores: usize) -> Self {
        RunConfig {
            accel: AccelKind::TurboMode,
            // Nanos++ workers busy-wait in user space; only after the spin
            // phase do they block on a futex, letting the OS idle task run
            // `hlt` (C0 → C1). Until then the core spins — possibly at the
            // accelerated level, which is the energy waste §V-D attributes
            // to TurboMode ("it may accelerate … runtime idle-loops").
            idle_to_halt: Some(SimDuration::from_us(40)),
            ..Self::base("TurboMode", fast_cores)
        }
    }

    /// All six paper configurations at one fast-core count, in figure order.
    pub fn paper_matrix(fast_cores: usize) -> Vec<RunConfig> {
        vec![
            Self::fifo(fast_cores),
            Self::cats_bl(fast_cores),
            Self::cats_sa(fast_cores),
            Self::cata(fast_cores),
            Self::cata_rsu(fast_cores),
            Self::turbo(fast_cores),
        ]
    }

    /// The registry keys this configuration's enums resolve through.
    pub fn policy_keys(&self) -> PolicyKeys {
        PolicyKeys {
            scheduler: self.scheduler.registry_key().to_string(),
            estimator: self.estimator.registry_key().to_string(),
            accel: self.accel.registry_key().to_string(),
        }
    }

    /// The policy parameters the enums carry (BL threshold, software-path
    /// latencies).
    pub fn policy_params(&self) -> PolicyParams {
        PolicyParams {
            alpha: match self.estimator {
                EstimatorKind::BottomLevel { alpha } => Some(alpha),
                _ => None,
            },
            software_path: match &self.accel {
                AccelKind::SoftwareCata { params } => Some(*params),
                _ => None,
            },
        }
    }

    /// Lifts this enum-based configuration into a registry-keyed
    /// [`ScenarioSpec`] running `workload`.
    pub fn to_spec(&self, workload: WorkloadSpec) -> ScenarioSpec {
        let keys = self.policy_keys();
        let params = self.policy_params();
        ScenarioSpec {
            name: self.label.clone(),
            workload,
            machine: self.machine.clone(),
            fast_cores: self.fast_cores,
            scheduler: keys.scheduler,
            estimator: keys.estimator,
            accel: keys.accel,
            params: if params == PolicyParams::default() {
                None
            } else {
                Some(params)
            },
            costs: self.costs,
            idle_to_halt: self.idle_to_halt,
            idle_decel_delay: self.idle_decel_delay,
            wake_latency: self.wake_latency,
            power: self.power.clone(),
            trace: self.trace,
            seed: self.seed,
            backend: crate::exp::spec::Backend::Sim,
            faults: None,
            event_queue: None,
            memory: None,
        }
    }

    /// Shrinks the machine for unit tests (`n` cores, `fast` fast/budget).
    pub fn with_small_machine(mut self, n: usize, fast: usize) -> Self {
        self.machine = MachineConfig::small_test(n);
        self.fast_cores = fast;
        self
    }

    /// Enables full event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = TraceMode::Full;
        self
    }

    /// Selects an explicit trace collection mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_settings() {
        let m = RunConfig::paper_matrix(16);
        assert_eq!(m.len(), 6);
        assert_eq!(m[0].label, "FIFO");
        assert!(matches!(m[1].estimator, EstimatorKind::BottomLevel { .. }));
        assert!(matches!(m[2].estimator, EstimatorKind::StaticAnnotations));
        assert!(matches!(m[3].accel, AccelKind::SoftwareCata { .. }));
        assert!(matches!(m[4].accel, AccelKind::HardwareRsu));
        assert!(matches!(m[5].accel, AccelKind::TurboMode));
        for c in &m {
            assert_eq!(c.machine.num_cores, 32);
            assert_eq!(c.fast_cores, 16);
        }
        // Only TurboMode halts idle cores (Nanos++ busy-waits).
        assert!(m[5].idle_to_halt.is_some());
        assert!(m[3].idle_to_halt.is_none());
    }
}
