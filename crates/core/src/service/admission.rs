//! Admission control: the pluggable gate arriving graph instances pass
//! (or don't) before entering the system.
//!
//! An overloaded open system must either queue without bound or shed
//! load. The policy family here mirrors the scheduler/estimator/accel
//! registries: small `dyn` objects behind string keys, so experiments
//! name their admission policy in the [`ServiceSpec`](super::ServiceSpec)
//! and external crates can register their own.

use super::spec::AdmissionParams;
use crate::exp::error::ExpError;
use cata_sim::time::SimTime;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// What the gate sees when an instance arrives.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionCtx {
    /// Arrival instant.
    pub now: SimTime,
    /// Graph instances admitted but not yet completed.
    pub in_flight: usize,
    /// Tasks currently sitting in the scheduler's ready queues.
    pub ready_tasks: usize,
    /// The arriving instance contains criticality-annotated tasks.
    pub critical: bool,
    /// Tenant tag from the traffic tape (0 for generated traffic).
    pub tenant: u32,
}

/// An admission decision per arriving graph instance.
///
/// Policies may keep state (token buckets, per-tenant counters); the
/// engine calls [`admit`](Self::admit) exactly once per arrival, in
/// arrival order, so stateful policies replay deterministically.
pub trait AdmissionPolicy: Send {
    /// Registry key / display name.
    fn name(&self) -> &'static str;
    /// `true` admits the instance; `false` drops it at the door.
    fn admit(&mut self, ctx: &AdmissionCtx) -> bool;
}

/// Default in-flight cap for the bounded policies when the spec does not
/// say otherwise.
pub const DEFAULT_QUEUE_CAP: usize = 64;

/// Admits everything — the unbounded baseline. Under sustained overload
/// the queue (and the tail) grows without limit; that growth is the
/// measurement.
#[derive(Debug, Default)]
struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &'static str {
        "admit-all"
    }
    fn admit(&mut self, _ctx: &AdmissionCtx) -> bool {
        true
    }
}

/// Drops arrivals while more than `cap` instances are in flight — the
/// classic bounded-queue front door.
#[derive(Debug)]
struct QueueCap {
    cap: usize,
}

impl AdmissionPolicy for QueueCap {
    fn name(&self) -> &'static str {
        "queue-cap"
    }
    fn admit(&mut self, ctx: &AdmissionCtx) -> bool {
        ctx.in_flight < self.cap
    }
}

/// Criticality-aware shedding: over the cap, only instances that carry
/// critical (annotated) tasks get in — the service-mode analogue of the
/// paper's "critical tasks deserve the fast cores" priority.
#[derive(Debug)]
struct CriticalityShed {
    cap: usize,
}

impl AdmissionPolicy for CriticalityShed {
    fn name(&self) -> &'static str {
        "shed-noncritical"
    }
    fn admit(&mut self, ctx: &AdmissionCtx) -> bool {
        ctx.in_flight < self.cap || ctx.critical
    }
}

/// Factory signature: parameters in, boxed policy out.
pub type AdmissionFactory =
    dyn Fn(&AdmissionParams) -> Result<Box<dyn AdmissionPolicy>, ExpError> + Send + Sync;

/// String-keyed admission-policy registry, mirroring
/// [`PolicyRegistries`](crate::exp::PolicyRegistries).
#[derive(Clone, Default)]
pub struct AdmissionRegistry {
    entries: BTreeMap<String, Arc<AdmissionFactory>>,
}

impl AdmissionRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry with the built-in family: `admit-all`, `queue-cap`,
    /// `shed-noncritical`.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register("admit-all", |_p| {
            Ok(Box::new(AdmitAll) as Box<dyn AdmissionPolicy>)
        });
        r.register("queue-cap", |p: &AdmissionParams| {
            Ok(Box::new(QueueCap {
                cap: p.queue_cap.unwrap_or(DEFAULT_QUEUE_CAP),
            }) as Box<dyn AdmissionPolicy>)
        });
        r.register("shed-noncritical", |p: &AdmissionParams| {
            Ok(Box::new(CriticalityShed {
                cap: p.queue_cap.unwrap_or(DEFAULT_QUEUE_CAP),
            }) as Box<dyn AdmissionPolicy>)
        });
        r
    }

    /// Registers (or replaces) a policy under `key`.
    pub fn register<F>(&mut self, key: impl Into<String>, factory: F)
    where
        F: Fn(&AdmissionParams) -> Result<Box<dyn AdmissionPolicy>, ExpError>
            + Send
            + Sync
            + 'static,
    {
        self.entries.insert(key.into(), Arc::new(factory));
    }

    /// Registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Builds the policy registered under `key`.
    pub fn build(
        &self,
        key: &str,
        params: &AdmissionParams,
    ) -> Result<Box<dyn AdmissionPolicy>, ExpError> {
        let f = self
            .entries
            .get(key)
            .ok_or_else(|| ExpError::UnknownAdmission {
                key: key.to_string(),
                known: self.keys(),
            })?;
        f(params)
    }
}

impl std::fmt::Debug for AdmissionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

/// The process-wide default registry (builtins only), built once.
pub fn default_admission_registry() -> &'static AdmissionRegistry {
    static REG: OnceLock<AdmissionRegistry> = OnceLock::new();
    REG.get_or_init(AdmissionRegistry::with_builtins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(in_flight: usize, critical: bool) -> AdmissionCtx {
        AdmissionCtx {
            now: SimTime::ZERO,
            in_flight,
            ready_tasks: 0,
            critical,
            tenant: 0,
        }
    }

    #[test]
    fn builtins_resolve_and_behave() {
        let reg = default_admission_registry();
        assert_eq!(
            reg.keys(),
            vec!["admit-all", "queue-cap", "shed-noncritical"]
        );
        let p = AdmissionParams { queue_cap: Some(2) };
        let mut all = reg.build("admit-all", &p).unwrap();
        assert!(all.admit(&ctx(1_000_000, false)));

        let mut cap = reg.build("queue-cap", &p).unwrap();
        assert!(cap.admit(&ctx(1, true)));
        assert!(!cap.admit(&ctx(2, true)), "cap binds even for critical");

        let mut shed = reg.build("shed-noncritical", &p).unwrap();
        assert!(shed.admit(&ctx(1, false)));
        assert!(!shed.admit(&ctx(2, false)));
        assert!(
            shed.admit(&ctx(2, true)),
            "critical instances bypass the cap"
        );
    }

    #[test]
    fn unknown_key_reports_the_known_set() {
        let Err(err) = default_admission_registry().build("nope", &AdmissionParams::default())
        else {
            panic!("unknown key must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("queue-cap"), "{msg}");
    }
}
