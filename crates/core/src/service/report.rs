//! Per-run service metrics: arrival accounting and tail latency.

use cata_sim::stats::LatencyHistogram;
use cata_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// What an open-system run measured.
///
/// Counts obey the conservation law
/// `arrivals == admitted + dropped` and, once the run has drained,
/// `admitted == completed + in_flight` with `in_flight == 0`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Graph instances that arrived (tape records consumed).
    pub arrivals: u64,
    /// Instances the admission policy let in.
    pub admitted: u64,
    /// Instances dropped at the door.
    pub dropped: u64,
    /// Instances that ran to completion.
    pub completed: u64,
    /// Admitted instances still in the system when the run ended
    /// (always 0 — the engine drains — but stored so the conservation
    /// law is checkable from the serialized form alone).
    pub in_flight: u64,
    /// End of the run: the later of the last completion and the last
    /// processed event.
    pub duration: SimDuration,
    /// Sustained completion throughput over `duration`.
    pub graphs_per_sec: f64,
    /// Per-graph response time (arrival → last task completion).
    pub latency: LatencyHistogram,
    /// Time in queue (arrival → first task dispatched).
    pub queue_wait: LatencyHistogram,
    /// Time in service (first task dispatched → last task completion).
    pub service_time: LatencyHistogram,
}

impl ServiceReport {
    /// Median response time.
    pub fn p50(&self) -> SimDuration {
        self.latency.quantile(0.5)
    }

    /// 99th-percentile response time.
    pub fn p99(&self) -> SimDuration {
        self.latency.quantile(0.99)
    }

    /// 99.9th-percentile response time.
    pub fn p999(&self) -> SimDuration {
        self.latency.quantile(0.999)
    }

    /// One-line deterministic summary; picosecond integers so CI can
    /// grep and diff it without float-formatting hazards.
    pub fn summary(&self) -> String {
        format!(
            "arrivals={} admitted={} dropped={} completed={} gps={:.3} \
             p50={}ps p99={}ps p999={}ps qwait_p99={}ps svc_p99={}ps",
            self.arrivals,
            self.admitted,
            self.dropped,
            self.completed,
            self.graphs_per_sec,
            self.p50().as_ps(),
            self.p99().as_ps(),
            self.p999().as_ps(),
            self.queue_wait.quantile(0.99).as_ps(),
            self.service_time.quantile(0.99).as_ps(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_summarizes() {
        let mut r = ServiceReport::default();
        for i in 1..=100u64 {
            r.latency.record(SimDuration::from_ns(i));
            r.queue_wait.record(SimDuration::from_ns(i / 2));
            r.service_time.record(SimDuration::from_ns(i / 2 + 1));
        }
        r.arrivals = 120;
        r.admitted = 100;
        r.dropped = 20;
        r.completed = 100;
        r.duration = SimDuration::from_us(100);
        r.graphs_per_sec = 1_000_000.0;

        let json = serde_json::to_string(&r).unwrap();
        let back: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);

        let s = r.summary();
        assert!(
            s.contains("arrivals=120") && s.contains("dropped=20"),
            "{s}"
        );
        assert!(s.contains("p99=") && s.contains("p999="), "{s}");
        assert!(r.p999() >= r.p99() && r.p99() >= r.p50());
    }
}
