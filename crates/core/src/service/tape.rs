//! Traffic tapes: replayable arrival streams.
//!
//! A tape is the service-mode analogue of a captured TDG — the *traffic*
//! as a first-class, storable artifact. Generated runs (Poisson / fixed
//! rate) record the tape they drew; `repro serve --tape` replays one, and
//! replaying reproduces the original run bit-identically because the
//! engine consumes tapes, never raw RNG draws.
//!
//! File form (`.tape.jsonl`): a header line
//! `{"schema":"cata-tape/v1","name":…,"workloads":[…],"digest":…}`
//! followed by one `{"at_ps":…,"workload":…,"tenant":…}` record per
//! line. The digest covers name + workloads + records, so a tape file
//! cannot silently drift from the traffic it claims to carry.

use super::spec::ArrivalSpec;
use crate::exp::error::ExpError;
use crate::exp::spec::WorkloadSpec;
use cata_sim::time::SimDuration;
use cata_tdg::fnv1a_hex;
use serde::{Deserialize, Serialize, Value};

/// Schema tag of the tape JSONL header.
pub const TAPE_SCHEMA: &str = "cata-tape/v1";

/// One arrival: a graph instance of `workloads[workload]` entering the
/// system at `at_ps`, tagged with a tenant id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TapeRecord {
    /// Arrival instant, picoseconds since simulation start.
    pub at_ps: u64,
    /// Index into the tape's workload table.
    pub workload: u32,
    /// Tenant tag (0 for generated traffic); admission policies may use
    /// it.
    pub tenant: u32,
}

/// The header line of a tape file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TapeHeader {
    schema: String,
    name: String,
    workloads: Vec<WorkloadSpec>,
    digest: String,
}

/// A replayable arrival stream: the workload table plus the time-ordered
/// arrival records, content-digested.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTape {
    /// Human-readable tape name.
    pub name: String,
    /// The distinct workload templates instances are stamped from;
    /// records index into this table.
    pub workloads: Vec<WorkloadSpec>,
    /// Arrivals in nondecreasing time order.
    pub records: Vec<TapeRecord>,
    /// Content digest over name + workloads + records; `""` means "not
    /// yet stamped".
    pub digest: String,
}

impl TrafficTape {
    /// Computes the content digest (FNV-1a over the compact JSON of
    /// `[name, workloads, records]`).
    pub fn content_digest(&self) -> String {
        let v = Value::Seq(vec![
            self.name.to_value(),
            self.workloads.to_value(),
            self.records.to_value(),
        ]);
        fnv1a_hex(serde_json::to_string(&v).expect("tape digests").bytes())
    }

    /// Stamps `digest` from the current content.
    pub fn refresh_digest(&mut self) {
        self.digest = self.content_digest();
    }

    /// Structural + integrity check; returns the verified content
    /// digest. An empty stored digest opts out of the integrity pin
    /// (hand-authored tapes) but still gets the structural checks.
    pub fn verify(&self) -> Result<String, ExpError> {
        let actual = self.content_digest();
        if !self.digest.is_empty() && self.digest != actual {
            return Err(ExpError::Parse(format!(
                "tape `{}` digest mismatch: stored {}, content {}",
                self.name, self.digest, actual
            )));
        }
        let mut last = 0u64;
        for (i, r) in self.records.iter().enumerate() {
            if r.at_ps < last {
                return Err(ExpError::Parse(format!(
                    "tape `{}` record {i} goes back in time ({} < {last})",
                    self.name, r.at_ps
                )));
            }
            last = r.at_ps;
            if r.workload as usize >= self.workloads.len() {
                return Err(ExpError::Parse(format!(
                    "tape `{}` record {i} names workload {} but the table has {}",
                    self.name,
                    r.workload,
                    self.workloads.len()
                )));
            }
        }
        Ok(actual)
    }

    /// Serializes to the JSONL file form (header + one record per line).
    pub fn to_jsonl(&self) -> String {
        let header = TapeHeader {
            schema: TAPE_SCHEMA.to_string(),
            name: self.name.clone(),
            workloads: self.workloads.clone(),
            digest: self.digest.clone(),
        };
        let mut out = serde_json::to_string(&header).expect("tape header serializes");
        out.push('\n');
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("tape record serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses the JSONL file form. Sugar for [`parse_jsonl`]
    /// (Self::parse_jsonl) that drops the torn-tail flag.
    pub fn from_jsonl(text: &str) -> Result<Self, ExpError> {
        Self::parse_jsonl(text).map(|(tape, _)| tape)
    }

    /// Parses the JSONL file form, tolerating a torn trailing line.
    ///
    /// Returns the tape plus whether a torn tail was discarded. Same
    /// policy as the results store: [`to_jsonl`](Self::to_jsonl) writes
    /// every line with its newline, so a killed writer can only leave a
    /// *final line missing its `\n`* — that fragment is discarded (the
    /// returned flag lets callers warn). Any unparseable line that kept
    /// its newline completed its write and is therefore real corruption —
    /// a hard error, never silently truncated.
    pub fn parse_jsonl(text: &str) -> Result<(Self, bool), ExpError> {
        let mut header: Option<TapeHeader> = None;
        let mut records = Vec::new();
        let mut truncated = false;
        let mut offset = 0usize;
        let mut line_no = 0usize;
        while offset < text.len() {
            let rest = &text[offset..];
            let (line, consumed, complete) = match rest.find('\n') {
                Some(i) => (&rest[..i], i + 1, true),
                None => (rest, rest.len(), false),
            };
            offset += consumed;
            if !complete {
                // The killed-writer signature; the fragment may even
                // parse as JSON (only the newline was cut) — still
                // discarded.
                truncated = true;
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            if header.is_none() {
                let h: TapeHeader = serde_json::from_str(line)
                    .map_err(|e| ExpError::Parse(format!("tape header: {e}")))?;
                if h.schema != TAPE_SCHEMA {
                    return Err(ExpError::Parse(format!(
                        "tape schema `{}` is not `{TAPE_SCHEMA}`",
                        h.schema
                    )));
                }
                header = Some(h);
            } else {
                let r: TapeRecord = serde_json::from_str(line)
                    .map_err(|e| ExpError::Parse(format!("tape record {line_no}: {e}")))?;
                records.push(r);
                line_no += 1;
            }
        }
        let header = header.ok_or_else(|| ExpError::Parse("empty tape file".to_string()))?;
        Ok((
            TrafficTape {
                name: header.name,
                workloads: header.workloads,
                records,
                digest: header.digest,
            },
            truncated,
        ))
    }

    /// Loads a tape file from disk. Errors carry the offending path —
    /// "no such file" without a name helps nobody. Returns the tape plus
    /// the torn-tail flag from [`parse_jsonl`](Self::parse_jsonl).
    ///
    /// A truncated tape no longer matches its stored digest (the digest
    /// covers the records), so callers replaying a torn tape through
    /// [`verify`](Self::verify) still get the integrity error; the flag
    /// exists to *explain* it and to let explicit-recovery flows proceed.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<(Self, bool), ExpError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ExpError::Parse(format!("{}: {e}", path.display())))?;
        Self::parse_jsonl(&text).map_err(|e| match e {
            ExpError::Parse(msg) => ExpError::Parse(format!("{}: {msg}", path.display())),
            other => other,
        })
    }

    /// Generates a tape from a rate-based arrival process: one workload
    /// template, arrivals in `(0, duration]`, tenant 0, digest stamped.
    ///
    /// Deterministic for a given `(arrival, duration, seed)` — including
    /// across platforms: the exponential sampler below never calls libm.
    pub fn generate(
        name: impl Into<String>,
        arrival: &ArrivalSpec,
        duration: SimDuration,
        workload: WorkloadSpec,
        seed: u64,
    ) -> Result<Self, ExpError> {
        let horizon = duration.as_ps();
        let mut records = Vec::new();
        match *arrival {
            ArrivalSpec::Fixed { rate_hz } => {
                check_rate(rate_hz)?;
                let step = ((1e12 / rate_hz).round() as u64).max(1);
                let mut t = step;
                while t <= horizon {
                    records.push(TapeRecord {
                        at_ps: t,
                        workload: 0,
                        tenant: 0,
                    });
                    t = t.saturating_add(step);
                }
            }
            ArrivalSpec::Poisson { rate_hz } => {
                check_rate(rate_hz)?;
                let mut rng = SplitMix64::new(seed);
                let mut t = 0u64;
                loop {
                    // Exponential interarrival with mean 1/rate, floored
                    // to 1 ps so arrivals strictly advance.
                    let u = rng.next_unit();
                    let dt_s = det_neg_ln_1p(u) / rate_hz;
                    let dt = ((dt_s * 1e12).round() as u64).max(1);
                    t = t.saturating_add(dt);
                    if t > horizon {
                        break;
                    }
                    records.push(TapeRecord {
                        at_ps: t,
                        workload: 0,
                        tenant: 0,
                    });
                }
            }
            ArrivalSpec::Tape { .. } => {
                return Err(ExpError::InvalidSpec(
                    "cannot generate traffic from a tape-pinned arrival spec; \
                     load the tape file and replay it"
                        .to_string(),
                ));
            }
        }
        let mut tape = TrafficTape {
            name: name.into(),
            workloads: vec![workload],
            records,
            digest: String::new(),
        };
        tape.refresh_digest();
        Ok(tape)
    }
}

fn check_rate(rate_hz: f64) -> Result<(), ExpError> {
    if !rate_hz.is_finite() || rate_hz <= 0.0 {
        return Err(ExpError::InvalidSpec(format!(
            "arrival rate must be finite and positive, got {rate_hz}"
        )));
    }
    Ok(())
}

use cata_sim::seeded::SplitMix64;

/// `-ln(1 - u)` for `u ∈ [0, 1)`, computed without libm.
///
/// Platform libms differ in the last ulp of `ln`, which would make tape
/// generation machine-dependent. This uses only IEEE-exact operations
/// (multiply by 2, add, divide) plus a truncated atanh series, so the
/// result is bit-identical everywhere: write `x = m·2ᵉ` with
/// `m ∈ [0.5, 1)`, then `ln x = e·ln2 + 2·atanh((m−1)/(m+1))`.
fn det_neg_ln_1p(u: f64) -> f64 {
    let x = 1.0 - u; // ∈ (0, 1]
    debug_assert!(x > 0.0 && x <= 1.0);
    if x == 1.0 {
        return 0.0;
    }
    // Normalize: multiplying by 2 is exact for finite normals, and
    // x ≥ 2⁻⁵³ here (u has 53 fractional bits), so this terminates fast.
    let mut m = x;
    let mut e = 0i64;
    while m < 0.5 {
        m *= 2.0;
        e -= 1;
    }
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    let mut term = z;
    let mut sum = z;
    // |z| ≤ 1/3 ⇒ the series gains ≥ 3 bits per term; 24 terms far
    // exceed double precision, and the fixed count keeps rounding
    // identical regardless of early-exit heuristics.
    for k in 1..24i64 {
        term *= z2;
        sum += term / (2 * k + 1) as f64;
    }
    let ln_x = e as f64 * std::f64::consts::LN_2 + 2.0 * sum;
    -ln_x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fork_join() -> WorkloadSpec {
        WorkloadSpec::ForkJoin {
            waves: 1,
            width: 2,
            cycles: 10_000,
        }
    }

    #[test]
    fn deterministic_ln_matches_libm_closely() {
        // Compare on the exact survivor x = 1 - u the sampler computes
        // (evaluating at a decimal x directly would smuggle in the
        // rounding of `1 - x` and swamp the series' own error).
        for &u in &[
            0.015625,
            0.25,
            0.5,
            0.75,
            0.9,
            0.99,
            0.9999,
            0.999999999,
            0.999999999999999,
        ] {
            let x = 1.0 - u;
            let ours = det_neg_ln_1p(u);
            let libm = -x.ln();
            let err = (ours - libm).abs() / libm.abs().max(1e-300);
            assert!(err < 1e-14, "u={u}: ours={ours} libm={libm}");
        }
        assert_eq!(det_neg_ln_1p(0.0), 0.0);
    }

    #[test]
    fn fixed_rate_tapes_are_evenly_spaced() {
        let tape = TrafficTape::generate(
            "t",
            &ArrivalSpec::Fixed { rate_hz: 1000.0 },
            SimDuration::from_ms(10),
            fork_join(),
            1,
        )
        .unwrap();
        assert_eq!(tape.records.len(), 10, "1 kHz over 10 ms");
        assert_eq!(tape.records[0].at_ps, 1_000_000_000);
        assert_eq!(tape.records[9].at_ps - tape.records[8].at_ps, 1_000_000_000);
        tape.verify().unwrap();
    }

    #[test]
    fn poisson_tapes_are_seeded_and_plausible() {
        let arrival = ArrivalSpec::Poisson { rate_hz: 10_000.0 };
        let dur = SimDuration::from_ms(100);
        let a = TrafficTape::generate("t", &arrival, dur, fork_join(), 7).unwrap();
        let b = TrafficTape::generate("t", &arrival, dur, fork_join(), 7).unwrap();
        let c = TrafficTape::generate("t", &arrival, dur, fork_join(), 8).unwrap();
        assert_eq!(a, b, "same seed ⇒ same tape");
        assert_ne!(a.records, c.records, "different seed ⇒ different draw");
        // Mean of Poisson(10 kHz × 0.1 s) is 1000; 5σ ≈ 160.
        let n = a.records.len() as f64;
        assert!((n - 1000.0).abs() < 200.0, "got {n} arrivals");
        a.verify().unwrap();
    }

    #[test]
    fn jsonl_round_trips_bit_identically() {
        let tape = TrafficTape::generate(
            "rt",
            &ArrivalSpec::Poisson { rate_hz: 5000.0 },
            SimDuration::from_ms(5),
            fork_join(),
            42,
        )
        .unwrap();
        let text = tape.to_jsonl();
        let back = TrafficTape::from_jsonl(&text).unwrap();
        assert_eq!(back, tape);
        assert_eq!(back.to_jsonl(), text);
        back.verify().unwrap();
    }

    #[test]
    fn verify_catches_tampering() {
        let mut tape = TrafficTape::generate(
            "v",
            &ArrivalSpec::Fixed { rate_hz: 100.0 },
            SimDuration::from_ms(50),
            fork_join(),
            1,
        )
        .unwrap();
        tape.records[0].at_ps += 1;
        let err = tape.verify().unwrap_err().to_string();
        assert!(err.contains("digest mismatch"), "{err}");

        tape.refresh_digest();
        tape.verify().unwrap();

        tape.records[2].workload = 9;
        tape.refresh_digest();
        let err = tape.verify().unwrap_err().to_string();
        assert!(err.contains("workload"), "{err}");

        let mut back_in_time = TrafficTape {
            name: "bt".into(),
            workloads: vec![fork_join()],
            records: vec![
                TapeRecord {
                    at_ps: 10,
                    workload: 0,
                    tenant: 0,
                },
                TapeRecord {
                    at_ps: 5,
                    workload: 0,
                    tenant: 0,
                },
            ],
            digest: String::new(),
        };
        back_in_time.refresh_digest();
        let err = back_in_time.verify().unwrap_err().to_string();
        assert!(err.contains("back in time"), "{err}");
    }

    #[test]
    fn kill_mid_record_tolerates_torn_tail() {
        let tape = TrafficTape::generate(
            "torn",
            &ArrivalSpec::Fixed { rate_hz: 1000.0 },
            SimDuration::from_ms(8),
            fork_join(),
            3,
        )
        .unwrap();
        let text = tape.to_jsonl();

        // Simulate a kill mid-append: chop the file partway through the
        // final record, leaving no trailing newline.
        let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
        let torn = &text[..last_line_start + (text.len() - last_line_start) / 2];
        assert!(!torn.ends_with('\n'), "fixture must end mid-record");

        let (back, truncated) = TrafficTape::parse_jsonl(torn).unwrap();
        assert!(truncated, "torn tail must be flagged");
        assert_eq!(back.records.len(), tape.records.len() - 1);

        // A *complete* (newline-terminated) torn record is corruption,
        // not a torn tail: it stays a hard error.
        let mut corrupt = text[..last_line_start + (text.len() - last_line_start) / 2].to_string();
        corrupt.push('\n');
        let err = TrafficTape::parse_jsonl(&corrupt).unwrap_err().to_string();
        assert!(err.contains("tape record"), "{err}");

        // An intact file parses un-truncated via the same path.
        let (full, truncated) = TrafficTape::parse_jsonl(&text).unwrap();
        assert!(!truncated);
        assert_eq!(full, tape);
    }

    #[test]
    fn load_includes_path_in_errors() {
        let dir = std::env::temp_dir().join(format!("cata-tape-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.tape.jsonl");
        let err = TrafficTape::load(&missing).unwrap_err().to_string();
        assert!(err.contains("nope.tape.jsonl"), "{err}");

        let bad = dir.join("bad.tape.jsonl");
        std::fs::write(&bad, "{\"not\": \"a tape header\"}\n").unwrap();
        let err = TrafficTape::load(&bad).unwrap_err().to_string();
        assert!(err.contains("bad.tape.jsonl"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
