//! Open-system service mode: streaming task-graph arrivals into one
//! simulation.
//!
//! The closed-system executor ([`SimExecutor`](crate::SimExecutor)) runs
//! *one* graph to completion and reports makespan — the paper's §V setup.
//! Real task runtimes are services: graph instances arrive continuously,
//! queue behind each other, and the interesting metrics are *tail
//! latency* (p50/p99/p999 per-graph response time), sustained throughput
//! (graphs/sec), time-in-queue vs time-in-service, and how many requests
//! an overloaded system sheds.
//!
//! The pieces:
//!
//! - [`ServiceSpec`] — a [`ScenarioSpec`](crate::exp::ScenarioSpec) base
//!   (machine, policies, workload template) plus an [`ArrivalSpec`]
//!   (Poisson, fixed-rate, or a pinned tape), an observation window, and
//!   an admission-policy key. Serde + digest-participating, like every
//!   other spec in the facade.
//! - [`TrafficTape`] — a replayable record of arrivals
//!   (`.tape.jsonl`: header + one `(at_ps, workload, tenant)` record per
//!   line, content-digested). Generated runs record the tape they drew;
//!   replaying a tape reproduces the run bit-identically.
//! - [`AdmissionPolicy`] — the pluggable gate at the door: admit-all,
//!   queue-cap, criticality-aware shedding; a registry
//!   ([`AdmissionRegistry`]) keyed by name, like the scheduler /
//!   estimator / accel registries.
//! - [`run_service`] / [`replay_tape`] — the service engine: one
//!   discrete-event simulation hosting thousands of concurrent graph
//!   instances in pooled per-instance slots, arrival events interleaved
//!   into the ordinary event queue, completions folded into streaming
//!   log-bucketed [`LatencyHistogram`](cata_sim::stats::LatencyHistogram)s
//!   (no per-sample allocation).
//! - [`ServiceReport`] — the per-run service metrics, carried on
//!   [`RunReport::service`](crate::RunReport) so service cells flow
//!   through the same stores and tables as closed-system cells.

pub mod admission;
pub mod engine;
pub mod report;
pub mod spec;
pub mod tape;

pub use admission::{
    default_admission_registry, AdmissionCtx, AdmissionPolicy, AdmissionRegistry, DEFAULT_QUEUE_CAP,
};
pub use engine::{replay_tape, replay_tape_observed, run_service, run_service_observed};
pub use report::ServiceReport;
pub use spec::{AdmissionParams, ArrivalSpec, ServiceSpec};
pub use tape::{TapeRecord, TrafficTape, TAPE_SCHEMA};
