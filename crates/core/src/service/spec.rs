//! The service-run specification: what arrives, for how long, and which
//! gate admits it.

use crate::exp::error::ExpError;
use crate::exp::spec::ScenarioSpec;
use cata_sim::time::SimDuration;
use cata_tdg::fnv1a_hex;
use serde::{Deserialize, Serialize};

/// The arrival process driving an open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Poisson arrivals: exponential interarrivals at `rate_hz` mean
    /// graph instances per second, drawn from the run seed.
    Poisson {
        /// Mean arrival rate, graph instances per second.
        rate_hz: f64,
    },
    /// Deterministic fixed-rate arrivals, one instance every
    /// `1/rate_hz` seconds.
    Fixed {
        /// Arrival rate, graph instances per second.
        rate_hz: f64,
    },
    /// Replay a pre-recorded traffic tape. The digest pins the tape's
    /// content, so a spec that names a tape names *exactly one* traffic
    /// pattern; an empty digest accepts any tape (useful while
    /// authoring).
    Tape {
        /// The tape's content digest (16 hex chars), or `""` to accept
        /// any tape.
        digest: String,
    },
}

impl ArrivalSpec {
    /// The configured rate, when the process has one.
    pub fn rate_hz(&self) -> Option<f64> {
        match self {
            ArrivalSpec::Poisson { rate_hz } | ArrivalSpec::Fixed { rate_hz } => Some(*rate_hz),
            ArrivalSpec::Tape { .. } => None,
        }
    }
}

/// Parameters for the built-in admission policies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdmissionParams {
    /// In-flight instance cap for `queue-cap` / `shed-noncritical`;
    /// `None` uses [`DEFAULT_QUEUE_CAP`](super::DEFAULT_QUEUE_CAP).
    pub queue_cap: Option<usize>,
}

/// A full open-system service run: base scenario + arrival process +
/// observation window + admission gate.
///
/// Serialized as JSON (`repro serve spec.json`); the digest over the
/// serialized form identifies the run in stores, exactly like
/// [`spec_digest`](crate::exp::spec_digest) does for closed-system
/// cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Machine, policies, costs, seed, and the workload template every
    /// arriving instance is stamped from.
    pub base: ScenarioSpec,
    /// The arrival process.
    pub arrival: ArrivalSpec,
    /// Arrivals are generated in `[0, duration]`; the run then drains
    /// all admitted instances. Ignored when replaying a tape (the tape
    /// *is* the window).
    pub duration: SimDuration,
    /// Admission-policy registry key (`admit-all`, `queue-cap`,
    /// `shed-noncritical`, or an externally registered key).
    pub admission: String,
    /// Parameters for the admission policy; `None` means defaults.
    pub admission_params: Option<AdmissionParams>,
}

impl ServiceSpec {
    /// A spec with the default gate (`admit-all`).
    pub fn new(base: ScenarioSpec, arrival: ArrivalSpec, duration: SimDuration) -> Self {
        ServiceSpec {
            base,
            arrival,
            duration,
            admission: "admit-all".to_string(),
            admission_params: None,
        }
    }

    /// Replaces the admission policy key.
    pub fn with_admission(mut self, key: impl Into<String>) -> Self {
        self.admission = key.into();
        self
    }

    /// Sets the in-flight cap for the bounded admission policies.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.admission_params = Some(AdmissionParams {
            queue_cap: Some(cap),
        });
        self
    }

    /// Structural validation (beyond what the base spec checks).
    pub fn validate(&self) -> Result<(), ExpError> {
        self.base.validate()?;
        if let Some(rate) = self.arrival.rate_hz() {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(ExpError::InvalidSpec(format!(
                    "arrival rate must be finite and positive, got {rate}"
                )));
            }
        }
        if !matches!(self.arrival, ArrivalSpec::Tape { .. }) && self.duration.is_zero() {
            return Err(ExpError::InvalidSpec(
                "service duration must be positive".to_string(),
            ));
        }
        if self.admission.is_empty() {
            return Err(ExpError::InvalidSpec(
                "admission policy key must not be empty".to_string(),
            ));
        }
        Ok(())
    }

    /// Compact JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("service spec serializes")
    }

    /// Pretty JSON form (for files humans edit).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("service spec serializes")
    }

    /// Parses the JSON form.
    pub fn from_json(text: &str) -> Result<Self, ExpError> {
        serde_json::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Content digest over the serialized spec — the service run's
    /// identity in stores.
    pub fn digest(&self) -> String {
        fnv1a_hex(self.to_json().bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::spec::WorkloadSpec;

    fn base() -> ScenarioSpec {
        ScenarioSpec::preset(
            "CATA",
            4,
            WorkloadSpec::ForkJoin {
                waves: 2,
                width: 4,
                cycles: 100_000,
            },
        )
        .unwrap()
        .with_small_machine(8, 4)
    }

    #[test]
    fn spec_round_trips_and_digests_stably() {
        let spec = ServiceSpec::new(
            base(),
            ArrivalSpec::Poisson { rate_hz: 500.0 },
            SimDuration::from_ms(10),
        )
        .with_admission("queue-cap")
        .with_queue_cap(32);
        spec.validate().unwrap();
        let json = spec.to_json();
        let back = ServiceSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
        assert_eq!(spec.digest().len(), 16);

        // Any field change moves the digest — the digest is the identity.
        let mut other = spec.clone();
        other.admission = "admit-all".into();
        assert_ne!(other.digest(), spec.digest());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let ok = ServiceSpec::new(
            base(),
            ArrivalSpec::Fixed { rate_hz: 100.0 },
            SimDuration::from_ms(1),
        );
        ok.validate().unwrap();

        let mut bad = ok.clone();
        bad.arrival = ArrivalSpec::Poisson { rate_hz: 0.0 };
        assert!(bad.validate().is_err());

        let mut bad = ok.clone();
        bad.arrival = ArrivalSpec::Fixed { rate_hz: f64::NAN };
        assert!(bad.validate().is_err());

        let mut bad = ok.clone();
        bad.duration = SimDuration::ZERO;
        assert!(bad.validate().is_err());

        let mut bad = ok;
        bad.admission = String::new();
        assert!(bad.validate().is_err());
    }
}
