//! The open-system discrete-event engine: one simulation hosting many
//! concurrent graph instances.
//!
//! Mirrors the closed-system engine in [`crate::sim_exec`] — same core
//! lifecycle (prologue → body milestones → epilogue), same policy /
//! estimator / acceleration-manager surfaces, same idle-index dispatch
//! walk — with three structural differences:
//!
//! - **Arrivals, not a master thread.** Tape records become `Arrival`
//!   events interleaved into the ordinary queue; an admitted instance's
//!   tasks are all submitted at its arrival instant (the graph came off
//!   a tape, so the runtime knows it upfront), with per-task criticality
//!   levels precomputed once per *distinct workload*, not per instance.
//! - **Pooled per-instance state.** Each live instance owns a slot
//!   (indegree vector, remaining count, timestamps) recycled through a
//!   free list — thousands of concurrent instances reuse a few dozen
//!   slots' allocations. Global task ids are `slot · stride + local`,
//!   so scheduler queues can mix tasks of many instances.
//! - **Streaming metrics.** Completions fold into log-bucketed
//!   [`LatencyHistogram`]s (O(1) per sample, no allocation), because an
//!   open-system run can complete millions of instances.

use super::admission::{AdmissionCtx, AdmissionPolicy, AdmissionRegistry};
use super::report::ServiceReport;
use super::spec::{ArrivalSpec, ServiceSpec};
use super::tape::{TapeRecord, TrafficTape};
use crate::accel::{AccelEffects, AccelManager};
use crate::exp::error::ExpError;
use crate::exp::progress::{ProgressEvent, ProgressWriter};
use crate::exp::registry::{FactoryCtx, PolicyKeys, PolicyRegistries, ResolvedPolicies};
use crate::exp::suite::derive_seed;
use crate::fault::{default_recovery_registry, RecoveryAction, RecoveryCtx, RecoveryPolicy};
use crate::mem::default_arbitration_registry;
use crate::policy::{DispatchCtx, SchedulerPolicy};
use crate::report::RunReport;
use crate::sim_exec::{EngineParams, FaultState, IdleIndex, MemState, RECONFIG_RETRY_DELAY};
use cata_power::integrate_machine;
use cata_sim::activity::Activity;
use cata_sim::event::EventQueue;
use cata_sim::machine::{CoreId, Machine};
use cata_sim::memory::ArbitrationPolicy;
use cata_sim::progress::{Milestone, RunningTask};
use cata_sim::stats::{Counters, LatencyHistogram};
use cata_sim::time::{SimDuration, SimTime};
use cata_tdg::{GraphView, TaskGraph, TaskId};
use std::sync::Arc;

/// Seed-stream tag for arrival generation, so the traffic draw is
/// decorrelated from the run seed the policies see.
const ARRIVAL_STREAM: u64 = 0x7A9E_0001;

/// Heartbeat cadence of an observed run: one
/// [`ServiceSnapshot`](ProgressEvent::ServiceSnapshot) per this many
/// arrivals (plus one final snapshot at drain). Arrival-indexed rather
/// than wall-clocked so the emitted stream is a deterministic function of
/// the tape (only the `unix_ms` stamps differ between runs).
const SNAPSHOT_EVERY_ARRIVALS: u64 = 64;

/// Runs a service spec end to end: generates the traffic tape its
/// arrival process describes, replays it, and returns both the report
/// and the tape (so callers can store/record the traffic they measured).
///
/// Record → replay bit-identity holds by construction: this function
/// *only* generates the tape and delegates to [`replay_tape`], so a
/// recorded tape replays through exactly the code path that produced the
/// original report.
pub fn run_service(
    spec: &ServiceSpec,
    registries: &PolicyRegistries,
    admissions: &AdmissionRegistry,
) -> Result<(RunReport, TrafficTape), ExpError> {
    run_service_observed(spec, registries, admissions, None)
}

/// Like [`run_service`], with heartbeat telemetry: the engine streams a
/// [`ServiceSnapshot`](ProgressEvent::ServiceSnapshot) of its accounting
/// (arrivals, drops, in-flight, p99-so-far) into `progress` every
/// [`SNAPSHOT_EVERY_ARRIVALS`] arrivals plus once at drain. Heartbeats
/// are best-effort and purely observational — the report is bit-identical
/// with `None`.
pub fn run_service_observed(
    spec: &ServiceSpec,
    registries: &PolicyRegistries,
    admissions: &AdmissionRegistry,
    progress: Option<&ProgressWriter>,
) -> Result<(RunReport, TrafficTape), ExpError> {
    spec.validate()?;
    if matches!(spec.arrival, ArrivalSpec::Tape { .. }) {
        return Err(ExpError::InvalidSpec(
            "spec pins a traffic tape; load the tape file and call replay_tape".to_string(),
        ));
    }
    let tape = TrafficTape::generate(
        format!("{}-traffic", spec.base.name),
        &spec.arrival,
        spec.duration,
        spec.base.workload.clone(),
        derive_seed(spec.base.seed, ARRIVAL_STREAM),
    )?;
    let report = replay_tape_observed(spec, &tape, registries, admissions, progress)?;
    Ok((report, tape))
}

/// Replays a traffic tape under `spec`'s machine, policies, and
/// admission gate. Verifies the tape (and, for tape-pinned specs, the
/// digest pin) first. Same spec + same tape ⇒ bit-identical report.
pub fn replay_tape(
    spec: &ServiceSpec,
    tape: &TrafficTape,
    registries: &PolicyRegistries,
    admissions: &AdmissionRegistry,
) -> Result<RunReport, ExpError> {
    replay_tape_observed(spec, tape, registries, admissions, None)
}

/// Like [`replay_tape`], with heartbeat telemetry (see
/// [`run_service_observed`]).
pub fn replay_tape_observed(
    spec: &ServiceSpec,
    tape: &TrafficTape,
    registries: &PolicyRegistries,
    admissions: &AdmissionRegistry,
    progress: Option<&ProgressWriter>,
) -> Result<RunReport, ExpError> {
    spec.base.validate()?;
    let digest = tape.verify()?;
    if let ArrivalSpec::Tape { digest: pinned } = &spec.arrival {
        if !pinned.is_empty() && *pinned != digest {
            return Err(ExpError::InvalidSpec(format!(
                "spec pins traffic tape {pinned}, but the loaded tape digests to {digest}"
            )));
        }
    }
    let params = spec.base.params_or_default();
    let resolved = registries.resolve(
        &PolicyKeys {
            scheduler: spec.base.scheduler.clone(),
            estimator: spec.base.estimator.clone(),
            accel: spec.base.accel.clone(),
        },
        &spec.base.machine,
        spec.base.fast_cores,
        spec.base.seed,
        &params,
    )?;
    let admission = admissions.build(
        &spec.admission,
        &spec.admission_params.clone().unwrap_or_default(),
    )?;
    // Fault injection composes with admission control: admission gates
    // arrivals, the recovery policy handles tasks displaced by failures.
    let recovery: Option<Box<dyn RecoveryPolicy>> = match &spec.base.faults {
        Some(f) => Some(default_recovery_registry().build(&f.recovery, f)?),
        None => None,
    };

    // Build each distinct workload once and precompute its per-task
    // criticality levels: a fresh estimator sees the whole graph
    // submitted in order (the steady-state view — every instance of a
    // workload classifies identically, which is also what makes the
    // per-arrival work O(tasks) instead of O(estimator)).
    let mut graphs = Vec::with_capacity(tape.workloads.len());
    for w in &tape.workloads {
        let (graph, label) = w.build_labeled_graph()?;
        let fctx = FactoryCtx {
            machine: &resolved.machine,
            is_fast_static: &resolved.is_fast_static,
            fast_cores: spec.base.fast_cores,
            seed: spec.base.seed,
            params: &params,
        };
        let mut est = registries.build_estimator(&spec.base.estimator, &fctx)?;
        for t in graph.task_ids() {
            est.on_submit(&graph, t);
        }
        let levels: Vec<u8> = graph
            .task_ids()
            .map(|t| est.classify_level(&graph, t))
            .collect();
        let critical = levels.iter().any(|&l| l > 0);
        // One SoA snapshot per *distinct* workload, shared by every
        // instance: arrivals seed indegrees from its predecessor counts
        // and completions walk its CSR successor spans.
        let view = GraphView::from_graph(&graph);
        graphs.push(GraphEntry {
            graph,
            view,
            label,
            levels,
            critical,
        });
    }

    let stride = graphs
        .iter()
        .map(|g| g.graph.num_tasks())
        .max()
        .unwrap_or(0)
        .max(1) as u32;
    // Global ids are u32; slots ≤ arrivals, so this conservative bound
    // guarantees `slot · stride + local` never wraps.
    if (tape.records.len() as u64 + 1).saturating_mul(u64::from(stride)) > u64::from(u32::MAX) {
        return Err(ExpError::InvalidSpec(format!(
            "tape of {} arrivals × stride {stride} exceeds the 2³² task-id space",
            tape.records.len()
        )));
    }

    let workload_label = if graphs.len() == 1 {
        graphs[0].label.clone()
    } else {
        tape.name.clone()
    };
    let mut engine_params = EngineParams::from(&spec.base);
    engine_params.event_queue = crate::exp::registry::default_event_queue_registry()
        .resolve_spec(spec.base.event_queue.as_deref())?;
    // Shared-memory contention composes with service load the same way
    // it does with a closed-system run: the gate slows execution, which
    // backs up the ready queues, which admission control then sees.
    let arbitration: Option<Box<dyn ArbitrationPolicy>> = match &engine_params.memory {
        Some(m) => Some(default_arbitration_registry().build(&m.arbitration, m)?),
        None => None,
    };
    let mut engine = ServiceEngine::new(
        engine_params,
        &graphs,
        &tape.records,
        stride,
        resolved,
        admission,
        recovery,
        arbitration,
    );
    engine.progress = progress;
    engine.run(&workload_label)
}

/// One distinct workload: its graph plus the precomputed classification.
struct GraphEntry {
    graph: Arc<TaskGraph>,
    /// SoA snapshot of `graph` (CSR successors, predecessor counts).
    view: GraphView,
    label: String,
    /// Per-task criticality level (estimator's steady-state view).
    levels: Vec<u8>,
    /// Any task classifies critical — the instance-level flag admission
    /// policies see.
    critical: bool,
}

/// Service-engine events: the closed-system engine's core lifecycle plus
/// tape arrivals.
#[derive(Debug, Clone, Copy)]
enum SEv {
    /// The next tape record's instance arrives.
    Arrival,
    /// A core's runtime prologue finished; the task body begins.
    TaskBegin { core: u32, epoch: u64 },
    /// A running task reached its next milestone.
    Milestone { core: u32, epoch: u64, gen: u64 },
    /// A core's runtime epilogue finished; it requests new work.
    CoreFree { core: u32, epoch: u64 },
    /// A DVFS transition may have settled on a core.
    DvfsSettle { core: u32 },
    /// An idle core's OS timeout expired; it halts (C1).
    IdleHalt { core: u32, epoch: u64 },
    /// A core stayed idle past the deceleration debounce.
    IdleDecel { core: u32, epoch: u64 },
    /// Injected fault: the core fail-stops (forever if `permanent`).
    CoreFail { core: u32, permanent: bool },
    /// Injected fault schedule: a failed core's recovery window closed.
    CoreRecover { core: u32 },
    /// A granted task's memory-bandwidth hold expired; the slot frees and
    /// arbitration picks the next waiter (contended memory only).
    MemRelease { core: u32, epoch: u64 },
}

/// What a core is doing (task ids are *global*: `slot·stride + local`).
#[derive(Debug)]
enum CoreRun<'g> {
    Idle,
    Halted,
    Prologue {
        task: TaskId,
    },
    Running {
        task: TaskId,
        rt: RunningTask<'g>,
    },
    /// Parked at the memory gate: every bandwidth slot is taken. The
    /// core stays busy (spinning on the access) until arbitration grants
    /// a slot.
    MemWait {
        task: TaskId,
    },
    Epilogue,
}

#[derive(Debug)]
struct CoreCtl<'g> {
    run: CoreRun<'g>,
    epoch: u64,
    halt_scheduled: bool,
    idle_notified: bool,
}

/// Pooled per-instance state, recycled through a free list.
#[derive(Debug, Default)]
struct Slot {
    /// Index into the workload table.
    graph: u32,
    /// Remaining unfinished predecessors per local task (buffer reused
    /// across instances).
    indegree: Vec<u32>,
    /// Tasks not yet completed.
    remaining: u32,
    /// Arrival instant.
    arrival: SimTime,
    /// First task assignment (end of queue wait), once dispatched.
    started: Option<SimTime>,
    /// Instance dropped by a shedding recovery policy mid-flight: its
    /// queued tasks are discarded at dispatch, completions of its
    /// already-running tasks are ignored, and the slot is retired (never
    /// recycled — a reused slot would alias stale queued global ids).
    shed: bool,
}

struct ServiceEngine<'g> {
    cfg: EngineParams,
    graphs: &'g [GraphEntry],
    records: &'g [TapeRecord],
    stride: u32,
    machine: Machine,
    policy: Box<dyn SchedulerPolicy>,
    accel: Box<dyn AccelManager>,
    admission: Box<dyn AdmissionPolicy>,
    events: EventQueue<SEv>,
    cores: Vec<CoreCtl<'g>>,
    idle: IdleIndex,
    idle_dirty: bool,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Criticality per global task id (sized `slots.len() · stride`).
    crit: Vec<bool>,
    /// Admitted instances not yet completed.
    live: usize,
    /// Next unconsumed tape record.
    next_rec: usize,
    counters: Counters,
    last_completion: SimTime,
    /// Time of the last processed event (≥ `last_completion`; the
    /// machine-finish instant even when trailing arrivals were dropped).
    horizon: SimTime,
    is_fast_static: Vec<bool>,
    // Service accounting.
    arrivals: u64,
    admitted: u64,
    dropped: u64,
    completed: u64,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    service_time: LatencyHistogram,
    /// Fault-injection bookkeeping; `None` on fault-free runs.
    fault: Option<FaultState>,
    /// Memory-gate bookkeeping; `None` on the uncontended machine.
    mem: Option<MemState>,
    /// Heartbeat sink of an observed run; `None` runs silently.
    progress: Option<&'g ProgressWriter>,
}

impl<'g> ServiceEngine<'g> {
    #[allow(clippy::too_many_arguments)] // one constructor, one call site
    fn new(
        cfg: EngineParams,
        graphs: &'g [GraphEntry],
        records: &'g [TapeRecord],
        stride: u32,
        resolved: ResolvedPolicies,
        admission: Box<dyn AdmissionPolicy>,
        recovery: Option<Box<dyn RecoveryPolicy>>,
        arbitration: Option<Box<dyn ArbitrationPolicy>>,
    ) -> Self {
        let n_cores = cfg.machine.num_cores;
        // The per-task vectors start empty and grow with the slot pool.
        let fault = cfg
            .faults
            .as_ref()
            .zip(recovery)
            .map(|(spec, policy)| FaultState::new(spec, policy, cfg.seed, n_cores, 0));
        let ResolvedPolicies {
            policy,
            estimator: _,
            accel,
            mut machine,
            is_fast_static,
            caps,
        } = resolved;

        // A contended scenario attaches the shared memory subsystem to
        // the machine, exactly as the closed-system engine does.
        let mem = cfg.memory.as_ref().zip(arbitration).map(|(spec, policy)| {
            machine.attach_memory(spec.slots as usize);
            MemState::new(spec, policy, n_cores)
        });

        let mut events = EventQueue::with_backend(cfg.event_queue);
        events.reserve(4096.min(records.len() * 4 + 64));
        let mut idle = IdleIndex::default();
        idle.reset(n_cores, caps.prefer_fast, &is_fast_static);

        ServiceEngine {
            cfg,
            graphs,
            records,
            stride,
            machine,
            policy,
            accel,
            admission,
            events,
            cores: (0..n_cores)
                .map(|_| CoreCtl {
                    run: CoreRun::Idle,
                    epoch: 0,
                    halt_scheduled: false,
                    idle_notified: false,
                })
                .collect(),
            idle,
            idle_dirty: true,
            slots: Vec::new(),
            free: Vec::new(),
            crit: Vec::new(),
            live: 0,
            next_rec: 0,
            counters: Counters::default(),
            last_completion: SimTime::ZERO,
            horizon: SimTime::ZERO,
            is_fast_static,
            arrivals: 0,
            admitted: 0,
            dropped: 0,
            completed: 0,
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            service_time: LatencyHistogram::new(),
            fault,
            mem,
            progress: None,
        }
    }

    /// Streams one heartbeat snapshot of the service accounting.
    /// Best-effort: a telemetry write error never fails the run.
    fn snapshot(&self, now: SimTime) {
        if let Some(w) = self.progress {
            let _ = w.emit(ProgressEvent::ServiceSnapshot {
                arrivals: self.arrivals,
                admitted: self.admitted,
                completed: self.completed,
                dropped: self.dropped,
                in_flight: self.live as u64,
                p99_ps: self.latency.quantile(0.99).as_ps(),
                sim_time_ps: now.as_ps(),
            });
        }
    }

    /// Splits a global task id into (slot index, local task id).
    #[inline]
    fn split(&self, task: TaskId) -> (usize, TaskId) {
        (
            (task.0 / self.stride) as usize,
            TaskId(task.0 % self.stride),
        )
    }

    /// The workload entry a global task id belongs to. Returned at the
    /// graph-table lifetime (not `&self`), so callers can keep it across
    /// mutations of engine state.
    #[inline]
    fn entry_of(&self, task: TaskId) -> &'g GraphEntry {
        let (slot, _) = self.split(task);
        let graphs = self.graphs;
        &graphs[self.slots[slot].graph as usize]
    }

    fn run(mut self, workload: &str) -> Result<RunReport, ExpError> {
        let init = self.accel.on_init(&mut self.machine, SimTime::ZERO);
        self.push_settles(&init);

        if let Some(first) = self.records.first() {
            self.events
                .push(SimTime::from_ps(first.at_ps), SEv::Arrival);
        }

        // The injected fault schedule rides the ordinary event queue.
        if let Some(fs) = &self.fault {
            for (at, ev) in fs.schedule_into(
                |core, permanent| SEv::CoreFail { core, permanent },
                |core| SEv::CoreRecover { core },
            ) {
                self.events.push(at, ev);
            }
        }

        // Drain: every admitted instance runs to completion, however far
        // past the arrival window its tail stretches.
        while self.live > 0 || self.next_rec < self.records.len() {
            let Some((now, ev)) = self.events.pop() else {
                if let Some(fs) = &self.fault {
                    // An exhausted queue with live instances is a *clean*
                    // outcome under fault injection: the schedule removed
                    // the capacity the tail needed.
                    let dead = fs.failed.iter().filter(|&&f| f).count();
                    return Err(ExpError::Stalled(format!(
                        "fault schedule removed the capacity the service run needed: \
                         {} live instance(s), record {}/{}, {} ready, {dead} core(s) failed",
                        self.live,
                        self.next_rec,
                        self.records.len(),
                        self.policy.len()
                    )));
                }
                panic!(
                    "service deadlock: {} live instances, record {}/{}, queue len {}",
                    self.live,
                    self.next_rec,
                    self.records.len(),
                    self.policy.len()
                );
            };
            self.horizon = now;
            self.counters.sim_events += 1;
            self.handle(now, ev);
            self.dispatch(now);
        }

        // The last processed event bounds every machine-activity stamp;
        // usually it *is* the last completion, but a trailing dropped
        // arrival or idle-halt can sit later.
        let end = self.horizon.max(self.last_completion);
        // Final heartbeat: the drained totals a tailing dashboard settles
        // on.
        self.snapshot(end);
        // Close the capacity ledger: cores still failed at run end lost
        // the remainder of the observation window.
        let fault = self.fault.take().map(|mut fs| {
            for i in 0..fs.failed.len() {
                if fs.failed[i] {
                    if let Some(t) = fs.fail_since[i].take() {
                        fs.report.capacity_lost += end.saturating_since(t);
                    }
                }
            }
            fs.report
        });
        let memory = self.mem.take().map(|ms| ms.report);
        self.machine.finish(end);
        let energy = integrate_machine(&self.machine, end.since(SimTime::ZERO), &self.cfg.power);
        let stats = self.accel.stats();
        let agg_core_time = end.as_ps().saturating_mul(self.machine.num_cores() as u64);
        let secs = end.since(SimTime::ZERO).as_secs_f64();
        let service = ServiceReport {
            arrivals: self.arrivals,
            admitted: self.admitted,
            dropped: self.dropped,
            completed: self.completed,
            in_flight: self.live as u64,
            duration: end.since(SimTime::ZERO),
            graphs_per_sec: if secs > 0.0 {
                self.completed as f64 / secs
            } else {
                0.0
            },
            latency: self.latency,
            queue_wait: self.queue_wait,
            service_time: self.service_time,
        };
        Ok(RunReport {
            label: self.cfg.label.clone(),
            workload: workload.to_string(),
            fast_cores: self.cfg.fast_cores,
            exec_time: end.since(SimTime::ZERO),
            energy,
            counters: self.counters.clone(),
            lock_waits: stats.lock_waits,
            reconfig_latencies: stats.latencies,
            reconfig_overhead: stats.overhead_total,
            reconfig_time_share: if agg_core_time == 0 {
                0.0
            } else {
                stats.overhead_total.as_ps() as f64 / agg_core_time as f64
            },
            core_utilization: self
                .machine
                .cores()
                .map(|c| c.timeline().utilization())
                .collect(),
            tasks: self.counters.tasks_completed as usize,
            trace_counts: None,
            effective_cores: None,
            service: Some(service),
            fault,
            memory,
        })
    }

    fn handle(&mut self, now: SimTime, ev: SEv) {
        match ev {
            SEv::Arrival => self.arrival(now),
            SEv::TaskBegin { core, epoch } => self.task_begin(CoreId(core), epoch, now),
            SEv::Milestone { core, epoch, gen } => self.milestone(CoreId(core), epoch, gen, now),
            SEv::CoreFree { core, epoch } => self.core_free(CoreId(core), epoch, now),
            SEv::DvfsSettle { core } => self.dvfs_settle(CoreId(core), now),
            SEv::IdleHalt { core, epoch } => self.idle_halt(CoreId(core), epoch, now),
            SEv::IdleDecel { core, epoch } => self.idle_decel(CoreId(core), epoch, now),
            SEv::CoreFail { core, permanent } => self.core_fail(CoreId(core), permanent, now),
            SEv::CoreRecover { core } => self.core_recover(CoreId(core), now),
            SEv::MemRelease { core, epoch } => self.mem_release(CoreId(core), epoch, now),
        }
    }

    /// One tape record: chain the next arrival, gate this one, and (if
    /// admitted) submit the whole instance.
    fn arrival(&mut self, now: SimTime) {
        let rec = self.records[self.next_rec];
        self.next_rec += 1;
        if let Some(next) = self.records.get(self.next_rec) {
            self.events.push(SimTime::from_ps(next.at_ps), SEv::Arrival);
        }
        self.arrivals += 1;
        if self.arrivals.is_multiple_of(SNAPSHOT_EVERY_ARRIVALS) {
            self.snapshot(now);
        }

        let entry = &self.graphs[rec.workload as usize];
        let ctx = AdmissionCtx {
            now,
            in_flight: self.live,
            ready_tasks: self.policy.len(),
            critical: entry.critical,
            tenant: rec.tenant,
        };
        if !self.admission.admit(&ctx) {
            self.dropped += 1;
            return;
        }
        self.admitted += 1;

        let n = entry.graph.num_tasks();
        if n == 0 {
            // An empty instance completes the moment it is admitted.
            self.completed += 1;
            self.last_completion = self.last_completion.max(now);
            self.latency.record(SimDuration::ZERO);
            self.queue_wait.record(SimDuration::ZERO);
            self.service_time.record(SimDuration::ZERO);
            return;
        }

        let slot_idx = self.alloc_slot(rec.workload, now);
        self.live += 1;
        let base = slot_idx * self.stride;
        for t in entry.graph.task_ids() {
            if self.slots[slot_idx as usize].indegree[t.index()] == 0 {
                self.make_ready(TaskId(base + t.0), entry.levels[t.index()]);
            }
        }
    }

    /// Takes a slot off the free list (or grows the pool) and stamps it
    /// for one instance of `graph`.
    fn alloc_slot(&mut self, graph: u32, now: SimTime) -> u32 {
        let idx = self.free.pop().unwrap_or_else(|| {
            let i = self.slots.len() as u32;
            self.slots.push(Slot::default());
            self.crit
                .resize(self.slots.len() * self.stride as usize, false);
            i
        });
        let entry = &self.graphs[graph as usize];
        let s = &mut self.slots[idx as usize];
        s.graph = graph;
        s.remaining = entry.graph.num_tasks() as u32;
        s.arrival = now;
        s.started = None;
        s.shed = false;
        // Indegree seeding is a copy of the view's predecessor-count
        // array — one memcpy per arriving instance instead of a
        // vector-length read per task.
        s.indegree.clear();
        s.indegree.extend_from_slice(entry.view.pred_counts());
        let id_space = self.slots.len() * self.stride as usize;
        if let Some(fs) = self.fault.as_mut() {
            fs.grow_tasks(id_space);
        }
        idx
    }

    fn make_ready(&mut self, task: TaskId, level: u8) {
        self.crit[task.index()] = level > 0;
        self.policy.enqueue(task, level);
    }

    /// True if `task` belongs to an instance a recovery policy shed.
    #[inline]
    fn is_shed(&self, task: TaskId) -> bool {
        self.fault.is_some() && self.slots[(task.0 / self.stride) as usize].shed
    }

    fn push_settles(&mut self, effects: &AccelEffects) {
        debug_assert!(
            self.machine.accelerated_count() <= self.cfg.fast_cores,
            "committed budget exceeded: {} > {}",
            self.machine.accelerated_count(),
            self.cfg.fast_cores
        );
        for &(at, core) in &effects.settles {
            self.events.push(at, SEv::DvfsSettle { core: core.0 });
        }
    }

    /// Identical walk to the closed-system engine's dispatch (same
    /// idle-index order, same idle-timer arming) — the scheduling
    /// semantics under service load are the paper's, only the task
    /// population differs.
    fn dispatch(&mut self, now: SimTime) {
        while !self.policy.is_empty() {
            let mut assigned = false;
            let mut cur = self.idle.first();
            while let Some(core) = cur {
                let nxt = self.idle.next_after(core);
                let ctx = DispatchCtx {
                    fast_core_idle: self.idle.any_fast_available()
                        && !self.is_fast_static[core.index()],
                };
                if self.policy.has_work_for(core, ctx) {
                    if let Some(task) = self.policy.dequeue(core, ctx, &mut self.counters) {
                        if self.is_shed(task) {
                            // A shed instance's queued task: discard it and
                            // let the same core draw again.
                            assigned = true;
                            continue;
                        }
                        self.assign(core, task, now);
                        assigned = true;
                    }
                }
                cur = nxt;
            }
            if !assigned {
                break;
            }
        }
        if !self.idle_dirty {
            return;
        }
        self.idle_dirty = false;
        for i in 0..self.cores.len() {
            let c = &mut self.cores[i];
            if !matches!(c.run, CoreRun::Idle) {
                continue;
            }
            if !c.idle_notified {
                c.idle_notified = true;
                let epoch = c.epoch;
                self.events.push(
                    now + self.cfg.idle_decel_delay,
                    SEv::IdleDecel {
                        core: i as u32,
                        epoch,
                    },
                );
            }
            if let Some(delay) = self.cfg.idle_to_halt {
                let c = &mut self.cores[i];
                if !c.halt_scheduled {
                    c.halt_scheduled = true;
                    let epoch = c.epoch;
                    self.events.push(
                        now + delay,
                        SEv::IdleHalt {
                            core: i as u32,
                            epoch,
                        },
                    );
                }
            }
        }
    }

    fn assign(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        self.idle.remove(core);
        // A displaced task landing on a survivor closes its recovery
        // window: this dispatch is the re-execution.
        if let Some(fs) = self.fault.as_mut() {
            if let Some(at) = fs.displaced_at[task.index()].take() {
                fs.report.reexecuted += 1;
                fs.report.recovery_latency.record(now.saturating_since(at));
            }
        }
        // First dispatch of the instance ends its queue wait.
        let (slot, _) = self.split(task);
        if self.slots[slot].started.is_none() {
            self.slots[slot].started = Some(now);
        }

        let was_halted = matches!(self.cores[core.index()].run, CoreRun::Halted);
        let ctl = &mut self.cores[core.index()];
        ctl.epoch += 1;
        ctl.halt_scheduled = false;
        ctl.idle_notified = false;
        let epoch = ctl.epoch;
        ctl.run = CoreRun::Prologue { task };
        self.machine.set_activity(core, now, Activity::Busy);

        let mut t = now;
        if was_halted {
            let e = self
                .accel
                .on_core_wake(core, now, &mut self.machine, &mut self.counters);
            self.push_settles(&e);
            t += self.cfg.wake_latency;
        }
        t += self.cfg.costs.dispatch;

        let critical = self.crit[task.index()];
        let e = self
            .accel
            .on_task_start(core, critical, t, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
        self.events.push(
            e.resume_or(t),
            SEv::TaskBegin {
                core: core.0,
                epoch,
            },
        );
    }

    fn task_begin(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch {
            return; // stale
        }
        let CoreRun::Prologue { task } = ctl.run else {
            return;
        };
        self.gate_or_begin(core, task, now);
    }

    /// Routes a task that is ready to execute through the shared-memory
    /// gate: memory-free tasks (and uncontended machines) start the body
    /// immediately; a memory-demanding task either acquires a bandwidth
    /// slot or parks in [`CoreRun::MemWait`] until arbitration grants one.
    fn gate_or_begin(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        let (_, local) = self.split(task);
        let mem_ps = self.entry_of(task).view.mem_ps(local);
        if self.mem.is_none() || mem_ps == 0 {
            self.begin_body(core, task, now);
            return;
        }
        let crit = self.crit[task.index()];
        let ms = self.mem.as_mut().expect("checked above");
        ms.report.requests += 1;
        ms.report.demand += SimDuration::from_ps(mem_ps);
        if crit {
            ms.report.crit_requests += 1;
        }
        let sub = self
            .machine
            .memory_mut()
            .expect("memory subsystem attached when MemState exists");
        if sub.try_acquire() {
            ms.holding[core.index()] = true;
            ms.report.serviced += SimDuration::from_ps(mem_ps);
            let epoch = self.cores[core.index()].epoch;
            self.events.push(
                now + SimDuration::from_ps(mem_ps),
                SEv::MemRelease {
                    core: core.0,
                    epoch,
                },
            );
            self.begin_body(core, task, now);
        } else {
            sub.enqueue(core, u8::from(crit), mem_ps);
            ms.report.waited += 1;
            ms.wait_since[core.index()] = Some(now);
            self.cores[core.index()].run = CoreRun::MemWait { task };
        }
    }

    /// Starts the task body proper (after any memory gating).
    fn begin_body(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        let (_, local) = self.split(task);
        let entry = self.entry_of(task);
        let rt = RunningTask::start(
            &entry.graph.task(local).profile,
            now,
            self.machine.core(core).frequency(),
        );
        let epoch = self.cores[core.index()].epoch;
        self.schedule_milestone(core, epoch, &rt);
        self.cores[core.index()].run = CoreRun::Running { task, rt };
    }

    /// A granted hold expired: free the bandwidth slot and run the
    /// arbitration policy over the wait queue.
    fn mem_release(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        if self.cores[core.index()].epoch != epoch {
            return; // the hold was already torn down (core failed)
        }
        let Some(ms) = self.mem.as_mut() else {
            return;
        };
        if !ms.holding[core.index()] {
            return;
        }
        ms.holding[core.index()] = false;
        self.machine
            .memory_mut()
            .expect("memory subsystem attached when MemState exists")
            .release();
        self.mem_grant(now);
    }

    /// Grants freed bandwidth slots to queued waiters until either runs
    /// out, charging each grantee its measured wait.
    fn mem_grant(&mut self, now: SimTime) {
        loop {
            let Some(ms) = self.mem.as_mut() else {
                return;
            };
            let sub = self
                .machine
                .memory_mut()
                .expect("memory subsystem attached when MemState exists");
            let Some(req) = sub.grant(ms.policy.as_mut()) else {
                return;
            };
            let core = req.core;
            let wait = ms.wait_since[core.index()]
                .take()
                .map(|since| now.saturating_since(since))
                .unwrap_or(SimDuration::ZERO);
            ms.report.total_wait += wait;
            if wait > ms.report.max_wait {
                ms.report.max_wait = wait;
            }
            if req.crit_level > 0 {
                ms.report.crit_wait += wait;
            }
            ms.report.serviced += wait + SimDuration::from_ps(req.mem_ps);
            ms.holding[core.index()] = true;
            let epoch = self.cores[core.index()].epoch;
            self.events.push(
                now + SimDuration::from_ps(req.mem_ps),
                SEv::MemRelease {
                    core: core.0,
                    epoch,
                },
            );
            let CoreRun::MemWait { task } = self.cores[core.index()].run else {
                debug_assert!(false, "granted core {core} was not in MemWait");
                continue;
            };
            self.begin_body(core, task, now);
        }
    }

    fn schedule_milestone(&mut self, core: CoreId, epoch: u64, rt: &RunningTask<'_>) {
        if let Some(m) = rt.next_milestone() {
            self.events.push(
                m.time(),
                SEv::Milestone {
                    core: core.0,
                    epoch,
                    gen: rt.generation(),
                },
            );
        }
    }

    fn milestone(&mut self, core: CoreId, epoch: u64, gen: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch {
            return;
        }
        let CoreRun::Running { task, ref mut rt } = ctl.run else {
            return;
        };
        if rt.generation() != gen {
            return; // superseded by a frequency change
        }
        match rt.advance_to(now) {
            None => {
                let rt2 = *rt;
                self.schedule_milestone(core, epoch, &rt2);
            }
            Some(Milestone::Completion(_)) => self.complete(core, task, now),
            Some(Milestone::BlockStart(_)) => {
                let rt2 = *rt;
                self.machine.set_activity(core, now, Activity::Halted);
                self.counters.halts += 1;
                let e = self
                    .accel
                    .on_core_halt(core, now, &mut self.machine, &mut self.counters);
                self.push_settles(&e);
                self.schedule_milestone(core, epoch, &rt2);
            }
            Some(Milestone::BlockEnd(_)) => {
                let rt2 = *rt;
                self.machine.set_activity(core, now, Activity::Busy);
                let e = self
                    .accel
                    .on_core_wake(core, now, &mut self.machine, &mut self.counters);
                self.push_settles(&e);
                self.schedule_milestone(core, epoch, &rt2);
            }
        }
    }

    fn complete(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        let (slot, local) = self.split(task);

        // The instance was shed while this task ran: discard the
        // completion (no successor propagation, no histogram sample) and
        // just free the core.
        if self.fault.is_some() && self.slots[slot].shed {
            self.counters.tasks_completed += 1;
            let epoch = self.cores[core.index()].epoch;
            self.cores[core.index()].run = CoreRun::Epilogue;
            let e = self
                .accel
                .on_task_end(core, now, &mut self.machine, &mut self.counters);
            self.push_settles(&e);
            self.events.push(
                e.resume_or(now),
                SEv::CoreFree {
                    core: core.0,
                    epoch,
                },
            );
            return;
        }

        // Injected transient task fault: the completion is void and the
        // task re-executes in place on the same core (bounded retries so
        // a p=1 schedule still terminates).
        if let Some(fs) = self.fault.as_mut() {
            if fs.spec.task_fault_p > 0.0
                && fs.task_retries[task.index()] < fs.spec.max_retries
                && fs.rng.next_unit() < fs.spec.task_fault_p
            {
                fs.task_retries[task.index()] += 1;
                fs.report.task_faults += 1;
                fs.report.reexecuted += 1;
                // Re-execution re-demands memory: the earlier hold expired
                // at begin + mem_ps, which is never after this completion.
                self.gate_or_begin(core, task, now);
                return;
            }
        }

        self.counters.tasks_completed += 1;
        self.last_completion = self.last_completion.max(now);

        let entry = self.entry_of(task);
        let base = slot as u32 * self.stride;
        // CSR successor walk over the shared view — `entry` borrows the
        // `'g` workload table, not `self`, so the span iterates while
        // `make_ready` mutates engine state.
        for &s in entry.view.succs(local) {
            let d = &mut self.slots[slot].indegree[s.index()];
            debug_assert!(*d > 0, "indegree underflow at {s}");
            *d -= 1;
            if *d == 0 {
                self.make_ready(TaskId(base + s.0), entry.levels[s.index()]);
            }
        }
        self.slots[slot].remaining -= 1;
        if self.slots[slot].remaining == 0 {
            self.finish_instance(slot, now);
        }

        let epoch = self.cores[core.index()].epoch;
        self.cores[core.index()].run = CoreRun::Epilogue;
        let e = self
            .accel
            .on_task_end(core, now, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
        self.events.push(
            e.resume_or(now),
            SEv::CoreFree {
                core: core.0,
                epoch,
            },
        );
    }

    /// The instance's last task finished: fold its times into the
    /// streaming histograms and recycle the slot.
    fn finish_instance(&mut self, slot: usize, now: SimTime) {
        self.completed += 1;
        let s = &self.slots[slot];
        let started = s.started.unwrap_or(now);
        self.latency.record(now.since(s.arrival));
        self.queue_wait.record(started.since(s.arrival));
        self.service_time.record(now.since(started));
        self.live -= 1;
        self.free.push(slot as u32);
    }

    fn core_free(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch {
            return;
        }
        debug_assert!(matches!(ctl.run, CoreRun::Epilogue));
        ctl.run = CoreRun::Idle;
        self.idle.push(core);
        self.idle_dirty = true;
        self.machine.set_activity(core, now, Activity::Idle);
    }

    fn dvfs_settle(&mut self, core: CoreId, now: SimTime) {
        // Injected transient reconfiguration fault: the settle write
        // fails; retry shortly, or — retries exhausted — stay at the
        // current class (degraded, not wedged).
        if let Some(fs) = self.fault.as_mut() {
            let i = core.index();
            if fs.spec.reconfig_fail_p > 0.0 && fs.rng.next_unit() < fs.spec.reconfig_fail_p {
                fs.report.reconfig_faults += 1;
                if fs.settle_retries[i] < fs.spec.max_retries {
                    fs.settle_retries[i] += 1;
                    self.events
                        .push(now + RECONFIG_RETRY_DELAY, SEv::DvfsSettle { core: core.0 });
                } else {
                    fs.settle_retries[i] = 0;
                    fs.report.reconfig_exhausted += 1;
                }
                return;
            }
            if fs.settle_retries[i] > 0 {
                fs.settle_retries[i] = 0;
                fs.report.reconfig_recovered += 1;
            }
        }
        if let Some(level) = self.machine.settle(core, now) {
            let epoch = self.cores[core.index()].epoch;
            if let CoreRun::Running { ref mut rt, .. } = self.cores[core.index()].run {
                rt.set_frequency(now, level.frequency);
                let rt2 = *rt;
                self.schedule_milestone(core, epoch, &rt2);
            }
        }
    }

    fn idle_decel(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &self.cores[core.index()];
        if ctl.epoch != epoch || !matches!(ctl.run, CoreRun::Idle | CoreRun::Halted) {
            return;
        }
        let e = self
            .accel
            .on_core_idle(core, now, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
    }

    fn idle_halt(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch || !matches!(ctl.run, CoreRun::Idle) {
            return;
        }
        ctl.run = CoreRun::Halted;
        ctl.halt_scheduled = false;
        self.machine.set_activity(core, now, Activity::Halted);
        self.counters.halts += 1;
        let e = self
            .accel
            .on_core_halt(core, now, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
    }

    /// Fail-stops a core under service load: evict it from the idle
    /// index, cancel its pending events (epoch bump), and hand any
    /// in-flight task to the recovery policy. Unlike the closed-system
    /// engine, `Shed` is honored here: it drops the displaced task's
    /// whole *instance* (an open system can decline work; a closed DAG
    /// cannot lose a node without deadlocking its successors).
    fn core_fail(&mut self, core: CoreId, permanent: bool, now: SimTime) {
        let i = core.index();
        let Some(fs) = self.fault.as_mut() else {
            return;
        };
        if fs.failed[i] {
            return; // overlapping windows: already down
        }
        fs.failed[i] = true;
        fs.fail_since[i] = Some(now);
        fs.report.injected += 1;

        let displaced = match self.cores[i].run {
            CoreRun::Prologue { task } => Some(task),
            CoreRun::Running { task, .. } => Some(task),
            CoreRun::MemWait { task } => Some(task),
            _ => None,
        };
        if self.idle.is_linked(core) {
            self.idle.remove(core);
        }
        let ctl = &mut self.cores[i];
        ctl.epoch += 1;
        ctl.halt_scheduled = false;
        ctl.idle_notified = false;
        ctl.run = CoreRun::Halted;
        self.machine.set_activity(core, now, Activity::Halted);

        // A failed core cannot keep a bandwidth slot (or a queue spot):
        // release before displacement handling so the freed slot flows to
        // waiters even when the displaced instance was already shed.
        if let Some(ms) = self.mem.as_mut() {
            if ms.holding[i] {
                ms.holding[i] = false;
                self.machine
                    .memory_mut()
                    .expect("memory subsystem attached when MemState exists")
                    .release();
                self.mem_grant(now);
            } else if ms.wait_since[i].take().is_some() {
                self.machine
                    .memory_mut()
                    .expect("memory subsystem attached when MemState exists")
                    .cancel_core(core);
            }
        }

        if let Some(task) = displaced {
            let (slot, local) = self.split(task);
            if self.slots[slot].shed {
                // The instance was already shed (a sibling's failure):
                // its displaced task just evaporates with it.
                return;
            }
            let critical = self.crit[task.index()];
            let level = self.entry_of(task).levels[local.index()];
            let fs = self.fault.as_mut().expect("fault state present");
            fs.report.displaced += 1;
            fs.displaced_at[task.index()] = Some(now);
            let action = fs.policy.on_displaced(&RecoveryCtx {
                now,
                failed_core: i,
                critical,
                permanent,
                degraded: true,
            });
            match action {
                RecoveryAction::Requeue { prefer_fast } => {
                    let mut level = level;
                    if prefer_fast && level == 0 {
                        level = 1;
                    }
                    self.make_ready(task, level);
                }
                RecoveryAction::Shed => {
                    fs.report.shed += 1;
                    // Retire the instance: the displaced task is dropped,
                    // queued siblings are discarded at dispatch, running
                    // siblings' completions are ignored. The slot is
                    // *not* recycled (stale global ids may still sit in
                    // scheduler queues and would alias a reused slot).
                    self.slots[slot].shed = true;
                    self.live -= 1;
                }
            }
        }
    }

    /// A failed core's recovery window closed: it rejoins the idle index
    /// and can take work again. Time spent down is charged to the
    /// capacity ledger.
    fn core_recover(&mut self, core: CoreId, now: SimTime) {
        let i = core.index();
        let Some(fs) = self.fault.as_mut() else {
            return;
        };
        if !fs.failed[i] {
            return;
        }
        fs.failed[i] = false;
        fs.report.recovered_cores += 1;
        if let Some(t) = fs.fail_since[i].take() {
            fs.report.capacity_lost += now.saturating_since(t);
        }
        let ctl = &mut self.cores[i];
        ctl.epoch += 1;
        ctl.run = CoreRun::Idle;
        ctl.halt_scheduled = false;
        ctl.idle_notified = false;
        self.idle.push(core);
        self.idle_dirty = true;
        self.machine.set_activity(core, now, Activity::Idle);
    }
}
