//! Ready-queue scheduling policies.
//!
//! A policy owns the ready queue(s) and decides which task a requesting core
//! receives. It sees tasks only after the executor has classified their
//! criticality, and it learns the static speed class of each core (for the
//! heterogeneous CATS configurations) at construction.

use cata_sim::machine::CoreId;
use cata_sim::stats::Counters;
use cata_tdg::TaskId;

mod cats;
mod fifo;

pub use cats::CatsPolicy;
pub use fifo::FifoPolicy;

/// Context a policy may consult while serving a dequeue.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCtx {
    /// True if at least one *fast* core is currently idle — CATS forbids
    /// slow cores from stealing HPRQ work while a fast core could take it.
    pub fast_core_idle: bool,
}

/// A ready-queue policy.
pub trait SchedulerPolicy: Send {
    /// Short name for reports ("FIFO", "CATS").
    fn name(&self) -> &'static str;

    /// Adds a ready task with its criticality *level* (0 = non-critical;
    /// higher values rank more-critical work — the `c` of `criticality(c)`).
    fn enqueue(&mut self, task: TaskId, level: u8);

    /// Serves a work request from `core`. `ctx` carries the idle-state
    /// information the CATS stealing rule needs. Returns the task to run.
    fn dequeue(&mut self, core: CoreId, ctx: DispatchCtx, counters: &mut Counters)
        -> Option<TaskId>;

    /// Total ready tasks queued.
    fn len(&self) -> usize;

    /// True if no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `core` could be served right now (used by the executor's
    /// dispatch loop to avoid popping for cores that must stay idle).
    fn has_work_for(&self, core: CoreId, ctx: DispatchCtx) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The executor's dispatch loop contract, exercised against both
    /// policies: repeatedly offering idle cores must drain every queued task
    /// exactly once.
    fn drain(policy: &mut dyn SchedulerPolicy, cores: &[CoreId]) -> Vec<(CoreId, TaskId)> {
        let mut out = Vec::new();
        let mut counters = Counters::default();
        let ctx = DispatchCtx {
            fast_core_idle: false,
        };
        loop {
            let mut progressed = false;
            for &c in cores {
                if let Some(t) = policy.dequeue(c, ctx, &mut counters) {
                    out.push((c, t));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    #[test]
    fn policies_conserve_tasks() {
        let cores: Vec<CoreId> = (0..4u32).map(CoreId).collect();
        let mut fifo = FifoPolicy::new();
        let mut cats = CatsPolicy::new(&[true, true, false, false]);
        for i in 0..20u32 {
            fifo.enqueue(TaskId(i), u8::from(i % 3 == 0));
            cats.enqueue(TaskId(i), u8::from(i % 3 == 0));
        }
        let f = drain(&mut fifo, &cores);
        let c = drain(&mut cats, &cores);
        assert_eq!(f.len(), 20);
        assert_eq!(c.len(), 20);
        let mut seen: Vec<u32> = f.iter().map(|(_, t)| t.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert!(fifo.is_empty() && cats.is_empty());
    }
}
