//! Ready-queue scheduling policies.
//!
//! A policy owns the ready queue(s) and decides which task a requesting core
//! receives. It sees tasks only after the executor has classified their
//! criticality, and it learns the static speed class of each core (for the
//! heterogeneous CATS configurations) at construction.

use cata_sim::machine::CoreId;
use cata_sim::stats::Counters;
use cata_tdg::TaskId;

mod cats;
mod fifo;

pub use cats::CatsPolicy;
pub use fifo::FifoPolicy;

/// Context a policy may consult while serving a dequeue.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCtx {
    /// True if at least one *fast* core is currently idle — CATS forbids
    /// slow cores from stealing HPRQ work while a fast core could take it.
    pub fast_core_idle: bool,
}

/// A ready-queue policy.
pub trait SchedulerPolicy: Send {
    /// Short name for reports ("FIFO", "CATS").
    fn name(&self) -> &'static str;

    /// Adds a ready task with its criticality *level* (0 = non-critical;
    /// higher values rank more-critical work — the `c` of `criticality(c)`).
    fn enqueue(&mut self, task: TaskId, level: u8);

    /// Serves a work request from `core`. `ctx` carries the idle-state
    /// information the CATS stealing rule needs. Returns the task to run.
    fn dequeue(
        &mut self,
        core: CoreId,
        ctx: DispatchCtx,
        counters: &mut Counters,
    ) -> Option<TaskId>;

    /// Total ready tasks queued.
    fn len(&self) -> usize;

    /// True if no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `core` could be served right now (used by the executor's
    /// dispatch loop to avoid popping for cores that must stay idle).
    fn has_work_for(&self, core: CoreId, ctx: DispatchCtx) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelEffects;
    use crate::exp::spec::PolicyParams;
    use crate::exp::{FactoryCtx, PolicyRegistries};
    use cata_sim::machine::{Machine, MachineConfig};
    use cata_sim::time::{SimDuration, SimTime};

    /// The executor's dispatch loop contract, exercised against both
    /// policies: repeatedly offering idle cores must drain every queued task
    /// exactly once.
    fn drain(policy: &mut dyn SchedulerPolicy, cores: &[CoreId]) -> Vec<(CoreId, TaskId)> {
        let mut out = Vec::new();
        let mut counters = Counters::default();
        let ctx = DispatchCtx {
            fast_core_idle: false,
        };
        loop {
            let mut progressed = false;
            for &c in cores {
                if let Some(t) = policy.dequeue(c, ctx, &mut counters) {
                    out.push((c, t));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Asserts the shared drain contract on an already-boxed policy: the
    /// `is_empty` default implementation (len == 0) must agree with
    /// observed emptiness through the trait-object vtable, before and
    /// after the drain.
    fn assert_drain_contract(policy: &mut Box<dyn SchedulerPolicy>, label: &str) {
        let cores: Vec<CoreId> = (0..4u32).map(CoreId).collect();
        assert!(policy.is_empty(), "{label} starts non-empty");
        for i in 0..20u32 {
            policy.enqueue(TaskId(i), u8::from(i % 3 == 0));
        }
        assert!(!policy.is_empty(), "{label} empty after enqueue");
        assert_eq!(policy.len(), 20);
        let drained = drain(policy.as_mut(), &cores);
        assert_eq!(drained.len(), 20, "{label} lost tasks");
        let mut seen: Vec<u32> = drained.iter().map(|(_, t)| t.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert!(policy.is_empty(), "{label} not empty after drain");
        assert_eq!(policy.len(), 0);
    }

    #[test]
    fn policies_conserve_tasks() {
        let mut fifo: Box<dyn SchedulerPolicy> = Box::new(FifoPolicy::new());
        let mut cats: Box<dyn SchedulerPolicy> =
            Box::new(CatsPolicy::new(&[true, true, false, false]));
        assert_drain_contract(&mut fifo, "FIFO");
        assert_drain_contract(&mut cats, "CATS");
    }

    /// The same drain contract through the *registry* path: policies built
    /// as trait objects from their string keys — the construction every
    /// facade run uses — must satisfy the identical conservation and
    /// `is_empty` contract. Also pins the `AccelEffects::resume_or`
    /// contract the dispatch loop depends on after each accel callback.
    #[test]
    fn registry_built_policies_satisfy_the_drain_contract() {
        let regs = PolicyRegistries::with_builtins();
        let machine = Machine::new_static_hetero(MachineConfig::small_test(4), 2);
        let is_fast = [true, true, false, false];
        let params = PolicyParams::default();
        let ctx = FactoryCtx {
            machine: &machine,
            is_fast_static: &is_fast,
            fast_cores: 2,
            seed: 7,
            params: &params,
        };
        for key in regs.scheduler_keys() {
            let mut policy = regs
                .build_scheduler(&key, &ctx)
                .unwrap_or_else(|e| panic!("{key}: {e}"));
            assert_drain_contract(&mut policy, &key);
        }

        // The accel side of the dispatch contract: an effect-free outcome
        // resumes at the event time, an explicit resume_at wins otherwise.
        let now = SimTime::ZERO + SimDuration::from_us(5);
        assert_eq!(AccelEffects::none().resume_or(now), now);
        let later = now + SimDuration::from_us(3);
        let charged = AccelEffects {
            resume_at: Some(later),
            settles: crate::accel::SettleList::new(),
        };
        assert_eq!(charged.resume_or(now), later);
    }
}
