//! The Criticality-Aware Task Scheduler (CATS \[24\], §II-C), also the queue
//! structure underneath CATA.
//!
//! Two ready queues: critical tasks enter the **HPRQ**, non-critical the
//! **LPRQ**. Fast cores serve the HPRQ first and may fall back to the LPRQ;
//! slow cores serve the LPRQ and may *steal* from the HPRQ **only when no
//! fast core is idling** (otherwise the critical task should wait the
//! instant it takes the idle fast core to grab it).
//!
//! Under CATA every core is "fast-capable" (acceleration is dynamic), so the
//! same policy is constructed with all cores marked fast, which reduces the
//! rules to: any core, HPRQ first, then LPRQ.

use super::{DispatchCtx, SchedulerPolicy};
use cata_sim::machine::CoreId;
use cata_sim::stats::Counters;
use cata_tdg::TaskId;
use std::collections::VecDeque;

/// The high-priority ready queue: FIFO *within* a criticality level, served
/// highest level first — `criticality(2)` tasks bypass `criticality(1)`
/// tasks, as the ordered `c` parameter of the paper's clause implies.
///
/// Criticality levels are small dense integers (the `c` of
/// `criticality(c)`, a `u8`), so instead of a `BTreeMap<u8, VecDeque>` —
/// which allocates a node per live level and walks the tree on every
/// enqueue/dequeue of the engine's hottest loop — the levels index a flat
/// bucket array directly, with `top` tracking the highest non-empty
/// bucket. Buckets persist once grown, so the steady state allocates
/// nothing.
#[derive(Debug, Default)]
struct Hprq {
    /// `buckets[level]` holds that level's FIFO; index 0 exists but stays
    /// unused (level-0 tasks live in the LPRQ).
    buckets: Vec<VecDeque<TaskId>>,
    /// Highest level with a non-empty bucket; meaningless while `len == 0`.
    /// Maintained on push (raise) and pop (walk down past drained
    /// buckets), so a pop never scans: the bucket at `top` is non-empty by
    /// invariant whenever `len > 0`.
    top: usize,
    len: usize,
}

impl Hprq {
    fn push(&mut self, task: TaskId, level: u8) {
        debug_assert!(level > 0, "level-0 tasks belong in the LPRQ");
        let level = level as usize;
        if self.buckets.len() <= level {
            self.buckets.resize_with(level + 1, VecDeque::new);
        }
        self.buckets[level].push_back(task);
        if self.len == 0 || level > self.top {
            self.top = level;
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<TaskId> {
        if self.len == 0 {
            return None;
        }
        let t = self.buckets[self.top].pop_front();
        debug_assert!(t.is_some(), "top bucket empty despite len > 0");
        self.len -= 1;
        if self.len > 0 {
            while self.buckets[self.top].is_empty() {
                self.top -= 1;
            }
        }
        t
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The dual-queue CATS policy.
#[derive(Debug)]
pub struct CatsPolicy {
    hprq: Hprq,
    lprq: VecDeque<TaskId>,
    is_fast: Vec<bool>,
}

impl CatsPolicy {
    /// Creates the policy; `is_fast[i]` tells whether core *i* is a fast
    /// core in the static heterogeneous configuration.
    pub fn new(is_fast: &[bool]) -> Self {
        CatsPolicy {
            hprq: Hprq::default(),
            lprq: VecDeque::new(),
            is_fast: is_fast.to_vec(),
        }
    }

    /// Creates the CATA variant: every core may serve either queue (the
    /// hardware is reconfigured around the task instead).
    pub fn homogeneous(num_cores: usize) -> Self {
        Self::new(&vec![true; num_cores])
    }

    /// Queued critical tasks.
    pub fn hprq_len(&self) -> usize {
        self.hprq.len
    }

    /// Queued non-critical tasks.
    pub fn lprq_len(&self) -> usize {
        self.lprq.len()
    }

    fn core_is_fast(&self, core: CoreId) -> bool {
        self.is_fast.get(core.index()).copied().unwrap_or(false)
    }
}

impl SchedulerPolicy for CatsPolicy {
    fn name(&self) -> &'static str {
        "CATS"
    }

    fn enqueue(&mut self, task: TaskId, level: u8) {
        if level > 0 {
            self.hprq.push(task, level);
        } else {
            self.lprq.push_back(task);
        }
    }

    fn dequeue(
        &mut self,
        core: CoreId,
        ctx: DispatchCtx,
        counters: &mut Counters,
    ) -> Option<TaskId> {
        if self.core_is_fast(core) {
            // Fast core: critical work first, else help with the LPRQ.
            if let Some(t) = self.hprq.pop() {
                return Some(t);
            }
            let t = self.lprq.pop_front();
            if t.is_some() {
                counters.cross_queue_steals += 1;
            }
            t
        } else {
            // Slow core: LPRQ; steal critical work only if no fast core is
            // available to take it.
            if let Some(t) = self.lprq.pop_front() {
                return Some(t);
            }
            if !ctx.fast_core_idle {
                let t = self.hprq.pop();
                if t.is_some() {
                    counters.cross_queue_steals += 1;
                }
                t
            } else {
                None
            }
        }
    }

    fn len(&self) -> usize {
        self.hprq.len + self.lprq.len()
    }

    fn has_work_for(&self, core: CoreId, ctx: DispatchCtx) -> bool {
        if self.core_is_fast(core) {
            !self.hprq.is_empty() || !self.lprq.is_empty()
        } else {
            !self.lprq.is_empty() || (!ctx.fast_core_idle && !self.hprq.is_empty())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: CoreId = CoreId(0);
    const SLOW: CoreId = CoreId(1);

    fn policy() -> CatsPolicy {
        CatsPolicy::new(&[true, false])
    }

    fn ctx(fast_idle: bool) -> DispatchCtx {
        DispatchCtx {
            fast_core_idle: fast_idle,
        }
    }

    #[test]
    fn fast_core_prefers_hprq() {
        let mut p = policy();
        let mut c = Counters::default();
        p.enqueue(TaskId(0), 0);
        p.enqueue(TaskId(1), 1);
        assert_eq!(p.dequeue(FAST, ctx(false), &mut c), Some(TaskId(1)));
        assert_eq!(p.dequeue(FAST, ctx(false), &mut c), Some(TaskId(0)));
    }

    #[test]
    fn fast_core_falls_back_to_lprq() {
        let mut p = policy();
        let mut c = Counters::default();
        p.enqueue(TaskId(0), 0);
        assert_eq!(p.dequeue(FAST, ctx(false), &mut c), Some(TaskId(0)));
        assert_eq!(c.cross_queue_steals, 1);
    }

    #[test]
    fn slow_core_prefers_lprq() {
        let mut p = policy();
        let mut c = Counters::default();
        p.enqueue(TaskId(0), 1);
        p.enqueue(TaskId(1), 0);
        assert_eq!(p.dequeue(SLOW, ctx(false), &mut c), Some(TaskId(1)));
    }

    #[test]
    fn slow_core_steals_critical_only_without_idle_fast_core() {
        let mut p = policy();
        let mut c = Counters::default();
        p.enqueue(TaskId(0), 1);
        // A fast core is idle: the slow core must leave the critical task.
        assert_eq!(p.dequeue(SLOW, ctx(true), &mut c), None);
        assert!(!p.has_work_for(SLOW, ctx(true)));
        // No fast core idle: stealing allowed.
        assert!(p.has_work_for(SLOW, ctx(false)));
        assert_eq!(p.dequeue(SLOW, ctx(false), &mut c), Some(TaskId(0)));
        assert_eq!(c.cross_queue_steals, 1);
    }

    #[test]
    fn homogeneous_variant_serves_any_core() {
        let mut p = CatsPolicy::homogeneous(2);
        let mut c = Counters::default();
        p.enqueue(TaskId(0), 1);
        p.enqueue(TaskId(1), 0);
        assert_eq!(p.dequeue(CoreId(1), ctx(false), &mut c), Some(TaskId(0)));
        assert_eq!(p.dequeue(CoreId(0), ctx(false), &mut c), Some(TaskId(1)));
    }

    #[test]
    fn queue_lengths_track_criticality() {
        let mut p = policy();
        p.enqueue(TaskId(0), 1);
        p.enqueue(TaskId(1), 1);
        p.enqueue(TaskId(2), 0);
        assert_eq!(p.hprq_len(), 2);
        assert_eq!(p.lprq_len(), 1);
        assert_eq!(p.len(), 3);
    }

    /// The reference model the bucket-array HPRQ must match: the original
    /// `BTreeMap<u8, VecDeque>` formulation, highest level first, FIFO
    /// within a level.
    #[derive(Default)]
    struct ModelHprq {
        by_level: std::collections::BTreeMap<u8, std::collections::VecDeque<TaskId>>,
    }

    impl ModelHprq {
        fn push(&mut self, task: TaskId, level: u8) {
            self.by_level.entry(level).or_default().push_back(task);
        }

        fn pop(&mut self) -> Option<TaskId> {
            let (&level, _) = self.by_level.iter().next_back()?;
            let q = self.by_level.get_mut(&level).expect("level exists");
            let t = q.pop_front();
            if q.is_empty() {
                self.by_level.remove(&level);
            }
            t
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Under any interleaving of pushes (arbitrary levels 1..=5) and
        /// pops, the bucket-array HPRQ emits exactly the sequence of the
        /// BTreeMap reference model, and its length bookkeeping agrees.
        #[test]
        fn bucket_hprq_matches_btreemap_model(
            ops in proptest::prelude::prop::collection::vec((0u8..3, 1u8..6), 1..300)
        ) {
            let mut real = Hprq::default();
            let mut model = ModelHprq::default();
            let mut next_id = 0u32;
            for &(op, level) in &ops {
                if op == 0 {
                    // One pop per two pushes on average keeps both states
                    // exercised (non-empty tops, drained levels).
                    proptest::prop_assert_eq!(real.pop(), model.pop());
                } else {
                    let t = TaskId(next_id);
                    next_id += 1;
                    real.push(t, level);
                    model.push(t, level);
                }
                let model_len: usize = model.by_level.values().map(|q| q.len()).sum();
                proptest::prop_assert_eq!(real.len, model_len);
                proptest::prop_assert_eq!(real.is_empty(), model_len == 0);
            }
            // Drain: the tails must agree too.
            loop {
                let (a, b) = (real.pop(), model.pop());
                proptest::prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn higher_criticality_levels_bypass_lower() {
        // criticality(2) beats criticality(1) in the HPRQ; FIFO within a
        // level.
        let mut p = policy();
        let mut c = Counters::default();
        p.enqueue(TaskId(0), 1);
        p.enqueue(TaskId(1), 2);
        p.enqueue(TaskId(2), 1);
        p.enqueue(TaskId(3), 2);
        let order: Vec<u32> = std::iter::from_fn(|| p.dequeue(FAST, ctx(false), &mut c))
            .map(|t| t.0)
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }
}
