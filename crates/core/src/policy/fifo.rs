//! The baseline FIFO scheduler (§II-C).
//!
//! One ready queue, first in first out, blind to both task criticality and
//! core speed — "tasks are assigned blindly to fast or slow cores,
//! regardless of their criticality". This is the normalization baseline of
//! every figure in the paper.

use super::{DispatchCtx, SchedulerPolicy};
use cata_sim::machine::CoreId;
use cata_sim::stats::Counters;
use cata_tdg::TaskId;
use std::collections::VecDeque;

/// The FIFO ready queue.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<TaskId>,
}

impl FifoPolicy {
    /// An empty FIFO queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulerPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn enqueue(&mut self, task: TaskId, _level: u8) {
        self.queue.push_back(task);
    }

    fn dequeue(
        &mut self,
        _core: CoreId,
        _ctx: DispatchCtx,
        _counters: &mut Counters,
    ) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn has_work_for(&self, _core: CoreId, _ctx: DispatchCtx) -> bool {
        !self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_regardless_of_criticality_and_core() {
        let mut p = FifoPolicy::new();
        p.enqueue(TaskId(0), 0);
        p.enqueue(TaskId(1), 1);
        p.enqueue(TaskId(2), 0);
        let ctx = DispatchCtx {
            fast_core_idle: true,
        };
        let mut c = Counters::default();
        assert_eq!(p.dequeue(CoreId(3), ctx, &mut c), Some(TaskId(0)));
        assert_eq!(p.dequeue(CoreId(0), ctx, &mut c), Some(TaskId(1)));
        assert_eq!(p.dequeue(CoreId(1), ctx, &mut c), Some(TaskId(2)));
        assert_eq!(p.dequeue(CoreId(1), ctx, &mut c), None);
    }
}
