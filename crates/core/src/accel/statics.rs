//! The no-op manager for static heterogeneous configurations (FIFO, CATS).
//!
//! In these experiments "the frequency of each core does not change during
//! the execution, simulating a heterogeneous multicore" (§IV). The machine
//! is built with [`Machine::new_static_hetero`]; nothing ever reconfigures.
//!
//! [`Machine::new_static_hetero`]: cata_sim::machine::Machine::new_static_hetero

use super::{AccelEffects, AccelManager};
use cata_sim::machine::{CoreId, Machine};
use cata_sim::stats::Counters;
use cata_sim::time::SimTime;

/// Static fast/slow cores; no dynamic reconfiguration.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAccel;

impl AccelManager for StaticAccel {
    fn name(&self) -> &'static str {
        "static"
    }

    fn on_task_start(
        &mut self,
        _core: CoreId,
        _critical: bool,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    fn on_task_end(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::machine::MachineConfig;

    #[test]
    fn static_manager_never_touches_the_machine() {
        let mut m = Machine::new_static_hetero(MachineConfig::small_test(4), 2);
        let mut c = Counters::default();
        let mut s = StaticAccel;
        let e = s.on_task_start(CoreId(0), true, SimTime::ZERO, &mut m, &mut c);
        assert!(e.settles.is_empty());
        assert!(e.resume_at.is_none());
        let e = s.on_task_end(CoreId(0), SimTime::from_us(5), &mut m, &mut c);
        assert!(e.settles.is_empty());
        assert_eq!(c.reconfigs_requested, 0);
        assert_eq!(m.accelerated_count(), 2);
    }
}
