//! Acceleration managers: who reconfigures the cores, and at what cost.
//!
//! All four variants of the paper's comparison share the [`AccelManager`]
//! interface; the executor invokes it at the four events that can trigger a
//! reconfiguration — task start, task end, core halt (C1 entry) and core
//! wake. Each call may charge runtime overhead on the acting core (the
//! returned `resume_at`) and may begin DVFS transitions on any core (the
//! returned settle times, which the executor turns into events).
//!
//! | Manager | Decision | Cost model |
//! |---|---|---|
//! | [`StaticAccel`] | never reconfigures | zero |
//! | [`SoftwareCata`] | CATA algorithm | RSM lock + cpufreq syscalls, serialized ([`cata_cpufreq::SoftwareDvfsPath`]) |
//! | [`RsuCata`] | CATA algorithm | one `rsu_*` instruction (tens of cycles), no locks |
//! | [`TurboModeCtl`] | halt/wake reallocation \[18\] | hardware microcontroller, free |

use cata_sim::machine::{CoreId, Machine};
use cata_sim::stats::{Counters, LatencySamples};
use cata_sim::time::{SimDuration, SimTime};

mod rsu;
mod software;
mod statics;
mod turbo;

pub use rsu::RsuCata;
pub use software::SoftwareCata;
pub use statics::StaticAccel;
pub use turbo::TurboModeCtl;

/// Settle times of the DVFS transitions one decision started, as
/// `(settle_time, core)` entries in insertion order.
///
/// Almost every decision starts at most two transitions (an acceleration
/// plus the matching deceleration of a CATA swap), so the first two
/// entries live inline and the common path never touches the heap — this
/// was the last per-reconfig `Vec` allocation on the engine hot path.
/// Wider bursts (e.g. TurboMode's boot-time acceleration of every
/// initially active core) spill into a `Vec` transparently.
#[derive(Debug, Clone)]
pub struct SettleList {
    inline: [(SimTime, CoreId); Self::INLINE],
    /// Entries stored inline (≤ `INLINE`); the rest are in `spill`.
    inline_len: u8,
    spill: Vec<(SimTime, CoreId)>,
}

impl SettleList {
    /// Entries held without allocating.
    pub const INLINE: usize = 2;

    /// An empty list (no allocation).
    pub fn new() -> Self {
        SettleList {
            inline: [(SimTime::ZERO, CoreId(0)); Self::INLINE],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends one settle entry, spilling to the heap only past
    /// [`INLINE`](Self::INLINE) entries.
    pub fn push(&mut self, entry: (SimTime, CoreId)) {
        let n = self.inline_len as usize;
        if n < Self::INLINE {
            self.inline[n] = entry;
            self.inline_len += 1;
        } else {
            self.spill.push(entry);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    /// True when no transitions were started.
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    /// Entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, CoreId)> {
        self.inline[..self.inline_len as usize]
            .iter()
            .chain(self.spill.iter())
    }
}

impl Default for SettleList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Index<usize> for SettleList {
    type Output = (SimTime, CoreId);

    fn index(&self, i: usize) -> &Self::Output {
        let n = self.inline_len as usize;
        if i < n {
            &self.inline[i]
        } else {
            &self.spill[i - n]
        }
    }
}

impl<'a> IntoIterator for &'a SettleList {
    type Item = &'a (SimTime, CoreId);
    type IntoIter = std::iter::Chain<
        std::slice::Iter<'a, (SimTime, CoreId)>,
        std::slice::Iter<'a, (SimTime, CoreId)>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline[..self.inline_len as usize]
            .iter()
            .chain(self.spill.iter())
    }
}

/// What an acceleration event produced.
#[derive(Debug, Clone, Default)]
pub struct AccelEffects {
    /// When the acting core regains control (≥ the event time). The interval
    /// in between is runtime overhead charged on that core.
    pub resume_at: Option<SimTime>,
    /// Completion times of the DVFS transitions this decision started —
    /// the executor schedules a settle event for each.
    pub settles: SettleList,
}

impl AccelEffects {
    /// An effect-free outcome (no overhead, no transitions).
    pub fn none() -> Self {
        Self::default()
    }

    /// The acting core's resume time, defaulting to the event time.
    pub fn resume_or(&self, now: SimTime) -> SimTime {
        self.resume_at.unwrap_or(now)
    }
}

/// Statistics a manager exposes for the §V-C analysis.
#[derive(Debug, Clone, Default)]
pub struct ReconfigStats {
    /// Lock-wait distribution (software path only).
    pub lock_waits: LatencySamples,
    /// End-to-end reconfiguration latency distribution.
    pub latencies: LatencySamples,
    /// Total runtime overhead charged on cores by the manager.
    pub overhead_total: SimDuration,
}

/// A hardware/runtime reconfiguration policy.
pub trait AccelManager: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Called once before the simulation starts (e.g. TurboMode accelerates
    /// the initially active cores).
    fn on_init(&mut self, _machine: &mut Machine, _now: SimTime) -> AccelEffects {
        AccelEffects::none()
    }

    /// A task of the given criticality is about to start on `core`. The task
    /// body begins at the returned `resume_at`.
    fn on_task_start(
        &mut self,
        core: CoreId,
        critical: bool,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects;

    /// The task on `core` finished; the core requests its next task at the
    /// returned `resume_at`.
    fn on_task_end(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects;

    /// `core` found no ready task and entered the runtime idle loop. CATA
    /// decelerates accelerated idle cores here (§V-B), releasing budget.
    fn on_core_idle(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    /// `core` entered the halted (C1) state — a blocked task or a halted
    /// idle loop. CATA variants deliberately ignore this (§V-D).
    fn on_core_halt(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    /// `core` left the halted state.
    fn on_core_wake(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    /// §V-C statistics collected so far.
    fn stats(&self) -> ReconfigStats {
        ReconfigStats::default()
    }
}

/// Applies a transition on `machine` and records it into `effects`/`counters`.
pub(crate) fn apply_transition(
    machine: &mut Machine,
    core: CoreId,
    target: cata_sim::machine::PowerLevel,
    at: SimTime,
    effects: &mut AccelEffects,
    counters: &mut Counters,
) {
    counters.reconfigs_requested += 1;
    match machine.begin_transition(core, target, at) {
        Some(settle) => {
            counters.reconfigs_applied += 1;
            effects.settles.push((settle, core));
        }
        None => counters.reconfigs_noop += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(us: u64, core: u32) -> (SimTime, CoreId) {
        (SimTime::from_us(us), CoreId(core))
    }

    /// The inline-2 + spill contract at every boundary: 0, 1, 2 (inline
    /// full) and 3 (first spilled) entries, with insertion order preserved
    /// across the boundary for iteration and indexing alike.
    #[test]
    fn settle_list_inlines_two_and_spills_beyond() {
        // 0 settles: empty, nothing iterated.
        let list = SettleList::new();
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert_eq!(list.iter().count(), 0);

        // 1 and 2 settles stay inline.
        for n in 1..=2usize {
            let mut list = SettleList::new();
            for i in 0..n {
                list.push(entry(i as u64 + 1, i as u32));
            }
            assert!(!list.is_empty());
            assert_eq!(list.len(), n);
            let got: Vec<_> = list.iter().copied().collect();
            let want: Vec<_> = (0..n).map(|i| entry(i as u64 + 1, i as u32)).collect();
            assert_eq!(got, want, "{n}-settle order");
        }

        // 3 settles: the third spills; order and indexing stay seamless.
        let mut list = SettleList::new();
        for i in 0..3 {
            list.push(entry(10 + i, i as u32));
        }
        assert_eq!(list.len(), 3);
        for i in 0..3usize {
            assert_eq!(list[i], entry(10 + i as u64, i as u32), "index {i}");
        }
        let via_ref: Vec<_> = (&list).into_iter().copied().collect();
        assert_eq!(via_ref, vec![entry(10, 0), entry(11, 1), entry(12, 2)]);
    }

    #[test]
    fn effects_default_is_effect_free() {
        let e = AccelEffects::default();
        assert!(e.resume_at.is_none());
        assert!(e.settles.is_empty());
        let now = SimTime::from_us(7);
        assert_eq!(e.resume_or(now), now);
    }
}
