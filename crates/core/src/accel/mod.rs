//! Acceleration managers: who reconfigures the cores, and at what cost.
//!
//! All four variants of the paper's comparison share the [`AccelManager`]
//! interface; the executor invokes it at the four events that can trigger a
//! reconfiguration — task start, task end, core halt (C1 entry) and core
//! wake. Each call may charge runtime overhead on the acting core (the
//! returned `resume_at`) and may begin DVFS transitions on any core (the
//! returned settle times, which the executor turns into events).
//!
//! | Manager | Decision | Cost model |
//! |---|---|---|
//! | [`StaticAccel`] | never reconfigures | zero |
//! | [`SoftwareCata`] | CATA algorithm | RSM lock + cpufreq syscalls, serialized ([`cata_cpufreq::SoftwareDvfsPath`]) |
//! | [`RsuCata`] | CATA algorithm | one `rsu_*` instruction (tens of cycles), no locks |
//! | [`TurboModeCtl`] | halt/wake reallocation \[18\] | hardware microcontroller, free |

use cata_sim::machine::{CoreId, Machine};
use cata_sim::stats::{Counters, LatencySamples};
use cata_sim::time::{SimDuration, SimTime};

mod rsu;
mod software;
mod statics;
mod turbo;

pub use rsu::RsuCata;
pub use software::SoftwareCata;
pub use statics::StaticAccel;
pub use turbo::TurboModeCtl;

/// What an acceleration event produced.
#[derive(Debug, Clone, Default)]
pub struct AccelEffects {
    /// When the acting core regains control (≥ the event time). The interval
    /// in between is runtime overhead charged on that core.
    pub resume_at: Option<SimTime>,
    /// Completion times of the DVFS transitions this decision started, as
    /// `(settle_time, core)` — the executor schedules a settle event for
    /// each.
    pub settles: Vec<(SimTime, CoreId)>,
}

impl AccelEffects {
    /// An effect-free outcome (no overhead, no transitions).
    pub fn none() -> Self {
        Self::default()
    }

    /// The acting core's resume time, defaulting to the event time.
    pub fn resume_or(&self, now: SimTime) -> SimTime {
        self.resume_at.unwrap_or(now)
    }
}

/// Statistics a manager exposes for the §V-C analysis.
#[derive(Debug, Clone, Default)]
pub struct ReconfigStats {
    /// Lock-wait distribution (software path only).
    pub lock_waits: LatencySamples,
    /// End-to-end reconfiguration latency distribution.
    pub latencies: LatencySamples,
    /// Total runtime overhead charged on cores by the manager.
    pub overhead_total: SimDuration,
}

/// A hardware/runtime reconfiguration policy.
pub trait AccelManager: Send {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Called once before the simulation starts (e.g. TurboMode accelerates
    /// the initially active cores).
    fn on_init(&mut self, _machine: &mut Machine, _now: SimTime) -> AccelEffects {
        AccelEffects::none()
    }

    /// A task of the given criticality is about to start on `core`. The task
    /// body begins at the returned `resume_at`.
    fn on_task_start(
        &mut self,
        core: CoreId,
        critical: bool,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects;

    /// The task on `core` finished; the core requests its next task at the
    /// returned `resume_at`.
    fn on_task_end(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects;

    /// `core` found no ready task and entered the runtime idle loop. CATA
    /// decelerates accelerated idle cores here (§V-B), releasing budget.
    fn on_core_idle(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    /// `core` entered the halted (C1) state — a blocked task or a halted
    /// idle loop. CATA variants deliberately ignore this (§V-D).
    fn on_core_halt(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    /// `core` left the halted state.
    fn on_core_wake(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    /// §V-C statistics collected so far.
    fn stats(&self) -> ReconfigStats {
        ReconfigStats::default()
    }
}

/// Applies a transition on `machine` and records it into `effects`/`counters`.
pub(crate) fn apply_transition(
    machine: &mut Machine,
    core: CoreId,
    target: cata_sim::machine::PowerLevel,
    at: SimTime,
    effects: &mut AccelEffects,
    counters: &mut Counters,
) {
    counters.reconfigs_requested += 1;
    match machine.begin_transition(core, target, at) {
        Some(settle) => {
            counters.reconfigs_applied += 1;
            effects.settles.push((settle, core));
        }
        None => counters.reconfigs_noop += 1,
    }
}
