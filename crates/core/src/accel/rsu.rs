//! CATA with the hardware Runtime Support Unit (§III-B).
//!
//! Same decision algorithm as [`super::SoftwareCata`], but executed by the
//! RSU: the core issues a single `rsu_start_task`/`rsu_end_task` instruction
//! (tens of cycles), and the unit drives the DVFS controller autonomously —
//! no locks, no kernel, transitions on different cores proceed in parallel.

use super::{apply_transition, AccelEffects, AccelManager, ReconfigStats};
use cata_rsu::engine::Cmd;
use cata_rsu::unit::{Rsu, RsuConfig};
use cata_sim::machine::{CoreId, Machine};
use cata_sim::stats::{Counters, LatencySamples};
use cata_sim::time::{SimDuration, SimTime};

/// The RSU-backed CATA manager.
#[derive(Debug)]
pub struct RsuCata {
    rsu: Rsu,
    op_costs: LatencySamples,
    overhead: SimDuration,
}

impl RsuCata {
    /// Creates the manager for `machine` with the given power budget. The
    /// RSU's two level registers are programmed from the machine config
    /// (what the OS does at boot, §III-B-4).
    pub fn new(machine: &Machine, budget: usize) -> Self {
        let cfg = machine.config();
        RsuCata {
            rsu: Rsu::init(RsuConfig {
                num_cores: cfg.num_cores,
                budget,
                accel_level: cfg.fast_level,
                non_accel_level: cfg.slow_level,
                op_cycles: 32,
            }),
            op_costs: LatencySamples::new(),
            overhead: SimDuration::ZERO,
        }
    }

    /// The hardware unit (tests/diagnostics).
    pub fn rsu(&self) -> &Rsu {
        &self.rsu
    }

    fn apply(
        &mut self,
        cmds: &[Cmd],
        cost: SimDuration,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let mut effects = AccelEffects::none();
        for &cmd in cmds {
            let target = self.rsu.level_for(cmd);
            // The RSU commands the DVFS controller the same cycle; the
            // transitions of distinct cores overlap.
            apply_transition(
                machine,
                CoreId(cmd.core() as u32),
                target,
                now,
                &mut effects,
                counters,
            );
        }
        self.op_costs.record(cost);
        self.overhead += cost;
        effects.resume_at = Some(now + cost);
        effects
    }
}

impl AccelManager for RsuCata {
    fn name(&self) -> &'static str {
        "CATA+RSU"
    }

    fn on_task_start(
        &mut self,
        core: CoreId,
        critical: bool,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let freq = machine.core(core).frequency();
        let out = self
            .rsu
            .start_task(core.index(), critical, freq)
            .expect("RSU enabled and core in range");
        if out.cmds.len() == 2 {
            counters.accel_swaps += 1;
        }
        if out.cmds.is_empty() && critical && !self.rsu.engine().is_accelerated(core.index()) {
            counters.accel_denied += 1;
        }
        self.apply(&out.cmds, out.cost, now, machine, counters)
    }

    fn on_task_end(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let freq = machine.core(core).frequency();
        let out = self
            .rsu
            .end_task(core.index(), freq)
            .expect("RSU enabled and core in range");
        self.apply(&out.cmds, out.cost, now, machine, counters)
    }

    fn on_core_idle(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let freq = machine.core(core).frequency();
        let out = self
            .rsu
            .core_idle(core.index(), freq)
            .expect("RSU enabled and core in range");
        if out.cmds.is_empty() {
            return AccelEffects::none();
        }
        self.apply(&out.cmds, out.cost, now, machine, counters)
    }

    fn stats(&self) -> ReconfigStats {
        ReconfigStats {
            lock_waits: LatencySamples::new(), // lock-free by construction
            latencies: self.op_costs.clone(),
            overhead_total: self.overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::machine::MachineConfig;

    fn setup(budget: usize) -> (Machine, RsuCata) {
        let m = Machine::new(MachineConfig::small_test(4));
        let mgr = RsuCata::new(&m, budget);
        (m, mgr)
    }

    #[test]
    fn rsu_start_costs_cycles_not_microseconds() {
        let (mut m, mut mgr) = setup(2);
        let mut c = Counters::default();
        let e = mgr.on_task_start(CoreId(0), true, SimTime::ZERO, &mut m, &mut c);
        // 32 cycles at the slow 1 GHz start level = 32 ns.
        assert_eq!(e.resume_or(SimTime::ZERO), SimTime::from_ns(32));
        assert_eq!(e.settles.len(), 1);
    }

    #[test]
    fn concurrent_rsu_events_do_not_serialize() {
        let (mut m, mut mgr) = setup(4);
        let mut c = Counters::default();
        let t = SimTime::ZERO;
        let e0 = mgr.on_task_start(CoreId(0), false, t, &mut m, &mut c);
        let e1 = mgr.on_task_start(CoreId(1), false, t, &mut m, &mut c);
        // Both cores resume after their own instruction; no queueing.
        assert_eq!(e0.resume_or(t), e1.resume_or(t));
        assert!(mgr.stats().lock_waits.is_empty());
    }

    #[test]
    fn swap_transitions_overlap_in_time() {
        let (mut m, mut mgr) = setup(1);
        let mut c = Counters::default();
        mgr.on_task_start(CoreId(0), false, SimTime::ZERO, &mut m, &mut c);
        let t = SimTime::from_ms(1);
        let e = mgr.on_task_start(CoreId(1), true, t, &mut m, &mut c);
        assert_eq!(e.settles.len(), 2);
        // Both settle at the same instant: transitions run in parallel.
        assert_eq!(e.settles[0].0, e.settles[1].0);
        assert_eq!(c.accel_swaps, 1);
    }

    #[test]
    fn budget_respected_under_rsu() {
        let (mut m, mut mgr) = setup(2);
        let mut c = Counters::default();
        for core in 0..4u32 {
            mgr.on_task_start(
                CoreId(core),
                false,
                SimTime::from_us(core as u64),
                &mut m,
                &mut c,
            );
        }
        assert_eq!(m.accelerated_count(), 2);
        assert_eq!(mgr.rsu().engine().accelerated_count(), 2);
    }
}
