//! The TurboMode controller (§V-D; dynamic TurboMode \[18\]).
//!
//! Criticality-blind, C-state-driven budget reallocation: every core in C0
//! is presumed to be doing useful (critical) work. When a core executes
//! `hlt` (C0 → C1) the hardware microcontroller lowers its frequency and
//! hands the freed budget to a *randomly chosen* active core; when the OS
//! wakes a sleeping core, it is accelerated only if budget remains. Task
//! boundaries are invisible to the controller — which is exactly why it can
//! keep accelerating runtime idle loops and lose to CATA on pipeline
//! applications, while beating CATA at reclaiming the budget of
//! blocked-but-accelerated tasks (the paper's §V-D discussion).

use super::{apply_transition, AccelEffects, AccelManager, ReconfigStats};
use cata_sim::machine::{CoreId, Machine, PowerLevel};
use cata_sim::stats::Counters;
use cata_sim::time::SimTime;

/// The TurboMode hardware controller.
#[derive(Debug)]
pub struct TurboModeCtl {
    accel: Vec<bool>,
    halted: Vec<bool>,
    budget: usize,
    accel_count: usize,
    fast: PowerLevel,
    slow: PowerLevel,
    rng: u64,
}

impl TurboModeCtl {
    /// Creates the controller for `machine` with the given power budget and
    /// a deterministic seed for the random active-core selection.
    pub fn new(machine: &Machine, budget: usize, seed: u64) -> Self {
        let cfg = machine.config();
        assert!(budget <= cfg.num_cores);
        TurboModeCtl {
            accel: vec![false; cfg.num_cores],
            halted: vec![false; cfg.num_cores],
            budget,
            accel_count: 0,
            fast: cfg.fast_level,
            slow: cfg.slow_level,
            rng: seed | 1,
        }
    }

    /// Cores currently accelerated.
    pub fn accelerated_count(&self) -> usize {
        self.accel_count
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64: deterministic, no external dependency.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Picks a random active (C0), non-accelerated core.
    fn pick_random_active(&mut self) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.accel.len())
            .filter(|&c| !self.halted[c] && !self.accel[c])
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let r = self.next_rand() as usize % candidates.len();
        Some(candidates[r])
    }
}

impl AccelManager for TurboModeCtl {
    fn name(&self) -> &'static str {
        "TurboMode"
    }

    fn on_init(&mut self, machine: &mut Machine, now: SimTime) -> AccelEffects {
        // All cores boot active (the runtime's idle loops are C0): the
        // controller hands the budget to the first `budget` cores.
        let mut effects = AccelEffects::none();
        let mut counters = Counters::default();
        for core in 0..self.budget {
            self.accel[core] = true;
            self.accel_count += 1;
            apply_transition(
                machine,
                CoreId(core as u32),
                self.fast,
                now,
                &mut effects,
                &mut counters,
            );
        }
        effects
    }

    fn on_task_start(
        &mut self,
        _core: CoreId,
        _critical: bool,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        // Task boundaries are invisible to TurboMode.
        AccelEffects::none()
    }

    fn on_task_end(
        &mut self,
        _core: CoreId,
        _now: SimTime,
        _machine: &mut Machine,
        _counters: &mut Counters,
    ) -> AccelEffects {
        AccelEffects::none()
    }

    fn on_core_halt(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let c = core.index();
        self.halted[c] = true;
        let mut effects = AccelEffects::none();
        if self.accel[c] {
            self.accel[c] = false;
            apply_transition(machine, core, self.slow, now, &mut effects, counters);
            if let Some(lucky) = self.pick_random_active() {
                self.accel[lucky] = true;
                apply_transition(
                    machine,
                    CoreId(lucky as u32),
                    self.fast,
                    now,
                    &mut effects,
                    counters,
                );
            } else {
                self.accel_count -= 1;
            }
        }
        effects
    }

    fn on_core_wake(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let c = core.index();
        self.halted[c] = false;
        let mut effects = AccelEffects::none();
        if !self.accel[c] && self.accel_count < self.budget {
            self.accel[c] = true;
            self.accel_count += 1;
            apply_transition(machine, core, self.fast, now, &mut effects, counters);
        }
        effects
    }

    fn stats(&self) -> ReconfigStats {
        ReconfigStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::machine::MachineConfig;

    fn setup(budget: usize) -> (Machine, TurboModeCtl) {
        let mut m = Machine::new(MachineConfig::small_test(4));
        let mut t = TurboModeCtl::new(&m, budget, 42);
        t.on_init(&mut m, SimTime::ZERO);
        (m, t)
    }

    #[test]
    fn init_accelerates_budget_cores() {
        let (m, t) = setup(2);
        assert_eq!(t.accelerated_count(), 2);
        assert_eq!(m.accelerated_count(), 2);
    }

    #[test]
    fn halt_reallocates_to_an_active_core() {
        let (mut m, mut t) = setup(2);
        let mut c = Counters::default();
        let e = t.on_core_halt(CoreId(0), SimTime::from_us(50), &mut m, &mut c);
        // Core 0 decelerates, some active core (2 or 3; 1 is already fast)
        // accelerates.
        assert_eq!(e.settles.len(), 2);
        assert_eq!(t.accelerated_count(), 2);
        assert!(!t.accel[0]);
        assert!(t.accel[2] || t.accel[3]);
    }

    #[test]
    fn halt_with_no_candidate_frees_budget() {
        let (mut m, mut t) = setup(4); // everyone accelerated
        let mut c = Counters::default();
        t.on_core_halt(CoreId(0), SimTime::from_us(1), &mut m, &mut c);
        assert_eq!(t.accelerated_count(), 3);
        // Waking re-claims the free slot.
        t.on_core_wake(CoreId(0), SimTime::from_us(2), &mut m, &mut c);
        assert_eq!(t.accelerated_count(), 4);
    }

    #[test]
    fn wake_without_budget_stays_slow() {
        let (mut m, mut t) = setup(2);
        let mut c = Counters::default();
        t.on_core_halt(CoreId(0), SimTime::from_us(1), &mut m, &mut c); // budget moves on
        let e = t.on_core_wake(CoreId(0), SimTime::from_us(2), &mut m, &mut c);
        assert!(e.settles.is_empty(), "no budget left for the waking core");
        assert!(!t.accel[0]);
    }

    #[test]
    fn task_events_are_ignored() {
        let (mut m, mut t) = setup(1);
        let mut c = Counters::default();
        let e = t.on_task_start(CoreId(3), true, SimTime::ZERO, &mut m, &mut c);
        assert!(e.settles.is_empty());
        let e = t.on_task_end(CoreId(3), SimTime::from_us(9), &mut m, &mut c);
        assert!(e.settles.is_empty());
    }

    #[test]
    fn reallocation_is_deterministic_per_seed() {
        let picks_with = |seed| {
            let mut m = Machine::new(MachineConfig::small_test(4));
            let mut t = TurboModeCtl::new(&m, 1, seed);
            t.on_init(&mut m, SimTime::ZERO);
            let mut c = Counters::default();
            t.on_core_halt(CoreId(0), SimTime::from_us(1), &mut m, &mut c);
            (0..4).find(|&i| t.accel[i]).unwrap()
        };
        assert_eq!(picks_with(7), picks_with(7));
    }
}
