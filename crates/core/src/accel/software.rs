//! CATA with software-driven reconfiguration (§III-A): the Reconfiguration
//! Support Module (RSM) plus the serialized cpufreq path.
//!
//! Every task-start/end event takes the RSM lock, runs the shared decision
//! algorithm, and — if reconfigurations are needed — performs one cpufreq
//! write per affected core while still holding the lock. The acting core is
//! busy in the runtime for the whole sequence (`resume_at`), and concurrent
//! events on other cores queue up behind the lock: this is the
//! *reconfiguration serialization* overhead the RSU removes.

use super::{apply_transition, AccelEffects, AccelManager, ReconfigStats};
use cata_cpufreq::software_path::{SoftwareDvfsPath, SoftwarePathParams};
use cata_rsu::engine::{Cmd, ReconfigEngine};
use cata_sim::machine::{CoreId, Machine, PowerLevel};
use cata_sim::stats::Counters;
use cata_sim::time::{SimDuration, SimTime};

/// The software CATA manager: RSM state + decision engine + cpufreq path.
#[derive(Debug)]
pub struct SoftwareCata {
    engine: ReconfigEngine,
    path: SoftwareDvfsPath,
    fast: PowerLevel,
    slow: PowerLevel,
    overhead: SimDuration,
}

impl SoftwareCata {
    /// Creates the manager for `machine` with the given power budget
    /// (max simultaneously accelerated cores) and software path parameters.
    pub fn new(machine: &Machine, budget: usize, params: SoftwarePathParams) -> Self {
        let cfg = machine.config();
        SoftwareCata {
            engine: ReconfigEngine::new(cfg.num_cores, budget),
            path: SoftwareDvfsPath::new(params, cfg.reconfig_latency),
            fast: cfg.fast_level,
            slow: cfg.slow_level,
            overhead: SimDuration::ZERO,
        }
    }

    /// The decision engine (tests/diagnostics).
    pub fn engine(&self) -> &ReconfigEngine {
        &self.engine
    }

    fn level_for(&self, cmd: Cmd) -> PowerLevel {
        match cmd {
            Cmd::Accelerate(_) => self.fast,
            Cmd::Decelerate(_) => self.slow,
        }
    }

    /// Runs the serialized software path for a decision that produced
    /// `cmds`, scheduling one transition per command.
    fn run_path(
        &mut self,
        cmds: &[Cmd],
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let mut effects = AccelEffects::none();
        let grant = self.path.request_ops(now, cmds.len());
        for (cmd, &t_start) in cmds.iter().zip(&grant.op_transition_starts) {
            let target = self.level_for(*cmd);
            apply_transition(
                machine,
                CoreId(cmd.core() as u32),
                target,
                t_start,
                &mut effects,
                counters,
            );
        }
        self.overhead += grant.returns_at.since(now);
        effects.resume_at = Some(grant.returns_at);
        effects
    }
}

impl AccelManager for SoftwareCata {
    fn name(&self) -> &'static str {
        "CATA"
    }

    fn on_task_start(
        &mut self,
        core: CoreId,
        critical: bool,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let cmds = self.engine.on_task_start(core.index(), critical);
        if cmds.len() == 2 {
            counters.accel_swaps += 1;
        }
        if cmds.is_empty() && critical && !self.engine.is_accelerated(core.index()) {
            counters.accel_denied += 1;
        }
        self.run_path(&cmds, now, machine, counters)
    }

    fn on_task_end(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let cmds = self.engine.on_task_end(core.index());
        self.run_path(&cmds, now, machine, counters)
    }

    fn on_core_idle(
        &mut self,
        core: CoreId,
        now: SimTime,
        machine: &mut Machine,
        counters: &mut Counters,
    ) -> AccelEffects {
        let cmds = self.engine.on_core_idle(core.index());
        if cmds.is_empty() {
            // Slow idle core: nothing to do, and the idle loop does not
            // bother the RSM lock.
            return AccelEffects::none();
        }
        self.run_path(&cmds, now, machine, counters)
    }

    fn stats(&self) -> ReconfigStats {
        ReconfigStats {
            lock_waits: self.path.lock_waits.clone(),
            latencies: self.path.latencies.clone(),
            overhead_total: self.overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::machine::MachineConfig;

    fn setup(budget: usize) -> (Machine, SoftwareCata) {
        let m = Machine::new(MachineConfig::small_test(4));
        let mgr = SoftwareCata::new(&m, budget, SoftwarePathParams::paper_calibrated());
        (m, mgr)
    }

    #[test]
    fn task_start_accelerates_and_charges_path_latency() {
        let (mut m, mut mgr) = setup(2);
        let mut c = Counters::default();
        let e = mgr.on_task_start(CoreId(0), false, SimTime::ZERO, &mut m, &mut c);
        // One write: rsm(0.3) + sysfs(1.5) + driver(1) + post(0.5) = 3.3 µs;
        // the rail ramp itself proceeds outside the locked section.
        assert_eq!(e.resume_or(SimTime::ZERO), SimTime::from_ns(3_300));
        assert_eq!(e.settles.len(), 1);
        assert_eq!(c.reconfigs_applied, 1);
        // The machine sees the pending acceleration (budget accounting).
        assert_eq!(m.accelerated_count(), 1);
    }

    #[test]
    fn empty_decision_still_takes_the_lock() {
        let (mut m, mut mgr) = setup(0);
        let mut c = Counters::default();
        let e = mgr.on_task_start(CoreId(0), false, SimTime::ZERO, &mut m, &mut c);
        assert!(e.settles.is_empty());
        // RSM section only: 300 ns of overhead, still serialized.
        assert_eq!(e.resume_or(SimTime::ZERO), SimTime::from_ns(300));
        assert_eq!(mgr.stats().lock_waits.count(), 1);
        assert_eq!(mgr.stats().latencies.count(), 0);
    }

    #[test]
    fn swap_is_two_writes_under_one_hold() {
        let (mut m, mut mgr) = setup(1);
        let mut c = Counters::default();
        mgr.on_task_start(CoreId(0), false, SimTime::ZERO, &mut m, &mut c);
        let e = mgr.on_task_start(CoreId(1), true, SimTime::from_ms(1), &mut m, &mut c);
        assert_eq!(e.settles.len(), 2);
        assert_eq!(c.accel_swaps, 1);
        // Two ops after the first decision's residue: still exactly one
        // accelerated core from the machine's point of view.
        assert_eq!(m.accelerated_count(), 1);
    }

    #[test]
    fn concurrent_events_serialize_on_the_path() {
        let (mut m, mut mgr) = setup(4);
        let mut c = Counters::default();
        let t = SimTime::from_ms(1);
        let e0 = mgr.on_task_start(CoreId(0), false, t, &mut m, &mut c);
        let e1 = mgr.on_task_start(CoreId(1), false, t, &mut m, &mut c);
        assert!(e1.resume_or(t) > e0.resume_or(t));
        let s = mgr.stats();
        assert!(s.lock_waits.max() > SimDuration::ZERO);
        assert!(s.overhead_total > SimDuration::ZERO);
    }

    #[test]
    fn denied_critical_task_is_counted() {
        let (mut m, mut mgr) = setup(1);
        let mut c = Counters::default();
        mgr.on_task_start(CoreId(0), true, SimTime::ZERO, &mut m, &mut c);
        mgr.on_task_start(CoreId(1), true, SimTime::from_ms(1), &mut m, &mut c);
        assert_eq!(c.accel_denied, 1);
    }
}
