//! The discrete-event execution engine: runs a task graph on the simulated
//! machine under one of the paper's six configurations and measures
//! everything the figures need.
//!
//! The engine models the runtime the way the paper's Nanos++ setup works:
//!
//! - a **master thread** submits tasks in program order; each submission
//!   costs creation time plus (for `CATS+BL`) the bottom-level ancestor
//!   walk, so criticality estimation overhead delays task availability
//!   exactly as §V-A describes;
//! - **worker cores** pull tasks from the policy's ready queues, paying a
//!   dispatch cost, then the acceleration manager's prologue (for software
//!   CATA this is the serialized RSM + cpufreq path), then execute the task
//!   body under the progress model (mid-task DVFS changes re-project
//!   completion), then run the manager's epilogue before going idle;
//! - blocked tasks halt their core (C1), which TurboMode exploits and CATA
//!   deliberately does not (§V-D).
//!
//! Determinism: all state transitions are driven by a deterministic event
//! queue; the only randomness (TurboMode's victim pick) is seeded from the
//! run configuration. Same config + same graph ⇒ bit-identical report.

use crate::accel::{AccelEffects, AccelManager};
use crate::config::{RunConfig, RuntimeCosts};
use crate::exp::error::ExpError;
use crate::exp::registry::{default_registries, PolicyRegistries, ResolvedPolicies};
use crate::exp::spec::ScenarioSpec;
use crate::fault::{
    default_recovery_registry, fault_rng, FaultReport, FaultSpec, RecoveryAction, RecoveryCtx,
    RecoveryPolicy, SplitMix64,
};
use crate::mem::{default_arbitration_registry, MemoryReport, MemorySpec};
use crate::policy::{DispatchCtx, SchedulerPolicy};
use crate::report::RunReport;
use cata_power::{integrate_machine, PowerParams};
use cata_sim::activity::Activity;
use cata_sim::event::{EventBackend, EventQueue};
use cata_sim::machine::{CoreId, Machine, MachineConfig};
use cata_sim::memory::ArbitrationPolicy;
use cata_sim::progress::{Milestone, RunningTask};
use cata_sim::stats::Counters;
use cata_sim::time::{SimDuration, SimTime};
use cata_sim::trace::{Trace, TraceEvent, TraceMode};
use cata_tdg::criticality::CriticalityEstimator;
use cata_tdg::{GraphView, TaskGraph, TaskId};

/// Every non-policy knob the engine needs: the common denominator of
/// [`RunConfig`] (the enum-based compat surface) and
/// [`ScenarioSpec`](crate::exp::ScenarioSpec) (the registry-keyed facade).
#[derive(Debug, Clone)]
pub(crate) struct EngineParams {
    pub label: String,
    pub machine: MachineConfig,
    pub fast_cores: usize,
    pub costs: RuntimeCosts,
    pub idle_to_halt: Option<SimDuration>,
    pub idle_decel_delay: SimDuration,
    pub wake_latency: SimDuration,
    pub power: PowerParams,
    pub trace: TraceMode,
    pub seed: u64,
    pub faults: Option<FaultSpec>,
    pub event_queue: EventBackend,
    /// Contended shared-memory model; `None` (or a noop spec, filtered at
    /// construction) keeps the uncontended legacy machine bit-identical.
    pub memory: Option<MemorySpec>,
}

impl From<&RunConfig> for EngineParams {
    fn from(cfg: &RunConfig) -> Self {
        EngineParams {
            label: cfg.label.clone(),
            machine: cfg.machine.clone(),
            fast_cores: cfg.fast_cores,
            costs: cfg.costs,
            idle_to_halt: cfg.idle_to_halt,
            idle_decel_delay: cfg.idle_decel_delay,
            wake_latency: cfg.wake_latency,
            power: cfg.power.clone(),
            trace: cfg.trace,
            seed: cfg.seed,
            // The enum-based compat surface predates fault injection;
            // faulted runs go through `ScenarioSpec`.
            faults: None,
            event_queue: cata_sim::event::default_backend(),
            memory: None,
        }
    }
}

impl From<&ScenarioSpec> for EngineParams {
    fn from(spec: &ScenarioSpec) -> Self {
        EngineParams {
            label: spec.name.clone(),
            machine: spec.machine.clone(),
            fast_cores: spec.fast_cores,
            costs: spec.costs,
            idle_to_halt: spec.idle_to_halt,
            idle_decel_delay: spec.idle_decel_delay,
            wake_latency: spec.wake_latency,
            power: spec.power.clone(),
            trace: spec.trace,
            seed: spec.seed,
            faults: spec.faults.clone(),
            // Key resolution is fallible; the spec entry points resolve
            // through the registry (after `validate`) and overwrite this.
            event_queue: cata_sim::event::default_backend(),
            // An unlimited-slot spec is the uncontended model: filter it
            // here so the engine's fast path stays gate-free.
            memory: spec.memory.clone().filter(|m| !m.is_noop()),
        }
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The master finished submitting the next task.
    SubmitDone,
    /// A core's runtime prologue finished; the task body begins.
    TaskBegin { core: u32, epoch: u64 },
    /// A running task reached its next milestone (complete/block/unblock).
    Milestone { core: u32, epoch: u64, gen: u64 },
    /// A core's runtime epilogue finished; it requests new work.
    CoreFree { core: u32, epoch: u64 },
    /// A DVFS transition may have settled on a core.
    DvfsSettle { core: u32 },
    /// An idle core's OS timeout expired; it halts (C1).
    IdleHalt { core: u32, epoch: u64 },
    /// A core stayed idle past the deceleration debounce; CATA may now
    /// release its budget.
    IdleDecel { core: u32, epoch: u64 },
    /// A scheduled fault fail-stops a core (fault injection only).
    CoreFail { core: u32, permanent: bool },
    /// A failed core's recovery window closed; it rejoins the machine.
    CoreRecover { core: u32 },
    /// A granted task's memory-bandwidth hold expired; the slot frees and
    /// arbitration picks the next waiter (contended memory only).
    MemRelease { core: u32, epoch: u64 },
}

/// What a core is doing, from the executor's point of view. The lifetime
/// is the task graph's: a running task borrows its profile from the graph
/// instead of cloning it per assignment.
#[derive(Debug)]
enum CoreRun<'g> {
    /// Spinning in the runtime idle loop.
    Idle,
    /// Halted in C1 (idle timeout, only with `idle_to_halt`).
    Halted,
    /// Running the runtime prologue (dispatch + acceleration path).
    Prologue { task: TaskId },
    /// Executing a task body.
    Running { task: TaskId, rt: RunningTask<'g> },
    /// Parked at the memory gate: the prologue finished but every
    /// bandwidth slot is taken. The core stays *busy* (spinning on the
    /// access), burning energy without progress — interference stretches
    /// wall time.
    MemWait { task: TaskId },
    /// Running the runtime epilogue (task-end acceleration path).
    Epilogue,
}

#[derive(Debug)]
struct CoreCtl<'g> {
    run: CoreRun<'g>,
    /// Bumped on every assignment; stale scheduled events are discarded by
    /// comparing epochs.
    epoch: u64,
    /// An IdleHalt event is pending for the current idle period.
    halt_scheduled: bool,
    /// The acceleration manager has been told about the current idle period.
    idle_notified: bool,
}

/// Sentinel for "not linked" in [`IdleIndex`].
pub(crate) const NIL: u32 = u32::MAX;

/// A persistent index of *available* (idle or halted) cores, kept in
/// dispatch order — the structure that replaces the per-event candidate
/// `Vec` + sort the dispatch loop used to allocate.
///
/// Dispatch order is `(preferred class, idle arrival)`: when the scheduler
/// prefers fast cores (CATS), static-fast cores form class 0 and everyone
/// else class 1; otherwise all cores share class 1 and the order is pure
/// idle-arrival FIFO — exactly the sort key of the old code, so scheduling
/// decisions are bit-identical. Each class is an intrusive doubly linked
/// list over fixed per-core link arrays: cores always *become* available
/// later than every core already listed (idle stamps are monotonic), so
/// insertion is an O(1) tail append, and assignment unlinks in O(1) from
/// anywhere. Zero allocations after [`reset`](Self::reset).
#[derive(Debug, Default)]
pub(crate) struct IdleIndex {
    next: Vec<u32>,
    prev: Vec<u32>,
    /// 0 = preferred (static-fast under a fast-preferring policy), 1 = rest.
    class: Vec<u8>,
    linked: Vec<bool>,
    /// Static speed class, for the `fast_core_idle` dispatch context.
    is_fast: Vec<bool>,
    head: [u32; 2],
    tail: [u32; 2],
    /// Available cores that are static-fast.
    avail_fast: usize,
}

impl IdleIndex {
    /// Re-initializes for a run: all `n` cores available in core order
    /// (their initial idle stamps are their indices), classed by
    /// `prefer_fast`/`is_fast_static`. Reuses every buffer.
    pub(crate) fn reset(&mut self, n: usize, prefer_fast: bool, is_fast_static: &[bool]) {
        self.next.clear();
        self.next.resize(n, NIL);
        self.prev.clear();
        self.prev.resize(n, NIL);
        self.linked.clear();
        self.linked.resize(n, false);
        self.class.clear();
        self.class.extend(
            is_fast_static
                .iter()
                .map(|&fast| u8::from(!(prefer_fast && fast))),
        );
        self.is_fast.clear();
        self.is_fast.extend_from_slice(is_fast_static);
        self.head = [NIL; 2];
        self.tail = [NIL; 2];
        self.avail_fast = 0;
        for i in 0..n {
            self.push(CoreId(i as u32));
        }
    }

    /// Appends a newly available core at the tail of its class list.
    pub(crate) fn push(&mut self, core: CoreId) {
        let i = core.index();
        debug_assert!(!self.linked[i], "{core} already available");
        let c = self.class[i] as usize;
        let t = self.tail[c];
        self.prev[i] = t;
        self.next[i] = NIL;
        if t == NIL {
            self.head[c] = core.0;
        } else {
            self.next[t as usize] = core.0;
        }
        self.tail[c] = core.0;
        self.linked[i] = true;
        if self.is_fast[i] {
            self.avail_fast += 1;
        }
    }

    /// Unlinks a core that got work assigned.
    pub(crate) fn remove(&mut self, core: CoreId) {
        let i = core.index();
        debug_assert!(self.linked[i], "{core} not available");
        let c = self.class[i] as usize;
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL {
            self.head[c] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail[c] = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
        self.linked[i] = false;
        if self.is_fast[i] {
            self.avail_fast -= 1;
        }
    }

    /// First core in dispatch order.
    pub(crate) fn first(&self) -> Option<CoreId> {
        let h = if self.head[0] != NIL {
            self.head[0]
        } else {
            self.head[1]
        };
        (h != NIL).then_some(CoreId(h))
    }

    /// The core visited after `core`. Capture this *before* removing
    /// `core`: the successor stays valid because dispatch only ever
    /// removes the core it is currently visiting.
    pub(crate) fn next_after(&self, core: CoreId) -> Option<CoreId> {
        let i = core.index();
        let n = self.next[i];
        if n != NIL {
            return Some(CoreId(n));
        }
        if self.class[i] == 0 && self.head[1] != NIL {
            return Some(CoreId(self.head[1]));
        }
        None
    }

    /// True if any static-fast core is available (idle or halted).
    pub(crate) fn any_fast_available(&self) -> bool {
        self.avail_fast > 0
    }

    /// True if `core` is currently linked as available — fault injection
    /// must evict a failing idle core, but only if it is actually listed.
    pub(crate) fn is_linked(&self, core: CoreId) -> bool {
        self.linked[core.index()]
    }
}

/// Per-run fault-injection state: the schedule's bookkeeping, the seeded
/// RNG, and the accumulating [`FaultReport`]. Present only when the
/// scenario carries a [`FaultSpec`]; fault-free runs never touch it.
pub(crate) struct FaultState {
    pub(crate) spec: FaultSpec,
    pub(crate) policy: Box<dyn RecoveryPolicy>,
    pub(crate) rng: SplitMix64,
    /// Per-core "currently failed" flag.
    pub(crate) failed: Vec<bool>,
    /// When each currently-failed core failed (capacity accounting).
    pub(crate) fail_since: Vec<Option<SimTime>>,
    /// Consecutive transient failures of the core's pending DVFS settle.
    pub(crate) settle_retries: Vec<u32>,
    /// Per-task transient-fault re-executions used (bounded by
    /// `max_retries` so a p=1 schedule still terminates).
    pub(crate) task_retries: Vec<u32>,
    /// When each displaced task was displaced (recovery-latency samples).
    pub(crate) displaced_at: Vec<Option<SimTime>>,
    pub(crate) report: FaultReport,
}

impl FaultState {
    pub(crate) fn new(
        spec: &FaultSpec,
        policy: Box<dyn RecoveryPolicy>,
        seed: u64,
        cores: usize,
        tasks: usize,
    ) -> Self {
        FaultState {
            spec: spec.clone(),
            policy,
            rng: fault_rng(seed),
            failed: vec![false; cores],
            fail_since: vec![None; cores],
            settle_retries: vec![0; cores],
            task_retries: vec![0; tasks],
            displaced_at: vec![None; tasks],
            report: FaultReport::default(),
        }
    }

    /// Grows the per-task vectors (the service engine's global-id space
    /// expands as instance slots are allocated).
    pub(crate) fn grow_tasks(&mut self, tasks: usize) {
        if tasks > self.task_retries.len() {
            self.task_retries.resize(tasks, 0);
            self.displaced_at.resize(tasks, None);
        }
    }

    /// The failure schedule as `(time, event)` pushes for the run's event
    /// queue; `fail`/`recover` map to the engine's own event type.
    pub(crate) fn schedule_into<E>(
        &self,
        mut fail: impl FnMut(u32, bool) -> E,
        mut recover: impl FnMut(u32) -> E,
    ) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.spec.core_failures.len() * 2);
        for f in &self.spec.core_failures {
            let at = SimTime::ZERO + f.at;
            out.push((at, fail(f.core as u32, f.recover_after.is_none())));
            if let Some(r) = f.recover_after {
                out.push((at + r, recover(f.core as u32)));
            }
        }
        out
    }

    /// The schedule for the closed-system engine's event type.
    fn schedule(&self) -> Vec<(SimTime, Ev)> {
        self.schedule_into(
            |core, permanent| Ev::CoreFail { core, permanent },
            |core| Ev::CoreRecover { core },
        )
    }
}

/// Per-run memory-gate state: the arbitration policy, per-core wait/hold
/// bookkeeping, and the accumulating [`MemoryReport`]. Present only when
/// the scenario carries a *contended* [`MemorySpec`]; uncontended runs
/// never touch it (and no
/// [`MemorySubsystem`](cata_sim::MemorySubsystem) is attached to the
/// machine, so the legacy model stays bit-identical).
pub(crate) struct MemState {
    pub(crate) policy: Box<dyn ArbitrationPolicy>,
    /// When each core's pending slot request was enqueued.
    pub(crate) wait_since: Vec<Option<SimTime>>,
    /// Per-core "currently holds a slot" flag — guards stale release
    /// events after faults and re-executions.
    pub(crate) holding: Vec<bool>,
    pub(crate) report: MemoryReport,
}

impl MemState {
    pub(crate) fn new(spec: &MemorySpec, policy: Box<dyn ArbitrationPolicy>, cores: usize) -> Self {
        MemState {
            policy,
            wait_since: vec![None; cores],
            holding: vec![false; cores],
            report: MemoryReport {
                slots: spec.slots,
                arbitration: spec.arbitration.clone(),
                ..MemoryReport::default()
            },
        }
    }
}

/// Retry penalty charged when a simulated DVFS settle write fails
/// transiently: the settle re-fires this much later. Deterministic and
/// deliberately small — the interesting effect is the *classification*
/// (recovered vs exhausted), not the delay model.
pub(crate) const RECONFIG_RETRY_DELAY: SimDuration = SimDuration::from_us(1);

/// Per-thread engine buffers reused across runs: suite workers batch many
/// small scenarios, and re-growing the event heap, dependence counters and
/// idle index for every one of them is measurable waste (the ROADMAP
/// "batching many small scenarios per thread" item). Taken from a
/// thread-local by the executor entry points and handed back after the
/// run; the per-run warm-up allocation therefore happens once per worker
/// thread, not once per scenario.
#[derive(Debug, Default)]
struct EngineScratch {
    events: EventQueue<Ev>,
    /// SoA snapshot of the run's graph (CSR successors, predecessor
    /// counts, criticality levels, work scalars), rebuilt per run.
    view: GraphView,
    indegree: Vec<u32>,
    crit: Vec<bool>,
    idle: IdleIndex,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<EngineScratch> =
        std::cell::RefCell::new(EngineScratch::default());
}

/// Runs one engine execution with the thread's scratch buffers.
///
/// Fault-free runs cannot fail; a faulted run fails cleanly when the
/// recovery key is unknown or the injected schedule stalls the machine.
fn run_with_scratch(
    params: &EngineParams,
    resolved: ResolvedPolicies,
    graph: &TaskGraph,
    workload: &str,
) -> Result<(RunReport, Trace), ExpError> {
    let recovery = match &params.faults {
        Some(f) => Some(default_recovery_registry().build(&f.recovery, f)?),
        None => None,
    };
    let arbitration = match &params.memory {
        Some(m) => Some(default_arbitration_registry().build(&m.arbitration, m)?),
        None => None,
    };
    SCRATCH.with(|cell| {
        let scratch = cell.take();
        let (result, trace, scratch) =
            Engine::new(params, resolved, graph, scratch, recovery, arbitration).run(workload);
        cell.replace(scratch);
        result.map(|report| (report, trace))
    })
}

/// The discrete-event executor.
///
/// Two ways to drive it:
///
/// - **Legacy, enum-based**: [`SimExecutor::new`] with a [`RunConfig`],
///   then [`run`](Self::run) with a pre-built graph. The enums resolve
///   through the default policy registries.
/// - **Facade**: a default-constructed `SimExecutor` implements
///   [`Executor`](crate::exp::Executor); a
///   [`Scenario`](crate::exp::Scenario) fully describes the run (machine,
///   workload, policies, seed), and
///   [`run_scenario`](Self::run_scenario) /
///   [`run_scenario_traced`](Self::run_scenario_traced) execute it.
#[derive(Debug, Default)]
pub struct SimExecutor {
    cfg: Option<RunConfig>,
}

impl SimExecutor {
    /// Creates an executor bound to one enum-based configuration.
    pub fn new(cfg: RunConfig) -> Self {
        SimExecutor { cfg: Some(cfg) }
    }

    /// The bound configuration, if any (`None` for a pure facade backend).
    pub fn config(&self) -> Option<&RunConfig> {
        self.cfg.as_ref()
    }

    /// Runs `graph` to completion and reports. `workload` is a label.
    ///
    /// # Panics
    /// Panics if no [`RunConfig`] is bound, the configuration is
    /// inconsistent (budget > cores), or the simulation deadlocks (a
    /// task-graph bug).
    pub fn run(&self, graph: &TaskGraph, workload: &str) -> (RunReport, Trace) {
        let cfg = self
            .cfg
            .as_ref()
            .expect("SimExecutor::run requires a RunConfig; use run_scenario for specs");
        let resolved = default_registries()
            .resolve(
                &cfg.policy_keys(),
                &cfg.machine,
                cfg.fast_cores,
                cfg.seed,
                &cfg.policy_params(),
            )
            .unwrap_or_else(|e| panic!("RunConfig `{}` failed to resolve: {e}", cfg.label));
        // RunConfig carries no fault schedule, so the engine is infallible
        // on this path.
        run_with_scratch(&EngineParams::from(cfg), resolved, graph, workload)
            .expect("fault-free runs cannot fail")
    }

    /// Executes a scenario spec end to end: resolves its policy keys
    /// through `registries`, generates its workload, simulates, reports.
    pub fn run_spec(
        &self,
        spec: &ScenarioSpec,
        registries: &PolicyRegistries,
    ) -> Result<(RunReport, Trace), ExpError> {
        spec.validate()?;
        let keys = crate::exp::registry::PolicyKeys {
            scheduler: spec.scheduler.clone(),
            estimator: spec.estimator.clone(),
            accel: spec.accel.clone(),
        };
        let params = spec.params_or_default();
        let resolve =
            || registries.resolve(&keys, &spec.machine, spec.fast_cores, spec.seed, &params);
        // Graph and report label come from one workload load, so a store
        // cell can never name a different revision of an unpinned TDG
        // file than the graph that actually ran.
        let (graph, label) = spec.workload.build_labeled_graph()?;
        let mut engine_params = EngineParams::from(spec);
        engine_params.event_queue = crate::exp::registry::default_event_queue_registry()
            .resolve_spec(spec.event_queue.as_deref())?;
        let (mut report, trace) = run_with_scratch(&engine_params, resolve()?, &graph, &label)?;
        // Faulted cells also run their fault-free twin (same spec, no
        // schedule) so the report carries makespan degradation — the
        // number the robustness tables plot.
        if report.fault.is_some() {
            engine_params.faults = None;
            engine_params.trace = TraceMode::Off;
            let (twin, _) = run_with_scratch(&engine_params, resolve()?, &graph, &label)?;
            let faulted_ps = report.exec_time.as_ps();
            if let Some(fault) = report.fault.as_mut() {
                if twin.exec_time.as_ps() > 0 {
                    fault.makespan_degradation = faulted_ps as f64 / twin.exec_time.as_ps() as f64;
                }
            }
        }
        Ok((report, trace))
    }
}

struct Engine<'g> {
    cfg: &'g EngineParams,
    graph: &'g TaskGraph,
    machine: Machine,
    policy: Box<dyn SchedulerPolicy>,
    accel: Box<dyn AccelManager>,
    estimator: Box<dyn CriticalityEstimator>,
    /// The estimator's `classify_level` is the task type's static
    /// annotation (cached once — `make_ready` then reads the view's
    /// level array instead of making a virtual call per ready task).
    est_static: bool,
    events: EventQueue<Ev>,
    /// SoA snapshot of `graph` (owned via scratch; returned after the run).
    view: GraphView,
    cores: Vec<CoreCtl<'g>>,
    /// Available (idle/halted) cores in dispatch order; maintained
    /// incrementally so dispatch never builds or sorts a candidate list.
    idle: IdleIndex,
    /// A core entered the idle loop since the last dispatch; its decel
    /// debounce / halt timers still need arming.
    idle_dirty: bool,
    /// Remaining unfinished predecessors per task.
    indegree: Vec<u32>,
    /// Tasks `0..submitted` are visible to the runtime.
    submitted: usize,
    /// Criticality classification, assigned when a task becomes ready.
    crit: Vec<bool>,
    done: usize,
    counters: Counters,
    trace: Trace,
    last_completion: SimTime,
    is_fast_static: Vec<bool>,
    /// Fault-injection bookkeeping; `None` on a perfect machine.
    fault: Option<FaultState>,
    /// Memory-gate bookkeeping; `None` on the uncontended machine.
    mem: Option<MemState>,
}

impl<'g> Engine<'g> {
    fn new(
        cfg: &'g EngineParams,
        resolved: ResolvedPolicies,
        graph: &'g TaskGraph,
        scratch: EngineScratch,
        recovery: Option<Box<dyn RecoveryPolicy>>,
        arbitration: Option<Box<dyn ArbitrationPolicy>>,
    ) -> Self {
        let n_cores = cfg.machine.num_cores;
        assert!(
            cfg.fast_cores <= n_cores,
            "fast_cores {} exceeds machine size {n_cores}",
            cfg.fast_cores
        );

        let ResolvedPolicies {
            policy,
            estimator,
            accel,
            mut machine,
            is_fast_static,
            caps,
        } = resolved;

        // A contended scenario attaches the shared memory subsystem to
        // the machine as an explicit component; uncontended runs leave
        // the machine exactly as the registry built it.
        let mem = cfg.memory.as_ref().zip(arbitration).map(|(spec, policy)| {
            machine.attach_memory(spec.slots as usize);
            MemState::new(spec, policy, n_cores)
        });

        let n = graph.num_tasks();
        let EngineScratch {
            mut events,
            mut view,
            mut indegree,
            mut crit,
            mut idle,
        } = scratch;
        // Pre-size from the graph: ~4 events per task in flight worst-case
        // (submit, begin, milestone, free). Reused buffers keep their
        // allocation from the previous run on this thread.
        events.ensure_backend(cfg.event_queue);
        events.reset();
        events.reserve(n * 4);
        view.rebuild(graph);
        indegree.clear();
        indegree.extend_from_slice(view.pred_counts());
        crit.clear();
        crit.resize(n, false);
        idle.reset(n_cores, caps.prefer_fast, &is_fast_static);

        let est_static = estimator.is_annotation_static();
        Engine {
            cfg,
            graph,
            machine,
            policy,
            accel,
            estimator,
            est_static,
            events,
            view,
            cores: (0..n_cores)
                .map(|_| CoreCtl {
                    run: CoreRun::Idle,
                    epoch: 0,
                    halt_scheduled: false,
                    idle_notified: false,
                })
                .collect(),
            idle,
            idle_dirty: true,
            indegree,
            submitted: 0,
            crit,
            done: 0,
            counters: Counters::default(),
            trace: Trace::with_mode(cfg.trace),
            last_completion: SimTime::ZERO,
            is_fast_static,
            fault: cfg
                .faults
                .as_ref()
                .zip(recovery)
                .map(|(spec, policy)| FaultState::new(spec, policy, cfg.seed, n_cores, n)),
            mem,
        }
    }

    fn run(mut self, workload: &str) -> (Result<RunReport, ExpError>, Trace, EngineScratch) {
        let total = self.graph.num_tasks();
        // Controller initialization (TurboMode boots with budget assigned).
        let init = self.accel.on_init(&mut self.machine, SimTime::ZERO);
        self.push_settles(&init);

        // Master thread: schedule the first submission.
        if total > 0 {
            let cost = self.submission_cost(TaskId(0));
            self.events.push(SimTime::ZERO + cost, Ev::SubmitDone);
        }

        // The injected fault schedule rides the ordinary event queue.
        if let Some(fs) = &self.fault {
            for (at, ev) in fs.schedule() {
                self.events.push(at, ev);
            }
        }

        while self.done < total {
            let Some((now, ev)) = self.events.pop() else {
                if let Some(fs) = &self.fault {
                    // An exhausted queue with work remaining is a *clean*
                    // outcome under fault injection: the schedule removed
                    // the capacity the rest of the graph needed.
                    let dead = fs.failed.iter().filter(|&&f| f).count();
                    let err = ExpError::Stalled(format!(
                        "fault schedule removed the capacity the run needed: \
                         {}/{} tasks done, {} submitted, {} ready, {dead} core(s) failed",
                        self.done,
                        total,
                        self.submitted,
                        self.policy.len()
                    ));
                    let scratch = EngineScratch {
                        events: self.events,
                        view: self.view,
                        indegree: self.indegree,
                        crit: self.crit,
                        idle: self.idle,
                    };
                    return (Err(err), self.trace, scratch);
                }
                panic!(
                    "simulation deadlock: {}/{} tasks done, {} submitted, queue len {}",
                    self.done,
                    total,
                    self.submitted,
                    self.policy.len()
                );
            };
            self.counters.sim_events += 1;
            self.handle(now, ev);
            self.dispatch(now);
        }

        let end = self.last_completion;
        // Close the capacity ledger: cores still failed at run end lost
        // the remainder of the window.
        let fault = self.fault.take().map(|mut fs| {
            for i in 0..fs.failed.len() {
                if fs.failed[i] {
                    if let Some(t) = fs.fail_since[i].take() {
                        fs.report.capacity_lost += end.saturating_since(t);
                    }
                }
            }
            fs.report
        });
        let memory = self.mem.take().map(|ms| ms.report);
        self.machine.finish(end);
        let energy = integrate_machine(&self.machine, end.since(SimTime::ZERO), &self.cfg.power);
        let stats = self.accel.stats();
        let agg_core_time = end.as_ps().saturating_mul(self.machine.num_cores() as u64);
        let report = RunReport {
            label: self.cfg.label.clone(),
            workload: workload.to_string(),
            fast_cores: self.cfg.fast_cores,
            exec_time: end.since(SimTime::ZERO),
            energy,
            counters: self.counters.clone(),
            lock_waits: stats.lock_waits,
            reconfig_latencies: stats.latencies,
            reconfig_overhead: stats.overhead_total,
            reconfig_time_share: if agg_core_time == 0 {
                0.0
            } else {
                stats.overhead_total.as_ps() as f64 / agg_core_time as f64
            },
            core_utilization: self
                .machine
                .cores()
                .map(|c| c.timeline().utilization())
                .collect(),
            tasks: total,
            // Counters/Full runs tally every event kind; surface the
            // tallies so stored sweep cells carry them for dashboards.
            trace_counts: self.trace.is_enabled().then(|| *self.trace.counts()),
            // The simulator always runs the spec's machine verbatim.
            effective_cores: None,
            // Closed-system run: one graph, no arrival stream.
            service: None,
            fault,
            memory,
        };
        let scratch = EngineScratch {
            events: self.events,
            view: self.view,
            indegree: self.indegree,
            crit: self.crit,
            idle: self.idle,
        };
        (Ok(report), self.trace, scratch)
    }

    /// Cost of submitting `task` on the master thread.
    fn submission_cost(&mut self, task: TaskId) -> SimDuration {
        let visits = self.estimator.on_submit(self.graph, task);
        self.cfg.costs.task_creation + self.cfg.costs.per_bl_visit.saturating_mul(visits)
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::SubmitDone => {
                let i = self.submitted;
                self.submitted += 1;
                if self.indegree[i] == 0 {
                    self.make_ready(TaskId(i as u32), now);
                }
                if self.submitted < self.graph.num_tasks() {
                    let cost = self.submission_cost(TaskId(self.submitted as u32));
                    self.events.push(now + cost, Ev::SubmitDone);
                }
            }
            Ev::TaskBegin { core, epoch } => self.task_begin(CoreId(core), epoch, now),
            Ev::Milestone { core, epoch, gen } => self.milestone(CoreId(core), epoch, gen, now),
            Ev::CoreFree { core, epoch } => self.core_free(CoreId(core), epoch, now),
            Ev::DvfsSettle { core } => self.dvfs_settle(CoreId(core), now),
            Ev::IdleHalt { core, epoch } => self.idle_halt(CoreId(core), epoch, now),
            Ev::IdleDecel { core, epoch } => self.idle_decel(CoreId(core), epoch, now),
            Ev::CoreFail { core, permanent } => self.core_fail(CoreId(core), permanent, now),
            Ev::CoreRecover { core } => self.core_recover(CoreId(core), now),
            Ev::MemRelease { core, epoch } => self.mem_release(CoreId(core), epoch, now),
        }
    }

    /// Fail-stops a core: evict it from the idle index, cancel its
    /// pending events (epoch bump), and hand any in-flight task to the
    /// recovery policy. The acceleration manager is *not* notified — a
    /// dead accelerated core keeps its budget allocated, which is part of
    /// the capacity the failure costs.
    fn core_fail(&mut self, core: CoreId, permanent: bool, now: SimTime) {
        let i = core.index();
        let Some(fs) = self.fault.as_mut() else {
            return;
        };
        if fs.failed[i] {
            return; // overlapping windows: already down
        }
        fs.failed[i] = true;
        fs.fail_since[i] = Some(now);
        fs.report.injected += 1;

        // An in-flight task (prologue, body, or a blocked body) dies with
        // the core; a task in epilogue already completed.
        let displaced = match self.cores[i].run {
            CoreRun::Prologue { task } => Some(task),
            CoreRun::Running { task, .. } => Some(task),
            // A task parked at the memory gate dies with its core too.
            CoreRun::MemWait { task } => Some(task),
            _ => None,
        };
        if self.idle.is_linked(core) {
            self.idle.remove(core);
        }
        let ctl = &mut self.cores[i];
        ctl.epoch += 1;
        ctl.halt_scheduled = false;
        ctl.idle_notified = false;
        ctl.run = CoreRun::Halted;
        self.machine.set_activity(core, now, Activity::Halted);

        // A failed core frees its memory-gate state: a held bandwidth
        // slot is released (a waiter may be granted right now), a queued
        // request is cancelled.
        if let Some(ms) = self.mem.as_mut() {
            if ms.holding[i] {
                ms.holding[i] = false;
                self.machine
                    .memory_mut()
                    .expect("memory subsystem")
                    .release();
                self.mem_grant(now);
            } else if ms.wait_since[i].take().is_some() {
                self.machine
                    .memory_mut()
                    .expect("memory subsystem")
                    .cancel_core(core);
            }
        }

        if let Some(task) = displaced {
            let critical = self.crit[task.index()];
            let fs = self.fault.as_mut().expect("fault state present");
            fs.report.displaced += 1;
            fs.displaced_at[task.index()] = Some(now);
            let action = fs.policy.on_displaced(&RecoveryCtx {
                now,
                failed_core: i,
                critical,
                permanent,
                degraded: true,
            });
            let prefer_fast = match action {
                RecoveryAction::Requeue { prefer_fast } => prefer_fast,
                // Dropping a DAG node would deadlock its successors; the
                // closed-system engine degrades Shed to a plain requeue
                // (service mode sheds the whole instance instead).
                RecoveryAction::Shed => false,
            };
            let mut level = self.estimator.classify_level(self.graph, task);
            if prefer_fast && level == 0 {
                level = 1;
                self.crit[task.index()] = true;
            }
            self.policy.enqueue(task, level);
        }
    }

    /// A failed core's recovery window closed: it rejoins the idle index
    /// and can take work again. Time spent down is charged to the
    /// capacity ledger.
    fn core_recover(&mut self, core: CoreId, now: SimTime) {
        let i = core.index();
        let Some(fs) = self.fault.as_mut() else {
            return;
        };
        if !fs.failed[i] {
            return;
        }
        fs.failed[i] = false;
        fs.report.recovered_cores += 1;
        if let Some(t) = fs.fail_since[i].take() {
            fs.report.capacity_lost += now.saturating_since(t);
        }
        let ctl = &mut self.cores[i];
        ctl.epoch += 1;
        ctl.run = CoreRun::Idle;
        ctl.halt_scheduled = false;
        ctl.idle_notified = false;
        self.idle.push(core);
        self.idle_dirty = true;
        self.machine.set_activity(core, now, Activity::Idle);
    }

    fn push_settles(&mut self, effects: &AccelEffects) {
        // The paper's safety property (§III-A): the *committed* fast-core
        // count — cores whose target level is fast — never exceeds the
        // power budget. Transient settled-level excursions bounded by the
        // transition latency can still occur during swaps (exactly as in
        // gem5's DVFS model, where a superseded down-ramp never dips); the
        // commitment invariant is the one reconfiguration serialization
        // protects.
        debug_assert!(
            self.machine.accelerated_count() <= self.cfg.fast_cores,
            "committed budget exceeded: {} > {}",
            self.machine.accelerated_count(),
            self.cfg.fast_cores
        );
        for &(at, core) in &effects.settles {
            self.events.push(at, Ev::DvfsSettle { core: core.0 });
        }
    }

    fn make_ready(&mut self, task: TaskId, _now: SimTime) {
        // Annotation-static estimators (the `+SA` configurations) equal
        // the view's precomputed level array by definition; dynamic ones
        // (bottom-level) and the always-zero baseline keep the virtual
        // call.
        let level = if self.est_static {
            self.view.crit_level(task)
        } else {
            self.estimator.classify_level(self.graph, task)
        };
        self.crit[task.index()] = level > 0;
        self.policy.enqueue(task, level);
    }

    /// Assign ready tasks to idle cores. CATS configurations offer idle
    /// *fast* cores first (so critical tasks land on them); FIFO serves
    /// cores in the order they went idle — the blind assignment the paper's
    /// baseline suffers from. The walk follows the persistent [`IdleIndex`]
    /// (same order the old candidate sort produced); assigning a core
    /// unlinks it, and the outer loop re-walks until a full pass assigns
    /// nothing — a slow core may only steal critical work once the pass
    /// that drained the last idle fast core is over, exactly as before.
    fn dispatch(&mut self, now: SimTime) {
        // `policy.len() == 0` ⇒ `dequeue` cannot serve anyone; skip the
        // walk entirely (the common case right after a milestone event).
        while !self.policy.is_empty() {
            let mut assigned = false;
            let mut cur = self.idle.first();
            while let Some(core) = cur {
                // Capture the successor first: `assign` unlinks `core`.
                let nxt = self.idle.next_after(core);
                let ctx = DispatchCtx {
                    fast_core_idle: self.idle.any_fast_available()
                        && !self.is_fast_static[core.index()],
                };
                if self.policy.has_work_for(core, ctx) {
                    if let Some(task) = self.policy.dequeue(core, ctx, &mut self.counters) {
                        self.assign(core, task, now);
                        assigned = true;
                    }
                }
                cur = nxt;
            }
            if !assigned {
                break;
            }
        }
        // Cores that entered the idle loop since the last dispatch: arm the
        // CATA deceleration debounce (§V-B deceleration fires only if the
        // core is *still* idle after the delay) and the OS halt timer if
        // configured. Skipped outright unless a core went idle (the flag
        // pass below is O(cores), and events must be pushed in core order
        // to keep the FIFO tie-break bit-identical with the old code).
        if !self.idle_dirty {
            return;
        }
        self.idle_dirty = false;
        for i in 0..self.cores.len() {
            let c = &mut self.cores[i];
            if !matches!(c.run, CoreRun::Idle) {
                continue;
            }
            if !c.idle_notified {
                c.idle_notified = true;
                let epoch = c.epoch;
                self.events.push(
                    now + self.cfg.idle_decel_delay,
                    Ev::IdleDecel {
                        core: i as u32,
                        epoch,
                    },
                );
            }
            if let Some(delay) = self.cfg.idle_to_halt {
                let c = &mut self.cores[i];
                if !c.halt_scheduled {
                    c.halt_scheduled = true;
                    let epoch = c.epoch;
                    self.events.push(
                        now + delay,
                        Ev::IdleHalt {
                            core: i as u32,
                            epoch,
                        },
                    );
                }
            }
        }
    }

    fn assign(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        // A displaced task landing on a survivor is a re-execution; the
        // displacement→re-dispatch gap is its recovery latency.
        if let Some(fs) = self.fault.as_mut() {
            if let Some(at) = fs.displaced_at[task.index()].take() {
                fs.report.reexecuted += 1;
                fs.report.recovery_latency.record(now.saturating_since(at));
            }
        }
        self.idle.remove(core);
        let was_halted = matches!(self.cores[core.index()].run, CoreRun::Halted);
        let ctl = &mut self.cores[core.index()];
        ctl.epoch += 1;
        ctl.halt_scheduled = false;
        ctl.idle_notified = false;
        let epoch = ctl.epoch;
        ctl.run = CoreRun::Prologue { task };
        self.machine.set_activity(core, now, Activity::Busy);

        let mut t = now;
        if was_halted {
            self.trace.record(now, TraceEvent::Wake { core });
            let e = self
                .accel
                .on_core_wake(core, now, &mut self.machine, &mut self.counters);
            self.push_settles(&e);
            t += self.cfg.wake_latency;
        }
        t += self.cfg.costs.dispatch;

        let critical = self.crit[task.index()];
        let e = self
            .accel
            .on_task_start(core, critical, t, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
        let begin = e.resume_or(t);
        self.events.push(
            begin,
            Ev::TaskBegin {
                core: core.0,
                epoch,
            },
        );
    }

    fn task_begin(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch {
            return; // stale
        }
        let CoreRun::Prologue { task } = ctl.run else {
            return;
        };
        self.trace.record(
            now,
            TraceEvent::TaskStart {
                core,
                task: task.0,
                critical: self.crit[task.index()],
            },
        );
        self.gate_or_begin(core, task, now);
    }

    /// Routes a task about to execute through the shared-memory gate:
    /// with no contended subsystem (or no memory demand) the body begins
    /// immediately; otherwise the task acquires a bandwidth slot or parks
    /// in [`CoreRun::MemWait`] until arbitration grants one. The slot is
    /// held for the task's `mem_ps` of *wall* time (memory time is
    /// frequency-invariant) while the body runs concurrently.
    fn gate_or_begin(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        let mem_ps = self.view.mem_ps(task);
        if self.mem.is_none() || mem_ps == 0 {
            self.begin_body(core, task, now);
            return;
        }
        let crit = self.crit[task.index()];
        let ms = self.mem.as_mut().expect("gate only runs contended");
        ms.report.requests += 1;
        ms.report.demand += SimDuration::from_ps(mem_ps);
        if crit {
            ms.report.crit_requests += 1;
        }
        let sub = self
            .machine
            .memory_mut()
            .expect("contended machine carries a memory subsystem");
        if sub.try_acquire() {
            ms.holding[core.index()] = true;
            ms.report.serviced += SimDuration::from_ps(mem_ps);
            let epoch = self.cores[core.index()].epoch;
            self.events.push(
                now + SimDuration::from_ps(mem_ps),
                Ev::MemRelease {
                    core: core.0,
                    epoch,
                },
            );
            self.begin_body(core, task, now);
        } else {
            sub.enqueue(core, u8::from(crit), mem_ps);
            ms.report.waited += 1;
            ms.wait_since[core.index()] = Some(now);
            self.cores[core.index()].run = CoreRun::MemWait { task };
        }
    }

    /// Starts the task body on `core` (prologue finished and, when
    /// contended, the memory gate passed).
    fn begin_body(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        let epoch = self.cores[core.index()].epoch;
        let rt = RunningTask::start(
            &self.graph.task(task).profile,
            now,
            self.machine.core(core).frequency(),
        );
        self.schedule_milestone(core, epoch, &rt);
        self.cores[core.index()].run = CoreRun::Running { task, rt };
    }

    /// A granted task's memory hold expired: free the slot and let the
    /// arbitration policy hand it to a waiter. Stale releases (the core
    /// failed, bumping its epoch, or no longer holds) are ignored.
    fn mem_release(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        if self.cores[core.index()].epoch != epoch {
            return;
        }
        let Some(ms) = self.mem.as_mut() else {
            return;
        };
        if !ms.holding[core.index()] {
            return;
        }
        ms.holding[core.index()] = false;
        self.machine
            .memory_mut()
            .expect("memory subsystem")
            .release();
        self.mem_grant(now);
    }

    /// Drains freed bandwidth slots into waiting cores — one arbitration
    /// pick per free slot — recording each granted waiter's queueing
    /// delay and starting its parked body.
    fn mem_grant(&mut self, now: SimTime) {
        loop {
            let Some(ms) = self.mem.as_mut() else {
                return;
            };
            let sub = self.machine.memory_mut().expect("memory subsystem");
            let Some(req) = sub.grant(ms.policy.as_mut()) else {
                return;
            };
            let core = req.core;
            let wait = ms.wait_since[core.index()]
                .take()
                .map(|t| now.saturating_since(t))
                .unwrap_or(SimDuration::ZERO);
            ms.report.total_wait += wait;
            ms.report.max_wait = ms.report.max_wait.max(wait);
            if req.crit_level > 0 {
                ms.report.crit_wait += wait;
            }
            ms.report.serviced += wait + SimDuration::from_ps(req.mem_ps);
            ms.holding[core.index()] = true;
            let epoch = self.cores[core.index()].epoch;
            self.events.push(
                now + SimDuration::from_ps(req.mem_ps),
                Ev::MemRelease {
                    core: core.0,
                    epoch,
                },
            );
            let CoreRun::MemWait { task } = self.cores[core.index()].run else {
                debug_assert!(false, "granted {core} is not waiting on memory");
                continue;
            };
            self.begin_body(core, task, now);
        }
    }

    fn schedule_milestone(&mut self, core: CoreId, epoch: u64, rt: &RunningTask<'_>) {
        if let Some(m) = rt.next_milestone() {
            self.events.push(
                m.time(),
                Ev::Milestone {
                    core: core.0,
                    epoch,
                    gen: rt.generation(),
                },
            );
        }
    }

    fn milestone(&mut self, core: CoreId, epoch: u64, gen: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch {
            return;
        }
        let CoreRun::Running { task, ref mut rt } = ctl.run else {
            return;
        };
        if rt.generation() != gen {
            return; // superseded by a frequency change
        }
        match rt.advance_to(now) {
            None => {
                // Rounding left the milestone infinitesimally ahead;
                // re-schedule from the refreshed projection. The progress
                // model guarantees the new time is strictly later (a
                // sub-picosecond residue counts as reached), so this cannot
                // livelock.
                let rt2 = *rt;
                if let Some(m) = rt2.next_milestone() {
                    debug_assert!(m.time() > now, "milestone did not advance");
                }
                self.schedule_milestone(core, epoch, &rt2);
            }
            Some(Milestone::Completion(_)) => self.complete(core, task, now),
            Some(Milestone::BlockStart(_)) => {
                let rt2 = *rt;
                self.machine.set_activity(core, now, Activity::Halted);
                self.counters.halts += 1;
                self.trace.record(now, TraceEvent::Halt { core });
                let e = self
                    .accel
                    .on_core_halt(core, now, &mut self.machine, &mut self.counters);
                self.push_settles(&e);
                self.schedule_milestone(core, epoch, &rt2);
            }
            Some(Milestone::BlockEnd(_)) => {
                let rt2 = *rt;
                self.machine.set_activity(core, now, Activity::Busy);
                self.trace.record(now, TraceEvent::Wake { core });
                let e = self
                    .accel
                    .on_core_wake(core, now, &mut self.machine, &mut self.counters);
                self.push_settles(&e);
                self.schedule_milestone(core, epoch, &rt2);
            }
        }
    }

    fn complete(&mut self, core: CoreId, task: TaskId, now: SimTime) {
        // Transient task fault: the completion is discarded and the body
        // re-executes in place, at most `max_retries` times per task (a
        // p=1 schedule still terminates). One RNG draw per eligible
        // completion, in event order — bit-identical per seed.
        if let Some(fs) = self.fault.as_mut() {
            if fs.spec.task_fault_p > 0.0
                && fs.task_retries[task.index()] < fs.spec.max_retries
                && fs.rng.next_unit() < fs.spec.task_fault_p
            {
                fs.task_retries[task.index()] += 1;
                fs.report.task_faults += 1;
                fs.report.reexecuted += 1;
                // The re-execution re-demands memory, so it routes back
                // through the gate like any fresh body (its earlier slot
                // hold expired at `begin + mem_ps`, before completion).
                self.gate_or_begin(core, task, now);
                return;
            }
        }
        self.trace
            .record(now, TraceEvent::TaskEnd { core, task: task.0 });
        self.counters.tasks_completed += 1;
        self.done += 1;
        self.last_completion = self.last_completion.max(now);
        self.estimator.on_complete(self.graph, task);

        // Successor walk over the view's CSR arrays: one contiguous span
        // instead of a pointer chase into the task's own `succs` vector.
        // The span is a `Copy` range, so `make_ready` can borrow `self`
        // mutably between element reads.
        for i in self.view.succ_span(task) {
            let s = self.view.succ_at(i);
            let d = &mut self.indegree[s.index()];
            debug_assert!(*d > 0, "indegree underflow at {s}");
            *d -= 1;
            if *d == 0 && s.index() < self.submitted {
                self.make_ready(s, now);
            }
        }

        let epoch = self.cores[core.index()].epoch;
        self.cores[core.index()].run = CoreRun::Epilogue;
        let e = self
            .accel
            .on_task_end(core, now, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
        self.events.push(
            e.resume_or(now),
            Ev::CoreFree {
                core: core.0,
                epoch,
            },
        );
    }

    fn core_free(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch {
            return;
        }
        debug_assert!(matches!(ctl.run, CoreRun::Epilogue));
        ctl.run = CoreRun::Idle;
        // Cores re-enter the idle index in completion order — the same
        // FIFO "longest-idle pops first" order the old idle stamps encoded.
        self.idle.push(core);
        self.idle_dirty = true;
        self.machine.set_activity(core, now, Activity::Idle);
        // The dispatch loop after this event hands out new work (or arms the
        // idle-halt timer).
    }

    fn dvfs_settle(&mut self, core: CoreId, now: SimTime) {
        // Transient reconfiguration-write failure: the settle re-fires
        // after a retry penalty, at most `max_retries` times; exhausted
        // writes are dropped and the core degrades to its current class.
        if let Some(fs) = self.fault.as_mut() {
            if fs.spec.reconfig_fail_p > 0.0 {
                let i = core.index();
                if fs.rng.next_unit() < fs.spec.reconfig_fail_p {
                    fs.report.reconfig_faults += 1;
                    if fs.settle_retries[i] < fs.spec.max_retries {
                        fs.settle_retries[i] += 1;
                        self.events
                            .push(now + RECONFIG_RETRY_DELAY, Ev::DvfsSettle { core: core.0 });
                    } else {
                        fs.settle_retries[i] = 0;
                        fs.report.reconfig_exhausted += 1;
                    }
                    return;
                }
                if fs.settle_retries[i] > 0 {
                    fs.settle_retries[i] = 0;
                    fs.report.reconfig_recovered += 1;
                }
            }
        }
        if let Some(level) = self.machine.settle(core, now) {
            self.trace
                .record(now, TraceEvent::ReconfigApplied { core, level });
            let epoch = self.cores[core.index()].epoch;
            if let CoreRun::Running { ref mut rt, .. } = self.cores[core.index()].run {
                rt.set_frequency(now, level.frequency);
                let rt2 = *rt;
                self.schedule_milestone(core, epoch, &rt2);
            }
        }
    }

    fn idle_decel(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &self.cores[core.index()];
        if ctl.epoch != epoch || !matches!(ctl.run, CoreRun::Idle | CoreRun::Halted) {
            return; // got work (or a new idle period) in the meantime
        }
        let e = self
            .accel
            .on_core_idle(core, now, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
    }

    fn idle_halt(&mut self, core: CoreId, epoch: u64, now: SimTime) {
        let ctl = &mut self.cores[core.index()];
        if ctl.epoch != epoch || !matches!(ctl.run, CoreRun::Idle) {
            return;
        }
        ctl.run = CoreRun::Halted;
        ctl.halt_scheduled = false;
        self.machine.set_activity(core, now, Activity::Halted);
        self.counters.halts += 1;
        self.trace.record(now, TraceEvent::Halt { core });
        let e = self
            .accel
            .on_core_halt(core, now, &mut self.machine, &mut self.counters);
        self.push_settles(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::progress::ExecProfile;

    /// A small fork-join graph: src → 8 × work (4 critical) → sink.
    fn fork_join(work_cycles: u64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let src_ty = g.add_type("src", 0);
        let crit_ty = g.add_type("crit", 1);
        let norm_ty = g.add_type("norm", 0);
        let src = g.add_task(src_ty, ExecProfile::new(1000, 0), &[]);
        let mut mids = Vec::new();
        for i in 0..8 {
            let ty = if i % 2 == 0 { crit_ty } else { norm_ty };
            // Critical tasks are 3× longer.
            let cycles = if i % 2 == 0 {
                work_cycles * 3
            } else {
                work_cycles
            };
            mids.push(g.add_task(ty, ExecProfile::new(cycles, 0), &[src]));
        }
        g.add_task(src_ty, ExecProfile::new(1000, 0), &mids);
        g
    }

    fn run_cfg(cfg: RunConfig, g: &TaskGraph) -> RunReport {
        SimExecutor::new(cfg).run(g, "test").0
    }

    /// Spec validation rejects schedules that kill every core up front;
    /// this drives the engine *below* that guard to pin the dying-machine
    /// contract: the run terminates with a clean `Stalled` error — it
    /// never hangs, never panics.
    #[test]
    fn all_cores_dead_terminates_with_stalled_error() {
        use crate::fault::{CoreFailure, FaultSpec};
        let g = fork_join(2_000_000);
        let cfg = RunConfig::fifo(2).with_small_machine(4, 2);
        let mut params = EngineParams::from(&cfg);
        params.faults = Some(FaultSpec {
            core_failures: (0..4)
                .map(|core| CoreFailure {
                    core,
                    at: SimDuration::from_us(1),
                    recover_after: None,
                })
                .collect(),
            ..FaultSpec::default()
        });
        let resolved = default_registries()
            .resolve(
                &cfg.policy_keys(),
                &cfg.machine,
                cfg.fast_cores,
                cfg.seed,
                &cfg.policy_params(),
            )
            .unwrap();
        let err = run_with_scratch(&params, resolved, &g, "dead").unwrap_err();
        assert!(
            matches!(err, ExpError::Stalled(_)),
            "want Stalled, got: {err}"
        );
        assert!(err.to_string().contains("core(s) failed"), "{err}");
    }

    #[test]
    fn fifo_executes_all_tasks() {
        let g = fork_join(2_000_000);
        let r = run_cfg(RunConfig::fifo(2).with_small_machine(4, 2), &g);
        assert_eq!(r.tasks, 10);
        assert_eq!(r.counters.tasks_completed, 10);
        assert!(r.exec_time > SimDuration::ZERO);
        assert!(r.energy.energy_j > 0.0);
    }

    #[test]
    fn all_six_configs_complete_identical_task_sets() {
        let g = fork_join(1_000_000);
        for cfg in RunConfig::paper_matrix(2) {
            let label = cfg.label.clone();
            let r = run_cfg(cfg.with_small_machine(4, 2), &g);
            assert_eq!(r.counters.tasks_completed, 10, "{label} lost tasks");
        }
    }

    #[test]
    fn determinism_same_config_same_result() {
        let g = fork_join(500_000);
        let a = run_cfg(RunConfig::cata(2).with_small_machine(4, 2), &g);
        let b = run_cfg(RunConfig::cata(2).with_small_machine(4, 2), &g);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.energy.energy_j, b.energy.energy_j);
        assert_eq!(a.counters.reconfigs_applied, b.counters.reconfigs_applied);
    }

    #[test]
    fn cata_reconfigures_and_respects_budget() {
        let g = fork_join(4_000_000);
        let cfg = RunConfig::cata(2).with_small_machine(4, 2).with_trace();
        let (r, trace) = SimExecutor::new(cfg).run(&g, "test");
        assert!(r.counters.reconfigs_applied > 0, "CATA must reconfigure");
        // Replay the trace: the number of cores whose *settled* level is
        // fast never exceeds the budget at any event. (A pending
        // deceleration superseded by a re-acceleration never settles slow;
        // tracking per-core levels handles that correctly.)
        let mut fast = [false; 4];
        for rec in trace.records() {
            if let TraceEvent::ReconfigApplied { core, level } = rec.event {
                fast[core.index()] = level.frequency.as_mhz() == 2000;
                let n = fast.iter().filter(|&&f| f).count();
                assert!(n <= 2, "budget exceeded in trace at {}", rec.time);
            }
        }
    }

    #[test]
    fn rsu_is_no_slower_than_software_cata() {
        let g = fork_join(2_000_000);
        let sw = run_cfg(RunConfig::cata(2).with_small_machine(4, 2), &g);
        let hw = run_cfg(RunConfig::cata_rsu(2).with_small_machine(4, 2), &g);
        assert!(
            hw.exec_time <= sw.exec_time,
            "RSU {} slower than software {}",
            hw.exec_time,
            sw.exec_time
        );
        assert!(hw.lock_waits.is_empty(), "RSU path must not lock");
        assert!(!sw.lock_waits.is_empty(), "software path must lock");
    }

    #[test]
    fn software_cata_charges_reconfig_overhead() {
        let g = fork_join(1_000_000);
        let r = run_cfg(RunConfig::cata(2).with_small_machine(4, 2), &g);
        assert!(r.reconfig_overhead > SimDuration::ZERO);
        assert!(r.reconfig_time_share > 0.0);
        assert!(r.reconfig_latencies.count() > 0);
    }

    #[test]
    fn turbo_mode_halts_idle_cores() {
        let g = fork_join(2_000_000);
        let r = run_cfg(RunConfig::turbo(2).with_small_machine(4, 2), &g);
        assert_eq!(r.counters.tasks_completed, 10);
        assert!(r.counters.halts > 0, "idle cores must halt under TurboMode");
    }

    #[test]
    fn blocked_tasks_halt_the_core() {
        let mut g = TaskGraph::new();
        let ty = g.add_type("io", 0);
        let p = ExecProfile::new(1_000_000, 0).with_block(0.5, SimDuration::from_us(200));
        g.add_task(ty, p, &[]);
        let r = run_cfg(RunConfig::fifo(1).with_small_machine(2, 1), &g);
        assert!(r.counters.halts >= 1);
        assert_eq!(r.counters.tasks_completed, 1);
    }

    #[test]
    fn more_fast_cores_is_not_slower_under_fifo() {
        let g = fork_join(4_000_000);
        let few = run_cfg(RunConfig::fifo(1).with_small_machine(4, 1), &g);
        let many = run_cfg(RunConfig::fifo(4).with_small_machine(4, 4), &g);
        assert!(many.exec_time <= few.exec_time);
    }

    #[test]
    fn empty_graph_completes_instantly() {
        let g = TaskGraph::new();
        let r = run_cfg(RunConfig::fifo(2).with_small_machine(4, 2), &g);
        assert_eq!(r.tasks, 0);
        assert_eq!(r.exec_time, SimDuration::ZERO);
    }

    #[test]
    fn serial_chain_runs_fast_under_cata() {
        // A pure chain: CATA should keep the single running task accelerated
        // (budget 1), beating the static 1-fast-core FIFO only when the
        // chain would otherwise land on slow cores.
        let mut g = TaskGraph::new();
        let ty = g.add_type("step", 1);
        let mut prev: Option<TaskId> = None;
        for _ in 0..6 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(g.add_task(ty, ExecProfile::new(10_000_000, 0), &deps));
        }
        let fifo = run_cfg(RunConfig::fifo(1).with_small_machine(4, 1), &g);
        let cata = run_cfg(RunConfig::cata_rsu(1).with_small_machine(4, 1), &g);
        // FIFO dispatch prefers core 0 (fast) so both are similar here, but
        // CATA must never lose by more than the reconfiguration overhead.
        let ratio = cata.exec_time.as_ps() as f64 / fifo.exec_time.as_ps() as f64;
        assert!(ratio < 1.05, "CATA chain ratio {ratio}");
    }

    #[test]
    fn utilization_is_sane() {
        let g = fork_join(2_000_000);
        let r = run_cfg(RunConfig::fifo(2).with_small_machine(4, 2), &g);
        for &u in &r.core_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(r.avg_utilization() > 0.0);
    }
}
