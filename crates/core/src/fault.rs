//! Deterministic fault injection & recovery.
//!
//! Every other run in this repository assumes a perfect machine: cores
//! never die, DVFS/RSU writes never fail, tasks never need re-execution.
//! This module makes imperfection a **scenario axis**, mirroring the
//! policy-registry idiom:
//!
//! - [`FaultSpec`] — a serde description of a seeded fault schedule:
//!   core fail-stop at time *t* (permanent) or fail-recover windows,
//!   transient reconfiguration failures with probability *p* per write,
//!   and task-level transient faults forcing re-execution. It rides
//!   [`ScenarioSpec::faults`](crate::exp::ScenarioSpec) and is *omitted*
//!   when absent, so every pre-fault spec, store digest and golden
//!   preset stays byte-identical.
//! - [`RecoveryPolicy`] / [`RecoveryRegistry`] — the pluggable decision
//!   of what happens to displaced work (retry on the same core family,
//!   reroute preferring fast cores, shed non-critical instances while
//!   degraded), string-keyed like the scheduler/estimator/accel and
//!   admission registries so external crates can register their own.
//! - [`FaultReport`] — what the run observed: injected/recovered/
//!   displaced/re-executed counts, capacity-seconds lost, a
//!   recovery-latency histogram, and makespan degradation vs the
//!   fault-free twin. Carried on
//!   [`RunReport::fault`](crate::RunReport) (omitted when `None`).
//!
//! All randomness is drawn from the run seed through the same SplitMix64
//! construction the traffic-tape generator uses, on a dedicated stream
//! ([`FAULT_STREAM`]): the same seed replays the same fault trace
//! bit-identically, and fault draws never perturb arrival draws.

use crate::exp::error::ExpError;
use crate::exp::suite::derive_seed;
use cata_sim::stats::LatencyHistogram;
use cata_sim::time::{SimDuration, SimTime};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Stream tag separating fault-injection draws from every other consumer
/// of the run seed (the arrival generator uses its own tag), fed through
/// [`derive_seed`].
pub const FAULT_STREAM: u64 = 0xFA17_0001;

/// Default bound on per-task re-executions (transient task faults) and
/// per-write retries (native DVFS) when the spec does not say otherwise.
pub const DEFAULT_MAX_RETRIES: u32 = 3;

/// The default recovery-policy key.
pub const DEFAULT_RECOVERY: &str = "retry-same-core";

/// SplitMix64 — the workspace-shared generator ([`cata_sim::seeded`]),
/// re-exported on the historical path. Stream separation (fault draws
/// never entangle with arrival draws) comes from the [`FAULT_STREAM`]
/// seed diversion, not from a private copy of the generator.
pub(crate) use cata_sim::seeded::SplitMix64;

/// The fault-injection RNG for a run: the run seed, diverted onto the
/// fault stream. Same seed ⇒ bit-identical fault trace.
pub(crate) fn fault_rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(derive_seed(seed, FAULT_STREAM))
}

/// One scheduled core failure: the core fail-stops at `at` (simulated
/// time from run start) and, when `recover_after` is set, comes back that
/// long after failing; otherwise the loss is permanent.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreFailure {
    /// The core to fail (index into the machine).
    pub core: usize,
    /// When (from run start) the core fail-stops.
    pub at: SimDuration,
    /// Recovery delay after the failure, or `None` for a permanent loss.
    pub recover_after: Option<SimDuration>,
}

// Hand-written serde so `recover_after` is *omitted* for permanent
// failures — keeping serialized fault schedules minimal and their
// digests independent of how a permanent failure was spelled.
impl Serialize for CoreFailure {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("core".into(), self.core.to_value()),
            ("at".into(), self.at.to_value()),
        ];
        if let Some(r) = self.recover_after {
            m.push(("recover_after".into(), r.to_value()));
        }
        Value::Map(m)
    }
}

impl Deserialize for CoreFailure {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("CoreFailure")?;
        Ok(CoreFailure {
            core: serde::field(m, "core", "CoreFailure")?,
            at: serde::field(m, "at", "CoreFailure")?,
            recover_after: serde::field(m, "recover_after", "CoreFailure")?,
        })
    }
}

/// A complete, seeded fault schedule for one run. Participates in spec
/// digests and cell keys through [`ScenarioSpec::faults`]
/// (crate::exp::ScenarioSpec) — a faulted cell is a *different* cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Scheduled core fail-stop / fail-recover events.
    pub core_failures: Vec<CoreFailure>,
    /// Probability in [0, 1] that any single DVFS/RSU reconfiguration
    /// write fails transiently.
    pub reconfig_fail_p: f64,
    /// Probability in [0, 1] that a completing task suffers a transient
    /// fault and must re-execute (bounded by `max_retries` per task).
    pub task_fault_p: f64,
    /// Bound on per-task re-executions and per-write native retries.
    pub max_retries: u32,
    /// Recovery-policy registry key deciding what happens to displaced
    /// work (see [`RecoveryRegistry`]).
    pub recovery: String,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            core_failures: Vec::new(),
            reconfig_fail_p: 0.0,
            task_fault_p: 0.0,
            max_retries: DEFAULT_MAX_RETRIES,
            recovery: DEFAULT_RECOVERY.to_string(),
        }
    }
}

// Hand-written serde: serialization emits every field (deterministic,
// digest-stable), deserialization defaults missing fields so hand-written
// fault specs only mention what they change.
impl Serialize for FaultSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("core_failures".into(), self.core_failures.to_value()),
            ("reconfig_fail_p".into(), self.reconfig_fail_p.to_value()),
            ("task_fault_p".into(), self.task_fault_p.to_value()),
            ("max_retries".into(), self.max_retries.to_value()),
            ("recovery".into(), self.recovery.to_value()),
        ])
    }
}

impl Deserialize for FaultSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("FaultSpec")?;
        let d = FaultSpec::default();
        let core_failures: Option<Vec<CoreFailure>> =
            serde::field(m, "core_failures", "FaultSpec")?;
        let reconfig_fail_p: Option<f64> = serde::field(m, "reconfig_fail_p", "FaultSpec")?;
        let task_fault_p: Option<f64> = serde::field(m, "task_fault_p", "FaultSpec")?;
        let max_retries: Option<u32> = serde::field(m, "max_retries", "FaultSpec")?;
        let recovery: Option<String> = serde::field(m, "recovery", "FaultSpec")?;
        Ok(FaultSpec {
            core_failures: core_failures.unwrap_or(d.core_failures),
            reconfig_fail_p: reconfig_fail_p.unwrap_or(d.reconfig_fail_p),
            task_fault_p: task_fault_p.unwrap_or(d.task_fault_p),
            max_retries: max_retries.unwrap_or(d.max_retries),
            recovery: recovery.unwrap_or(d.recovery),
        })
    }
}

impl FaultSpec {
    /// True when this spec injects nothing (no failures, zero
    /// probabilities) — engines skip the fault machinery entirely.
    pub fn is_noop(&self) -> bool {
        self.core_failures.is_empty() && self.reconfig_fail_p == 0.0 && self.task_fault_p == 0.0
    }

    /// Structural validation against the machine the spec will run on.
    pub fn validate(&self, num_cores: usize) -> Result<(), ExpError> {
        for f in &self.core_failures {
            if f.core >= num_cores {
                return Err(ExpError::InvalidSpec(format!(
                    "fault schedule fails core {} but the machine has {} cores",
                    f.core, num_cores
                )));
            }
        }
        if self
            .core_failures
            .iter()
            .filter(|f| f.recover_after.is_none())
            .map(|f| f.core)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            >= num_cores
        {
            return Err(ExpError::InvalidSpec(
                "fault schedule permanently fails every core".to_string(),
            ));
        }
        for (what, p) in [
            ("reconfig_fail_p", self.reconfig_fail_p),
            ("task_fault_p", self.task_fault_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ExpError::InvalidSpec(format!(
                    "{what} must be a probability in [0, 1], got {p}"
                )));
            }
        }
        if self.recovery.is_empty() {
            return Err(ExpError::InvalidSpec("empty recovery key".to_string()));
        }
        Ok(())
    }

    /// Serializes to JSON — the standalone `--faults FILE` form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fault spec serializes")
    }

    /// Parses a standalone fault-spec JSON file. Missing fields default,
    /// so a file may mention only what it changes.
    pub fn from_json(text: &str) -> Result<Self, ExpError> {
        serde_json::from_str(text).map_err(|e| ExpError::Parse(e.to_string()))
    }

    /// Parses the `--fault-cores` CLI shorthand: a comma-separated list
    /// of `CORE@AT` (permanent) or `CORE@AT+RECOVER` (fail-recover)
    /// entries, with durations in the usual suffix form (`5ms`, `200us`,
    /// bare numbers = ms). Example: `0@1ms,3@2ms+5ms`.
    pub fn parse_cores(text: &str) -> Result<Vec<CoreFailure>, String> {
        fn duration(text: &str) -> Result<SimDuration, String> {
            let (num, mul) = if let Some(t) = text.strip_suffix("ms") {
                (t, 1_000_000_000)
            } else if let Some(t) = text.strip_suffix("us") {
                (t, 1_000_000)
            } else if let Some(t) = text.strip_suffix("ns") {
                (t, 1_000)
            } else if let Some(t) = text.strip_suffix("ps") {
                (t, 1)
            } else if let Some(t) = text.strip_suffix('s') {
                (t, 1_000_000_000_000)
            } else {
                (text, 1_000_000_000)
            };
            num.trim()
                .parse::<u64>()
                .map(|n| SimDuration::from_ps(n * mul))
                .map_err(|_| format!("bad duration `{text}`"))
        }
        let mut out = Vec::new();
        for entry in text.split(',').filter(|e| !e.is_empty()) {
            let (core, when) = entry
                .split_once('@')
                .ok_or_else(|| format!("bad fault entry `{entry}` (want CORE@AT[+RECOVER])"))?;
            let core = core
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad core index `{core}`"))?;
            let (at, recover_after) = match when.split_once('+') {
                Some((at, rec)) => (duration(at.trim())?, Some(duration(rec.trim())?)),
                None => (duration(when.trim())?, None),
            };
            out.push(CoreFailure {
                core,
                at,
                recover_after,
            });
        }
        Ok(out)
    }
}

/// What a run observed under fault injection. Rides
/// [`RunReport::fault`](crate::RunReport), omitted when the run had no
/// [`FaultSpec`], so fault-free reports stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Core fail-stop events injected.
    pub injected: u64,
    /// Cores that recovered (fail-recover windows that closed).
    pub recovered_cores: u64,
    /// In-flight tasks displaced by a core failure.
    pub displaced: u64,
    /// Task executions repeated — displaced tasks re-dispatched plus
    /// transient-fault re-executions.
    pub reexecuted: u64,
    /// Graph instances shed by the recovery policy (service mode only).
    pub shed: u64,
    /// Transient task faults injected at completion boundaries.
    pub task_faults: u64,
    /// Reconfiguration writes that failed (simulated or native).
    pub reconfig_faults: u64,
    /// Failed reconfiguration writes that succeeded on a bounded retry
    /// (native runtime).
    pub reconfig_recovered: u64,
    /// Reconfiguration writes whose retries were exhausted — the core
    /// degraded to its current frequency class.
    pub reconfig_exhausted: u64,
    /// Capacity-time lost to failed cores (sum over cores of time spent
    /// failed within the run window).
    pub capacity_lost: SimDuration,
    /// Latency from displacement to re-dispatch of each displaced task.
    pub recovery_latency: LatencyHistogram,
    /// Makespan ratio vs the fault-free twin of the same spec (1.0 = no
    /// degradation; 0.0 when no twin was run, e.g. service mode).
    pub makespan_degradation: f64,
}

impl FaultReport {
    /// Compact-JSON digest of the whole report — the CI chaos-smoke
    /// determinism pin (same spec + seed ⇒ same digest).
    pub fn digest(&self) -> String {
        cata_tdg::fnv1a_hex(
            serde_json::to_string(self)
                .expect("fault report serializes")
                .bytes(),
        )
    }

    /// Merges another report into this one (shard/store merging).
    pub fn merge(&mut self, o: &FaultReport) {
        self.injected += o.injected;
        self.recovered_cores += o.recovered_cores;
        self.displaced += o.displaced;
        self.reexecuted += o.reexecuted;
        self.shed += o.shed;
        self.task_faults += o.task_faults;
        self.reconfig_faults += o.reconfig_faults;
        self.reconfig_recovered += o.reconfig_recovered;
        self.reconfig_exhausted += o.reconfig_exhausted;
        self.capacity_lost += o.capacity_lost;
        self.recovery_latency.merge(&o.recovery_latency);
        self.makespan_degradation = self.makespan_degradation.max(o.makespan_degradation);
    }

    /// One-line human summary appended to `RunReport::summary()`.
    pub fn summary(&self) -> String {
        format!(
            "faults: injected={} recovered={} displaced={} reexec={} shed={} capacity_lost={} degradation={:.3}x",
            self.injected,
            self.recovered_cores,
            self.displaced,
            self.reexecuted,
            self.shed,
            self.capacity_lost,
            self.makespan_degradation,
        )
    }
}

/// What the recovery policy sees when a core failure displaces a task
/// (or, in service mode, threatens an instance).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCtx {
    /// The failure instant.
    pub now: SimTime,
    /// The core that failed.
    pub failed_core: usize,
    /// The displaced task carries a criticality annotation.
    pub critical: bool,
    /// The failure is permanent (no recovery window scheduled).
    pub permanent: bool,
    /// The machine is currently degraded (at least one core failed).
    pub degraded: bool,
}

/// What to do with a displaced task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Re-enqueue the task for re-execution on a survivor.
    Requeue {
        /// Prefer a fast core for the retry (jump the displaced task to
        /// the accelerated family even if it was not critical).
        prefer_fast: bool,
    },
    /// Drop the work. In the closed-system engine this degrades to a
    /// requeue (dropping a DAG node would deadlock its successors); in
    /// service mode the whole graph instance is shed.
    Shed,
}

/// A recovery policy: called once per displaced task, in displacement
/// order, so stateful policies replay deterministically.
pub trait RecoveryPolicy: Send {
    /// Registry key / display name.
    fn name(&self) -> &'static str;
    /// Decides the fate of one displaced task.
    fn on_displaced(&mut self, ctx: &RecoveryCtx) -> RecoveryAction;
}

/// Re-execute displaced work with its original placement preference.
#[derive(Debug, Default)]
struct RetrySameCore;

impl RecoveryPolicy for RetrySameCore {
    fn name(&self) -> &'static str {
        "retry-same-core"
    }
    fn on_displaced(&mut self, _ctx: &RecoveryCtx) -> RecoveryAction {
        RecoveryAction::Requeue { prefer_fast: false }
    }
}

/// Re-execute displaced work preferring the fast-core family — displaced
/// work is late by definition, so treat it like critical work.
#[derive(Debug, Default)]
struct ReroutePreferFast;

impl RecoveryPolicy for ReroutePreferFast {
    fn name(&self) -> &'static str {
        "reroute-prefer-fast"
    }
    fn on_displaced(&mut self, _ctx: &RecoveryCtx) -> RecoveryAction {
        RecoveryAction::Requeue { prefer_fast: true }
    }
}

/// While the machine is degraded, shed displaced *non-critical* work and
/// reroute critical work to fast cores — the fault-side analogue of the
/// `shed-noncritical` admission policy.
#[derive(Debug, Default)]
struct ShedNoncriticalOnDegraded;

impl RecoveryPolicy for ShedNoncriticalOnDegraded {
    fn name(&self) -> &'static str {
        "shed-noncritical-on-degraded"
    }
    fn on_displaced(&mut self, ctx: &RecoveryCtx) -> RecoveryAction {
        if ctx.degraded && !ctx.critical {
            RecoveryAction::Shed
        } else {
            RecoveryAction::Requeue { prefer_fast: true }
        }
    }
}

/// Factory signature: the fault spec in, a boxed policy out.
pub type RecoveryFactory =
    dyn Fn(&FaultSpec) -> Result<Box<dyn RecoveryPolicy>, ExpError> + Send + Sync;

/// String-keyed recovery-policy registry, mirroring
/// [`AdmissionRegistry`](crate::service::AdmissionRegistry).
#[derive(Clone, Default)]
pub struct RecoveryRegistry {
    entries: BTreeMap<String, Arc<RecoveryFactory>>,
}

impl RecoveryRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry with the built-in family: `retry-same-core`,
    /// `reroute-prefer-fast`, `shed-noncritical-on-degraded`.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register("retry-same-core", |_s| {
            Ok(Box::new(RetrySameCore) as Box<dyn RecoveryPolicy>)
        });
        r.register("reroute-prefer-fast", |_s| {
            Ok(Box::new(ReroutePreferFast) as Box<dyn RecoveryPolicy>)
        });
        r.register("shed-noncritical-on-degraded", |_s| {
            Ok(Box::new(ShedNoncriticalOnDegraded) as Box<dyn RecoveryPolicy>)
        });
        r
    }

    /// Registers (or replaces) a policy under `key`.
    pub fn register<F>(&mut self, key: impl Into<String>, factory: F)
    where
        F: Fn(&FaultSpec) -> Result<Box<dyn RecoveryPolicy>, ExpError> + Send + Sync + 'static,
    {
        self.entries.insert(key.into(), Arc::new(factory));
    }

    /// Registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Builds the policy registered under `key`.
    pub fn build(&self, key: &str, spec: &FaultSpec) -> Result<Box<dyn RecoveryPolicy>, ExpError> {
        let f = self
            .entries
            .get(key)
            .ok_or_else(|| ExpError::UnknownRecovery {
                key: key.to_string(),
                known: self.keys(),
            })?;
        f(spec)
    }
}

impl std::fmt::Debug for RecoveryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

/// The process-wide default registry (builtins only), built once.
pub fn default_recovery_registry() -> &'static RecoveryRegistry {
    static REG: OnceLock<RecoveryRegistry> = OnceLock::new();
    REG.get_or_init(RecoveryRegistry::with_builtins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(critical: bool, degraded: bool) -> RecoveryCtx {
        RecoveryCtx {
            now: SimTime::ZERO,
            failed_core: 0,
            critical,
            permanent: true,
            degraded,
        }
    }

    #[test]
    fn builtins_resolve_and_behave() {
        let reg = default_recovery_registry();
        assert_eq!(
            reg.keys(),
            vec![
                "reroute-prefer-fast",
                "retry-same-core",
                "shed-noncritical-on-degraded"
            ]
        );
        let s = FaultSpec::default();
        let mut same = reg.build("retry-same-core", &s).unwrap();
        assert_eq!(
            same.on_displaced(&ctx(false, true)),
            RecoveryAction::Requeue { prefer_fast: false }
        );
        let mut fast = reg.build("reroute-prefer-fast", &s).unwrap();
        assert_eq!(
            fast.on_displaced(&ctx(false, true)),
            RecoveryAction::Requeue { prefer_fast: true }
        );
        let mut shed = reg.build("shed-noncritical-on-degraded", &s).unwrap();
        assert_eq!(shed.on_displaced(&ctx(false, true)), RecoveryAction::Shed);
        assert_eq!(
            shed.on_displaced(&ctx(true, true)),
            RecoveryAction::Requeue { prefer_fast: true },
            "critical work is never shed"
        );
        assert_eq!(
            shed.on_displaced(&ctx(false, false)),
            RecoveryAction::Requeue { prefer_fast: true },
            "nothing is shed while at full capacity"
        );
    }

    #[test]
    fn unknown_key_reports_the_known_set() {
        let Err(err) = default_recovery_registry().build("nope", &FaultSpec::default()) else {
            panic!("unknown key must not resolve");
        };
        let msg = err.to_string();
        assert!(
            msg.contains("nope") && msg.contains("retry-same-core"),
            "{msg}"
        );
    }

    #[test]
    fn spec_serde_defaults_missing_fields_and_round_trips() {
        // A minimal hand-written spec parses with defaults filled in.
        let v = serde_json::from_str::<Value>(r#"{"task_fault_p":0.25}"#).unwrap();
        let s = FaultSpec::from_value(&v).unwrap();
        assert_eq!(s.task_fault_p, 0.25);
        assert_eq!(s.max_retries, DEFAULT_MAX_RETRIES);
        assert_eq!(s.recovery, DEFAULT_RECOVERY);
        assert!(s.core_failures.is_empty());

        // Full round trip, including permanent + recovering failures.
        let full = FaultSpec {
            core_failures: vec![
                CoreFailure {
                    core: 0,
                    at: SimDuration::from_ms(1),
                    recover_after: None,
                },
                CoreFailure {
                    core: 3,
                    at: SimDuration::from_ms(2),
                    recover_after: Some(SimDuration::from_ms(5)),
                },
            ],
            reconfig_fail_p: 0.1,
            task_fault_p: 0.01,
            max_retries: 2,
            recovery: "reroute-prefer-fast".to_string(),
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);
        // Permanent failures omit `recover_after` entirely.
        assert_eq!(json.matches("recover_after").count(), 1, "{json}");
    }

    #[test]
    fn validation_rejects_bad_schedules() {
        let mut s = FaultSpec {
            core_failures: vec![CoreFailure {
                core: 9,
                at: SimDuration::ZERO,
                recover_after: None,
            }],
            ..FaultSpec::default()
        };
        assert!(s.validate(4).is_err(), "core out of range");
        s.core_failures[0].core = 0;
        assert!(s.validate(4).is_ok());
        s.reconfig_fail_p = 1.5;
        assert!(s.validate(4).is_err(), "probability out of range");
        s.reconfig_fail_p = 0.0;
        s.core_failures = (0..4)
            .map(|c| CoreFailure {
                core: c,
                at: SimDuration::ZERO,
                recover_after: None,
            })
            .collect();
        assert!(s.validate(4).is_err(), "whole machine permanently dead");
    }

    #[test]
    fn parse_cores_shorthand() {
        let fs = FaultSpec::parse_cores("0@1ms,3@2ms+5ms").unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].core, 0);
        assert_eq!(fs[0].at, SimDuration::from_ms(1));
        assert_eq!(fs[0].recover_after, None);
        assert_eq!(fs[1].core, 3);
        assert_eq!(fs[1].recover_after, Some(SimDuration::from_ms(5)));
        // Bare numbers are milliseconds; explicit suffixes work.
        let fs = FaultSpec::parse_cores("1@2+200us").unwrap();
        assert_eq!(fs[0].at, SimDuration::from_ms(2));
        assert_eq!(fs[0].recover_after, Some(SimDuration::from_us(200)));
        assert!(FaultSpec::parse_cores("nope").is_err());
        assert!(FaultSpec::parse_cores("0@x").is_err());
    }

    #[test]
    fn fault_rng_is_deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = fault_rng(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = fault_rng(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = fault_rng(43);
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, c);
        let mut r = fault_rng(7);
        for _ in 0..1000 {
            let u = r.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn report_digest_is_stable_and_merge_accumulates() {
        let mut a = FaultReport {
            injected: 2,
            displaced: 3,
            reexecuted: 3,
            capacity_lost: SimDuration::from_ms(1),
            makespan_degradation: 1.2,
            ..FaultReport::default()
        };
        a.recovery_latency.record(SimDuration::from_us(10));
        assert_eq!(a.digest(), a.clone().digest());
        let b = FaultReport {
            injected: 1,
            shed: 4,
            makespan_degradation: 1.5,
            ..FaultReport::default()
        };
        let d_before = a.digest();
        a.merge(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.shed, 4);
        assert_eq!(a.capacity_lost, SimDuration::from_ms(1));
        assert_eq!(a.makespan_degradation, 1.5);
        assert_ne!(a.digest(), d_before);
        // Round trip.
        let json = serde_json::to_string(&a).unwrap();
        let back: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
