//! A real thread-pool CATA runtime.
//!
//! Everything else in this crate *simulates* the paper's system; this module
//! *is* one: a task runtime executing actual closures on actual threads,
//! with
//!
//! - OmpSs-style dependence tracking (explicit handles or declared
//!   `in`/`out` region accesses),
//! - the CATS dual ready queues (critical vs. non-critical),
//! - the CATA acceleration algorithm (shared [`ReconfigEngine`]) applied at
//!   task start/end, driving a pluggable [`DvfsBackend`] — the real sysfs
//!   cpufreq interface on a Linux host with the `userspace` governor, or a
//!   mock elsewhere,
//! - both reconfiguration disciplines of the paper: [`RsmMode::Software`]
//!   holds the RSM lock across the backend writes (serialized, like the
//!   cpufreq path), while [`RsmMode::RsuEmulated`] holds it only for the
//!   decision and issues writes outside (the RSU's behaviour).
//!
//! This is the "rayon tasks plus sysfs DVFS control" configuration the
//! reproduction brief calls for; on hosts without cpufreq permissions the
//! mock backend records the decisions instead.

use cata_cpufreq::backend::DvfsBackend;
use cata_power::{BusyIntervals, BusyTracker, FreqClass};
use cata_rsu::engine::{Cmd, ReconfigEngine};
use cata_tdg::deps::{AccessMode, DepTracker, RegionId};
use cata_tdg::TaskId;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// How the native RSM applies reconfigurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsmMode {
    /// Software CATA: backend writes happen *inside* the RSM critical
    /// section, serializing all reconfigurations (the paper's §III-A path).
    Software,
    /// RSU-emulated: the critical section covers only the decision; backend
    /// writes are issued after unlocking and may overlap (§III-B).
    RsuEmulated,
}

/// A handle to a spawned task, usable as a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(usize);

/// Runtime counters (all monotonic).
#[derive(Debug, Default)]
pub struct NativeMetrics {
    /// Tasks executed to completion.
    pub tasks_run: AtomicU64,
    /// Backend frequency writes issued.
    pub reconfigs: AtomicU64,
    /// Backend writes that failed (e.g. no cpufreq permission); the runtime
    /// degrades to scheduling-only.
    pub reconfig_failures: AtomicU64,
    /// Individual write attempts that failed or timed out (every retry
    /// counts; `reconfig_failures` counts only writes that stayed failed
    /// after the retry budget).
    pub reconfig_faults: AtomicU64,
    /// Writes that landed after at least one failed attempt.
    pub reconfig_recovered: AtomicU64,
    /// Writes abandoned with the retry budget exhausted: the core stays
    /// at its current frequency class (degraded, not wedged).
    pub reconfig_exhausted: AtomicU64,
    /// Critical tasks that could not be accelerated (no budget).
    pub accel_denied: AtomicU64,
    /// Nanoseconds spent holding the RSM lock.
    pub rsm_lock_ns: AtomicU64,
}

impl NativeMetrics {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            reconfigs: self.reconfigs.load(Ordering::Relaxed),
            reconfig_failures: self.reconfig_failures.load(Ordering::Relaxed),
            reconfig_faults: self.reconfig_faults.load(Ordering::Relaxed),
            reconfig_recovered: self.reconfig_recovered.load(Ordering::Relaxed),
            reconfig_exhausted: self.reconfig_exhausted.load(Ordering::Relaxed),
            accel_denied: self.accel_denied.load(Ordering::Relaxed),
            rsm_lock_ns: self.rsm_lock_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the runtime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Tasks executed to completion.
    pub tasks_run: u64,
    /// Backend frequency writes issued.
    pub reconfigs: u64,
    /// Failed backend writes.
    pub reconfig_failures: u64,
    /// Failed or timed-out write *attempts* (retries included).
    pub reconfig_faults: u64,
    /// Writes that landed after at least one failed attempt.
    pub reconfig_recovered: u64,
    /// Writes abandoned after the retry budget.
    pub reconfig_exhausted: u64,
    /// Denied accelerations of critical tasks.
    pub accel_denied: u64,
    /// Nanoseconds spent holding the RSM lock.
    pub rsm_lock_ns: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Waiting,
    Ready,
    Running,
    Done,
}

struct TaskEntry {
    func: Option<Box<dyn FnOnce() + Send + 'static>>,
    unfinished_preds: usize,
    succs: Vec<usize>,
    critical: bool,
    state: TaskState,
}

struct SchedState {
    tasks: Vec<TaskEntry>,
    hprq: VecDeque<usize>,
    lprq: VecDeque<usize>,
    outstanding: usize,
    shutdown: bool,
}

/// Retry discipline for DVFS backend writes. The default (`max_retries
/// == 0`) is the historical single-try behaviour: one failed write
/// degrades the core to scheduling-only immediately.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Extra attempts after the first failed write.
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff_base: std::time::Duration,
    /// Budget per individual write attempt: a write that lands but takes
    /// longer than this is classified as a fault that recovered (slow
    /// silicon is a symptom, not a success).
    pub attempt_timeout: Option<std::time::Duration>,
    /// Seed for the backoff jitter (pass the run seed so two runs of the
    /// same spec jitter identically).
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 0,
            backoff_base: std::time::Duration::from_micros(50),
            attempt_timeout: None,
            seed: 0,
        }
    }
}

struct Inner {
    sched: Mutex<SchedState>,
    work: Condvar,
    drained: Condvar,
    rsm: Mutex<ReconfigEngine>,
    rsm_mode: RsmMode,
    backend: Arc<dyn DvfsBackend>,
    fast_khz: u32,
    slow_khz: u32,
    retry: RetryConfig,
    /// Monotonic draw counter for backoff jitter: mixed with the seed it
    /// gives each retry a distinct, reproducible-per-sequence jitter.
    retry_draws: AtomicU64,
    metrics: NativeMetrics,
    regions: Mutex<DepTracker>,
    /// Per-core busy-time-at-frequency observations feeding the calibrated
    /// energy model (`cata_power::modeled`).
    busy: BusyTracker,
}

impl Inner {
    /// Jitter in `[0, cap)` nanoseconds from the seeded draw sequence
    /// (SplitMix64 finalizer over seed ⊕ draw index).
    fn jitter_ns(&self, cap: u64) -> u64 {
        if cap == 0 {
            return 0;
        }
        let i = self.retry_draws.fetch_add(1, Ordering::Relaxed);
        let z = cata_sim::seeded::mix64(
            self.retry
                .seed
                .wrapping_add(i.wrapping_mul(cata_sim::seeded::GOLDEN_GAMMA)),
        );
        z % cap
    }

    fn apply_cmds(&self, cmds: &[Cmd]) {
        for cmd in cmds {
            let (cpu, khz, class) = match *cmd {
                Cmd::Accelerate(c) => (c, self.fast_khz, FreqClass::Fast),
                Cmd::Decelerate(c) => (c, self.slow_khz, FreqClass::Slow),
            };
            self.metrics.reconfigs.fetch_add(1, Ordering::Relaxed);
            // Bounded retry with exponential backoff + seeded jitter.
            // Outcomes are classified, never silently discarded:
            // recovered (landed after a failed/slow attempt), exhausted
            // (degraded to the current class), or clean first-try success.
            let mut attempt = 0u32;
            let mut faulted = false;
            let landed = loop {
                let t0 = Instant::now();
                let ok = self.backend.set_speed(cpu, khz).is_ok();
                let timed_out = self
                    .retry
                    .attempt_timeout
                    .is_some_and(|budget| t0.elapsed() > budget);
                if ok && !timed_out {
                    break true;
                }
                faulted = true;
                self.metrics.reconfig_faults.fetch_add(1, Ordering::Relaxed);
                if ok {
                    // The write landed, merely late: the operating point
                    // changed, so this is a recovered fault, not a retry.
                    break true;
                }
                if attempt >= self.retry.max_retries {
                    break false;
                }
                let backoff = self
                    .retry
                    .backoff_base
                    .saturating_mul(1u32 << attempt.min(16));
                let jitter = self.jitter_ns(backoff.as_nanos().min(u64::MAX as u128) as u64 / 2);
                std::thread::sleep(backoff + std::time::Duration::from_nanos(jitter));
                attempt += 1;
            };
            if landed {
                if faulted {
                    self.metrics
                        .reconfig_recovered
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Only a write that landed changes the core's operating
                // point; failed writes leave the energy model at the old
                // class, matching what the silicon actually did.
                self.busy.set_class(cpu, class);
            } else {
                self.metrics
                    .reconfig_failures
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .reconfig_exhausted
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Runs the RSM transaction for a task event. `decide` produces the
    /// commands under the engine lock.
    fn rsm_event(&self, decide: impl FnOnce(&mut ReconfigEngine) -> Vec<Cmd>) {
        let t0 = Instant::now();
        let mut engine = self.rsm.lock();
        let cmds = decide(&mut engine);
        match self.rsm_mode {
            RsmMode::Software => {
                // Paper §III-A: the whole reconfiguration is serialized.
                self.apply_cmds(&cmds);
                let held = t0.elapsed().as_nanos() as u64;
                drop(engine);
                self.metrics.rsm_lock_ns.fetch_add(held, Ordering::Relaxed);
            }
            RsmMode::RsuEmulated => {
                let held = t0.elapsed().as_nanos() as u64;
                drop(engine);
                self.metrics.rsm_lock_ns.fetch_add(held, Ordering::Relaxed);
                // §III-B: the unit drives the controller; writes overlap.
                self.apply_cmds(&cmds);
            }
        }
    }
}

/// Builder for [`NativeRuntime`].
pub struct NativeRuntimeBuilder {
    workers: usize,
    budget: usize,
    fast_khz: u32,
    slow_khz: u32,
    rsm_mode: RsmMode,
    backend: Option<Arc<dyn DvfsBackend>>,
    retry: RetryConfig,
}

impl NativeRuntimeBuilder {
    /// Starts a builder for `workers` worker threads.
    pub fn new(workers: usize) -> Self {
        NativeRuntimeBuilder {
            workers,
            budget: workers / 2,
            fast_khz: 2_000_000,
            slow_khz: 1_000_000,
            rsm_mode: RsmMode::RsuEmulated,
            backend: None,
            retry: RetryConfig::default(),
        }
    }

    /// Sets the power budget (max simultaneously accelerated workers).
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the fast/slow frequencies in kHz (cpufreq units).
    pub fn frequencies_khz(mut self, fast: u32, slow: u32) -> Self {
        self.fast_khz = fast;
        self.slow_khz = slow;
        self
    }

    /// Selects the reconfiguration discipline.
    pub fn rsm_mode(mut self, mode: RsmMode) -> Self {
        self.rsm_mode = mode;
        self
    }

    /// Sets the DVFS backend (sysfs, mock, null).
    pub fn backend(mut self, backend: Arc<dyn DvfsBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the DVFS-write retry discipline (default: single try).
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Builds and starts the runtime.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `budget > workers`.
    pub fn build(self) -> NativeRuntime {
        assert!(self.workers > 0, "need at least one worker");
        assert!(
            self.budget <= self.workers,
            "budget {} exceeds workers {}",
            self.budget,
            self.workers
        );
        let backend = self
            .backend
            .unwrap_or_else(|| Arc::new(cata_cpufreq::backend::NullDvfs::new(self.workers)));
        let inner = Arc::new(Inner {
            sched: Mutex::new(SchedState {
                tasks: Vec::new(),
                hprq: VecDeque::new(),
                lprq: VecDeque::new(),
                outstanding: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            drained: Condvar::new(),
            rsm: Mutex::new(ReconfigEngine::new(self.workers, self.budget)),
            rsm_mode: self.rsm_mode,
            backend,
            fast_khz: self.fast_khz,
            slow_khz: self.slow_khz,
            retry: self.retry,
            retry_draws: AtomicU64::new(0),
            metrics: NativeMetrics::default(),
            regions: Mutex::new(DepTracker::new()),
            busy: BusyTracker::new(self.workers),
        });

        let handles = (0..self.workers)
            .map(|wid| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cata-worker-{wid}"))
                    .spawn(move || worker_loop(wid, inner))
                    .expect("spawn worker")
            })
            .collect();

        NativeRuntime {
            inner,
            workers: handles,
        }
    }
}

fn worker_loop(wid: usize, inner: Arc<Inner>) {
    loop {
        // Acquire work (CATS order: HPRQ first, then LPRQ).
        let (id, critical, func) = {
            let mut s = inner.sched.lock();
            let mut idle_reported = false;
            let id = loop {
                if let Some(id) = s.hprq.pop_front().or_else(|| s.lprq.pop_front()) {
                    break id;
                }
                if s.shutdown {
                    return;
                }
                if !idle_reported {
                    // §V-B: an accelerated worker with nothing to run
                    // releases its budget before sleeping.
                    idle_reported = true;
                    parking_lot::MutexGuard::unlocked(&mut s, || {
                        inner.rsm_event(|e| e.on_core_idle(wid));
                    });
                    continue; // re-check the queues after dropping the lock
                }
                inner.work.wait(&mut s);
            };
            let entry = &mut s.tasks[id];
            debug_assert_eq!(entry.state, TaskState::Ready);
            entry.state = TaskState::Running;
            let func = entry.func.take().expect("task body taken twice");
            (id, entry.critical, func)
        };

        // CATA prologue: accelerate if possible.
        inner.rsm_event(|e| {
            let cmds = e.on_task_start(wid, critical);
            if critical && cmds.is_empty() && !e.is_accelerated(wid) {
                inner.metrics.accel_denied.fetch_add(1, Ordering::Relaxed);
            }
            cmds
        });

        inner.busy.task_begin(wid);
        func();
        inner.busy.task_end(wid);

        // CATA epilogue: decelerate, hand budget on.
        inner.rsm_event(|e| e.on_task_end(wid));
        inner.metrics.tasks_run.fetch_add(1, Ordering::Relaxed);

        // Retire: release successors.
        let mut s = inner.sched.lock();
        s.tasks[id].state = TaskState::Done;
        let succs = std::mem::take(&mut s.tasks[id].succs);
        let mut woke = 0usize;
        for succ in succs {
            let e = &mut s.tasks[succ];
            e.unfinished_preds -= 1;
            if e.unfinished_preds == 0 && e.state == TaskState::Waiting {
                e.state = TaskState::Ready;
                if e.critical {
                    s.hprq.push_back(succ);
                } else {
                    s.lprq.push_back(succ);
                }
                woke += 1;
            }
        }
        s.outstanding -= 1;
        if s.outstanding == 0 {
            inner.drained.notify_all();
        }
        for _ in 0..woke {
            inner.work.notify_one();
        }
    }
}

/// The native CATA runtime. Spawn tasks with [`spawn`](Self::spawn) or
/// [`spawn_with_accesses`](Self::spawn_with_accesses); wait with
/// [`wait_all`](Self::wait_all). Dropping the runtime waits for queued work
/// and joins the workers.
pub struct NativeRuntime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl NativeRuntime {
    /// Shorthand for [`NativeRuntimeBuilder::new`].
    pub fn builder(workers: usize) -> NativeRuntimeBuilder {
        NativeRuntimeBuilder::new(workers)
    }

    /// Spawns a task depending on explicit `deps`. `critical` routes it to
    /// the HPRQ and makes it eligible for acceleration under contention.
    pub fn spawn(
        &self,
        critical: bool,
        deps: &[TaskHandle],
        f: impl FnOnce() + Send + 'static,
    ) -> TaskHandle {
        let mut s = self.inner.sched.lock();
        let id = s.tasks.len();
        let mut unfinished = 0usize;

        // Collect the dependencies that are still live first, then register
        // this task with each of them.
        let live: Vec<usize> = deps
            .iter()
            .filter(|h| s.tasks[h.0].state != TaskState::Done)
            .map(|h| h.0)
            .collect();
        for &d in &live {
            s.tasks[d].succs.push(id);
            unfinished += 1;
        }

        let ready = unfinished == 0;
        s.tasks.push(TaskEntry {
            func: Some(Box::new(f)),
            unfinished_preds: unfinished,
            succs: Vec::new(),
            critical,
            state: if ready {
                TaskState::Ready
            } else {
                TaskState::Waiting
            },
        });
        s.outstanding += 1;
        if ready {
            if critical {
                s.hprq.push_back(id);
            } else {
                s.lprq.push_back(id);
            }
            drop(s);
            self.inner.work.notify_one();
        }
        TaskHandle(id)
    }

    /// Spawns a task whose dependences are derived from declared data-region
    /// accesses, OmpSs style (`in`/`out`/`inout`).
    pub fn spawn_with_accesses(
        &self,
        critical: bool,
        accesses: &[(RegionId, AccessMode)],
        f: impl FnOnce() + Send + 'static,
    ) -> TaskHandle {
        // Reserve the id under the scheduler lock via a two-phase protocol:
        // region tracking keys tasks by their future id.
        let deps: Vec<TaskHandle> = {
            let s = self.inner.sched.lock();
            let next_id = s.tasks.len() as u32;
            drop(s);
            let mut regions = self.inner.regions.lock();
            regions
                .deps_for(TaskId(next_id), accesses)
                .into_iter()
                .map(|t| TaskHandle(t.index()))
                .collect()
        };
        self.spawn(critical, &deps, f)
    }

    /// Blocks until every spawned task has completed.
    pub fn wait_all(&self) {
        let mut s = self.inner.sched.lock();
        while s.outstanding > 0 {
            self.inner.drained.wait(&mut s);
        }
    }

    /// Current counter values.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Per-worker busy seconds at each frequency class, as observed around
    /// task start/end and DVFS writes — the input to the calibrated energy
    /// model.
    pub fn busy_intervals(&self) -> Vec<BusyIntervals> {
        self.inner.busy.intervals()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The configured power budget.
    pub fn budget(&self) -> usize {
        self.inner.rsm.lock().budget()
    }
}

impl Drop for NativeRuntime {
    fn drop(&mut self) {
        self.wait_all();
        {
            let mut s = self.inner.sched.lock();
            s.shutdown = true;
        }
        self.inner.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_cpufreq::backend::MockDvfs;
    use std::sync::atomic::AtomicUsize;

    fn runtime(workers: usize, budget: usize, mode: RsmMode) -> (NativeRuntime, Arc<MockDvfs>) {
        let mock = Arc::new(MockDvfs::new(workers, 1_000_000));
        let rt = NativeRuntime::builder(workers)
            .budget(budget)
            .rsm_mode(mode)
            .backend(mock.clone() as Arc<dyn DvfsBackend>)
            .build();
        (rt, mock)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let (rt, _) = runtime(4, 2, RsmMode::RsuEmulated);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let c = Arc::clone(&counter);
            rt.spawn(i % 4 == 0, &[], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_all();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(rt.metrics().tasks_run, 100);
    }

    #[test]
    fn dependences_order_execution() {
        let (rt, _) = runtime(4, 2, RsmMode::Software);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let a = rt.spawn(false, &[], move || l1.lock().push("a"));
        let l2 = Arc::clone(&log);
        let b = rt.spawn(false, &[a], move || l2.lock().push("b"));
        let l3 = Arc::clone(&log);
        rt.spawn(true, &[a, b], move || l3.lock().push("c"));
        rt.wait_all();
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn diamond_joins_both_branches() {
        let (rt, _) = runtime(4, 4, RsmMode::RsuEmulated);
        let sum = Arc::new(AtomicUsize::new(0));
        let s1 = Arc::clone(&sum);
        let root = rt.spawn(false, &[], move || {
            s1.fetch_add(1, Ordering::Relaxed);
        });
        let mut branches = Vec::new();
        for _ in 0..2 {
            let s = Arc::clone(&sum);
            branches.push(rt.spawn(false, &[root], move || {
                s.fetch_add(10, Ordering::Relaxed);
            }));
        }
        let s2 = Arc::clone(&sum);
        rt.spawn(true, &branches, move || {
            // Both branches must have run.
            assert_eq!(s2.load(Ordering::Relaxed), 21);
            s2.fetch_add(100, Ordering::Relaxed);
        });
        rt.wait_all();
        assert_eq!(sum.load(Ordering::Relaxed), 121);
    }

    #[test]
    fn region_accesses_derive_dependences() {
        let (rt, _) = runtime(2, 1, RsmMode::RsuEmulated);
        let log = Arc::new(Mutex::new(Vec::new()));
        let r = RegionId(7);
        let l1 = Arc::clone(&log);
        rt.spawn_with_accesses(false, &[(r, AccessMode::Out)], move || {
            l1.lock().push("writer");
        });
        let l2 = Arc::clone(&log);
        rt.spawn_with_accesses(false, &[(r, AccessMode::In)], move || {
            l2.lock().push("reader");
        });
        rt.wait_all();
        assert_eq!(*log.lock(), vec!["writer", "reader"]);
    }

    #[test]
    fn backend_receives_reconfigurations() {
        let (rt, mock) = runtime(2, 1, RsmMode::Software);
        for _ in 0..10 {
            rt.spawn(true, &[], || {});
        }
        rt.wait_all();
        assert!(mock.call_count() > 0, "no DVFS writes recorded");
        // Every write targets a valid worker at a known frequency.
        for (cpu, khz) in mock.calls() {
            assert!(cpu < 2);
            assert!(khz == 2_000_000 || khz == 1_000_000);
        }
    }

    #[test]
    fn backend_failures_degrade_gracefully() {
        let mock = Arc::new(MockDvfs::new(2, 1_000_000));
        mock.fail_after(0);
        let rt = NativeRuntime::builder(2)
            .budget(1)
            .backend(mock.clone() as Arc<dyn DvfsBackend>)
            .build();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            rt.spawn(true, &[], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_all();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
        assert!(rt.metrics().reconfig_failures > 0);
    }

    #[test]
    fn transient_backend_failures_recover_with_retry() {
        let mock = Arc::new(MockDvfs::new(2, 1_000_000));
        mock.fail_next(2); // first two write attempts fail, then heal
        let rt = NativeRuntime::builder(2)
            .budget(1)
            .backend(mock.clone() as Arc<dyn DvfsBackend>)
            .retry(RetryConfig {
                max_retries: 3,
                backoff_base: std::time::Duration::from_micros(10),
                attempt_timeout: None,
                seed: 42,
            })
            .build();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        rt.spawn(true, &[], move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        rt.wait_all();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        let m = rt.metrics();
        assert!(m.reconfig_faults >= 2, "faults: {}", m.reconfig_faults);
        assert!(m.reconfig_recovered >= 1, "nothing recovered");
        assert_eq!(m.reconfig_failures, 0, "retry should have healed all");
        assert_eq!(m.reconfig_exhausted, 0);
    }

    #[test]
    fn exhausted_retries_classify_as_degraded() {
        let mock = Arc::new(MockDvfs::new(2, 1_000_000));
        mock.fail_after(0); // permanent failure: retries cannot heal it
        let rt = NativeRuntime::builder(2)
            .budget(1)
            .backend(mock.clone() as Arc<dyn DvfsBackend>)
            .retry(RetryConfig {
                max_retries: 2,
                backoff_base: std::time::Duration::from_micros(10),
                attempt_timeout: None,
                seed: 7,
            })
            .build();
        for _ in 0..5 {
            rt.spawn(true, &[], || {});
        }
        rt.wait_all();
        let m = rt.metrics();
        assert!(m.reconfig_exhausted > 0, "no write exhausted its budget");
        assert_eq!(m.reconfig_exhausted, m.reconfig_failures);
        assert_eq!(m.reconfig_recovered, 0);
        // Every exhausted write burned its full attempt budget.
        assert!(m.reconfig_faults >= m.reconfig_exhausted * 3);
    }

    #[test]
    fn completed_dependences_do_not_block() {
        let (rt, _) = runtime(2, 1, RsmMode::RsuEmulated);
        let a = rt.spawn(false, &[], || {});
        rt.wait_all(); // `a` is done
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        rt.spawn(false, &[a], move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        rt.wait_all();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn both_rsm_modes_account_lock_time() {
        for mode in [RsmMode::Software, RsmMode::RsuEmulated] {
            let (rt, _) = runtime(4, 2, mode);
            for _ in 0..50 {
                rt.spawn(true, &[], || {});
            }
            rt.wait_all();
            let m = rt.metrics();
            assert!(m.reconfigs > 0, "{mode:?} never reconfigured");
        }
    }

    #[test]
    fn busy_intervals_are_observed_around_task_bodies() {
        let (rt, _) = runtime(2, 1, RsmMode::RsuEmulated);
        for _ in 0..4 {
            rt.spawn(true, &[], || {
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }
        rt.wait_all();
        let iv = rt.busy_intervals();
        assert_eq!(iv.len(), 2);
        let total: f64 = iv.iter().map(|i| i.total_s()).sum();
        // 4 tasks × ≥2 ms of body each, wherever they landed.
        assert!(total >= 0.008, "observed only {total}s busy");
        // Critical tasks got accelerated (budget 1), so some of that busy
        // time was banked at the fast class.
        let fast: f64 = iv.iter().map(|i| i.busy_fast_s).sum();
        assert!(fast > 0.0, "no fast-class busy time recorded");
    }

    #[test]
    fn stress_many_tasks_many_workers() {
        let (rt, _) = runtime(8, 4, RsmMode::RsuEmulated);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut last: Option<TaskHandle> = None;
        for i in 0..500 {
            let c = Arc::clone(&counter);
            let deps: Vec<TaskHandle> = last.into_iter().collect();
            let h = rt.spawn(i % 7 == 0, &deps, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            if i % 3 == 0 {
                last = Some(h);
            }
        }
        rt.wait_all();
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }
}
