//! ASCII schedule rendering from simulation traces.
//!
//! The paper's methodology identifies critical paths by "visualiz\[ing\] the
//! parallel execution of the application" with profiling tools (Paraver).
//! This module is the equivalent for our traces: a per-core time-bucketed
//! Gantt chart showing what each core ran, its criticality, and its
//! frequency — used by the examples and invaluable when calibrating
//! workloads.
//!
//! ```text
//! core0 |CCCCCCCC....ffffFFFF|
//! core1 |nnnnnnnnnnnn........|
//!        0µs              2ms
//! ```
//!
//! Legend: `C` critical task on a fast core, `c` critical on slow, `N`/`n`
//! non-critical fast/slow, `.` idle, `z` halted. One column = one bucket.

use cata_sim::machine::CoreId;
use cata_sim::time::{SimDuration, SimTime};
use cata_sim::trace::{Trace, TraceEvent};

/// One core's state during a bucket (precedence: running > halted > idle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    Idle,
    Halted,
    Task { critical: bool, fast: bool },
}

impl Cell {
    fn glyph(self) -> char {
        match self {
            Cell::Idle => '.',
            Cell::Halted => 'z',
            Cell::Task {
                critical: true,
                fast: true,
            } => 'C',
            Cell::Task {
                critical: true,
                fast: false,
            } => 'c',
            Cell::Task {
                critical: false,
                fast: true,
            } => 'N',
            Cell::Task {
                critical: false,
                fast: false,
            } => 'n',
        }
    }
}

/// Renders a Gantt chart of `trace` over `num_cores` cores and `[0, end]`,
/// with `width` character columns. `num_cores` may be smaller than the
/// traced machine: records for higher-numbered cores are ignored, so a
/// 32-core run can be summarized by its first rows.
///
/// The chart samples each core's state at bucket boundaries, so very short
/// tasks inside one bucket may not be visible; it is a visualization aid,
/// not an accounting tool (use [`RunReport`](crate::report::RunReport) for
/// numbers).
pub fn render(trace: &Trace, num_cores: usize, end: SimTime, width: usize) -> String {
    let width = width.max(2);
    let end_ps = end.as_ps().max(1);
    let bucket = SimDuration::from_ps(end_ps.div_ceil(width as u64));

    // Build per-core state timelines from the trace.
    #[derive(Clone)]
    struct CoreState {
        cells: Vec<Cell>,
        current: Cell,
        fast: bool,
        cursor: usize,
    }
    let mut cores = vec![
        CoreState {
            cells: Vec::with_capacity(width),
            current: Cell::Idle,
            fast: false,
            cursor: 0,
        };
        num_cores
    ];

    let bucket_of = |t: SimTime| ((t.as_ps() / bucket.as_ps()) as usize).min(width - 1);
    let fill = |c: &mut CoreState, upto: usize| {
        while c.cursor < upto.min(width) {
            c.cells.push(c.current);
            c.cursor += 1;
        }
    };

    let mut apply = |core: CoreId, t: SimTime, f: &mut dyn FnMut(&mut CoreState)| {
        // Cores beyond the rendered subset simply don't get a row.
        let Some(c) = cores.get_mut(core.index()) else {
            return;
        };
        let b = bucket_of(t);
        // Fill buckets up to (not including) the event's bucket with the
        // previous state.
        let target = b;
        while c.cursor < target.min(width) {
            c.cells.push(c.current);
            c.cursor += 1;
        }
        f(c);
    };

    for rec in trace.records() {
        match rec.event {
            TraceEvent::TaskStart { core, critical, .. } => {
                apply(core, rec.time, &mut |c| {
                    c.current = Cell::Task {
                        critical,
                        fast: c.fast,
                    };
                });
            }
            TraceEvent::TaskEnd { core, .. } => {
                apply(core, rec.time, &mut |c| c.current = Cell::Idle);
            }
            TraceEvent::Halt { core } => {
                apply(core, rec.time, &mut |c| {
                    if c.current == Cell::Idle {
                        c.current = Cell::Halted;
                    }
                });
            }
            TraceEvent::Wake { core } => {
                apply(core, rec.time, &mut |c| {
                    if c.current == Cell::Halted {
                        c.current = Cell::Idle;
                    }
                });
            }
            TraceEvent::ReconfigApplied { core, level } => {
                let fast = level.frequency.as_mhz() >= 2000;
                apply(core, rec.time, &mut |c| {
                    c.fast = fast;
                    if let Cell::Task { critical, .. } = c.current {
                        c.current = Cell::Task { critical, fast };
                    }
                });
            }
            TraceEvent::ReconfigRequest { .. } => {}
        }
    }

    let mut out = String::new();
    for (i, c) in cores.iter_mut().enumerate() {
        fill(c, width);
        out.push_str(&format!("core{i:<3}|"));
        out.extend(c.cells.iter().map(|cell| cell.glyph()));
        out.push_str("|\n");
    }
    out.push_str(&format!("{:>7}0{:>width$}\n", "", end, width = width + 1));
    out.push_str("legend: C/c critical (fast/slow)  N/n non-critical  . idle  z halted\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunConfig, SimExecutor};
    use cata_workloads::micro;

    #[test]
    fn renders_one_row_per_core_and_legend() {
        let g = micro::fork_join(2, 6, 1_000_000);
        let cfg = RunConfig::cata_rsu(2).with_small_machine(4, 2).with_trace();
        let (r, trace) = SimExecutor::new(cfg).run(&g, "g");
        let s = render(&trace, 4, cata_sim::time::SimTime::ZERO + r.exec_time, 60);
        assert_eq!(s.lines().count(), 4 + 2, "4 core rows + axis + legend");
        for i in 0..4 {
            assert!(s.contains(&format!("core{i}")));
        }
        assert!(s.contains("legend"));
        // Work happened: some task glyph must appear.
        assert!(s.contains('N') || s.contains('n') || s.contains('C') || s.contains('c'));
    }

    #[test]
    fn critical_tasks_show_as_critical_glyphs() {
        let g = micro::skewed_diamond(4, 4_000_000, 8);
        let cfg = RunConfig::cata_rsu(1).with_small_machine(4, 1).with_trace();
        let (r, trace) = SimExecutor::new(cfg).run(&g, "g");
        let s = render(&trace, 4, cata_sim::time::SimTime::ZERO + r.exec_time, 80);
        assert!(
            s.contains('C') || s.contains('c'),
            "the critical branch must be visible:\n{s}"
        );
    }

    #[test]
    fn renders_subset_of_a_larger_machine() {
        // A 32-core paper-machine trace rendered at 8 rows: records for
        // cores 8..32 must be skipped, not panic (regression: the
        // pipeline_app example shows "first 8 cores").
        let g = micro::fork_join(3, 24, 1_000_000);
        let cfg = RunConfig::cata_rsu(8).with_trace();
        let (r, trace) = SimExecutor::new(cfg).run(&g, "g");
        let s = render(&trace, 8, cata_sim::time::SimTime::ZERO + r.exec_time, 60);
        assert_eq!(s.lines().count(), 8 + 2, "8 core rows + axis + legend");
        assert!(!s.contains("core8 "), "no rows beyond the subset");
    }

    #[test]
    fn empty_trace_renders_idle_machine() {
        let trace = Trace::enabled();
        let s = render(&trace, 2, SimTime::from_us(10), 10);
        assert!(s.contains(&".".repeat(10)));
    }
}
