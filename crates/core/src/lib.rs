//! # cata-core — Criticality Aware Task Acceleration
//!
//! The primary contribution of Castillo et al., *"CATA: Criticality Aware
//! Task Acceleration for Multicore Processors"* (IPDPS 2016): a task-based
//! runtime that not only **schedules** tasks by criticality (CATS) but
//! **reconfigures the hardware underneath them** — accelerating the cores
//! that run critical tasks via DVFS while keeping the chip inside a power
//! budget, thereby fixing the *priority inversion* and *static binding*
//! pathologies of criticality-aware scheduling on heterogeneous machines.
//!
//! This crate implements the whole comparison matrix of the paper's
//! evaluation:
//!
//! | Configuration | Scheduler | Criticality | Acceleration |
//! |---|---|---|---|
//! | `FIFO`       | single ready queue     | —            | static fast/slow cores |
//! | `CATS+BL`    | HPRQ/LPRQ \[24\]       | bottom-level | static fast/slow cores |
//! | `CATS+SA`    | HPRQ/LPRQ              | annotations  | static fast/slow cores |
//! | `CATA`       | HPRQ/LPRQ              | annotations  | runtime-driven DVFS through the software cpufreq path (RSM + locks) |
//! | `CATA+RSU`   | HPRQ/LPRQ              | annotations  | hardware Runtime Support Unit |
//! | `TurboMode`  | single ready queue     | —            | halt-driven budget reallocation \[18\] |
//!
//! Two executors drive these policies:
//!
//! - [`sim_exec::SimExecutor`]: a deterministic discrete-event execution on
//!   the `cata-sim` machine model — the configuration used to reproduce the
//!   paper's figures;
//! - [`native`]: a real thread-pool runtime executing actual closures with
//!   dependence tracking, criticality queues and a pluggable DVFS backend
//!   (`cata-cpufreq`), usable on real Linux hosts with the userspace
//!   cpufreq governor.
//!
//! See the crate-level `examples/` for end-to-end usage, and `cata-bench`
//! for the figure-regeneration harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accel;
pub mod config;
pub mod exp;
pub mod fault;
pub mod gantt;
pub mod mem;
pub mod native;
pub mod policy;
pub mod report;
pub mod service;
pub mod sim_exec;

pub use config::{AccelKind, EstimatorKind, RunConfig, SchedulerKind};
pub use exp::{
    CellRecord, Executor, ExpError, NativeExecutor, PolicyRegistries, ResultsStore, Scenario,
    ScenarioSpec, Suite, WorkloadSpec,
};
pub use fault::{
    default_recovery_registry, CoreFailure, FaultReport, FaultSpec, RecoveryAction, RecoveryCtx,
    RecoveryPolicy, RecoveryRegistry,
};
pub use mem::{default_arbitration_registry, ArbitrationRegistry, MemoryReport, MemorySpec};
pub use report::RunReport;
pub use sim_exec::SimExecutor;
