//! # cata-obs — the operator console
//!
//! A dependency-free terminal dashboard that live-tails the artifacts a
//! CATA run writes as it goes — shard [`ResultsStore`] files, the
//! `.progress.jsonl` heartbeat sidecars, and the `repro perf
//! --trajectory` series — and folds them into one merged view: a
//! grid-completion heatmap, an events/sec sparkline, per-cell wall/EDP/
//! p99/fault/memory accounting, and a detail pane for finished cells.
//!
//! The crate is layered so CI never needs a TTY:
//!
//! * [`frame`] — styled character grids; plain-text and ANSI
//!   projections, double-buffered diffing.
//! * [`widgets`] — borders, gauges, heatmap glyphs, sparklines, and the
//!   `-`-for-missing formatters that keep `NaN`/`inf` out of frames.
//! * [`state`] — incremental, interleaving-tolerant ingestion of the
//!   three JSONL dialects into a [`DashState`].
//! * [`dash`] — the **pure** renderer `&DashState → Frame`.
//! * [`watch`] — the live loop: tail-poll, render, diff-paint, keys;
//!   plus the headless `--once` / `--until-done` modes CI drives.
//!
//! Everything terminal-shaped is confined to [`watch`]; the rest is
//! deterministic and unit-tested headlessly.
//!
//! [`ResultsStore`]: cata_core::exp::ResultsStore

pub mod dash;
pub mod frame;
pub mod state;
pub mod watch;
pub mod widgets;

pub use dash::{render, required_height};
pub use frame::{Frame, Rect, Style};
pub use state::{CellState, CellView, DashState, ServiceView, ShardProgress, TrajPoint};
pub use watch::{run_watch, WatchConfig};
