//! Character frames: the pure render target of the dashboard.
//!
//! A [`Frame`] is a `w × h` grid of styled characters. The dashboard
//! renderer is a pure function `&DashState -> Frame`; everything
//! terminal-specific (ANSI escapes, cursor movement, double-buffered
//! diffing) lives in the frame's *output* methods, so CI can exercise the
//! renderer headlessly — [`to_text`](Frame::to_text) gives the plain-text
//! projection a test greps — while the live loop paints only the cells
//! that changed since the previous frame ([`diff_ansi`](Frame::diff_ansi)).

/// Display style of one frame cell, mapped to one SGR attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Style {
    /// Default terminal attributes.
    #[default]
    Plain,
    /// Faint: chrome, pending cells, separators.
    Dim,
    /// Bold: headings and emphasized values.
    Bold,
    /// Green: completed cells, healthy gauges.
    Green,
    /// Yellow: running cells, in-flight accounting.
    Yellow,
    /// Red: failed cells, drops, refusals.
    Red,
    /// Cyan: identities (cell keys, digests, hosts).
    Cyan,
    /// Reverse video: the title bar and the selection cursor.
    Inverse,
}

impl Style {
    /// The SGR parameter string selecting this style.
    fn sgr(self) -> &'static str {
        match self {
            Style::Plain => "0",
            Style::Dim => "0;2",
            Style::Bold => "0;1",
            Style::Green => "0;32",
            Style::Yellow => "0;33",
            Style::Red => "0;31",
            Style::Cyan => "0;36",
            Style::Inverse => "0;7",
        }
    }
}

/// One styled character of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// The character shown at this position.
    pub ch: char,
    /// Its display style.
    pub style: Style,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            ch: ' ',
            style: Style::Plain,
        }
    }
}

/// A rectangular region of a frame, in cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left column.
    pub x: usize,
    /// Top row.
    pub y: usize,
    /// Width in cells.
    pub w: usize,
    /// Height in cells.
    pub h: usize,
}

impl Rect {
    /// The region inside this one's 1-cell border (empty when too small).
    pub fn inner(self) -> Rect {
        Rect {
            x: self.x + 1,
            y: self.y + 1,
            w: self.w.saturating_sub(2),
            h: self.h.saturating_sub(2),
        }
    }
}

/// A `w × h` grid of styled characters: the pure render target.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    w: usize,
    h: usize,
    cells: Vec<Cell>,
}

impl Frame {
    /// A blank frame of the given size.
    pub fn new(w: usize, h: usize) -> Self {
        Frame {
            w,
            h,
            cells: vec![Cell::default(); w * h],
        }
    }

    /// Width in cells.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Height in cells.
    pub fn height(&self) -> usize {
        self.h
    }

    /// The cell at `(x, y)`; out-of-bounds reads are blank (writes are
    /// clipped, so a renderer never panics on a small terminal).
    pub fn get(&self, x: usize, y: usize) -> Cell {
        if x < self.w && y < self.h {
            self.cells[y * self.w + x]
        } else {
            Cell::default()
        }
    }

    /// Sets one cell; silently clipped outside the frame.
    pub fn put(&mut self, x: usize, y: usize, ch: char, style: Style) {
        if x < self.w && y < self.h {
            self.cells[y * self.w + x] = Cell { ch, style };
        }
    }

    /// Writes `text` starting at `(x, y)`, clipped to the frame's right
    /// edge. Returns the column after the last written character.
    pub fn text(&mut self, x: usize, y: usize, text: &str, style: Style) -> usize {
        let mut col = x;
        for ch in text.chars() {
            if col >= self.w {
                break;
            }
            self.put(col, y, ch, style);
            col += 1;
        }
        col
    }

    /// Fills a horizontal run of `len` cells with `ch`.
    pub fn hfill(&mut self, x: usize, y: usize, len: usize, ch: char, style: Style) {
        for i in 0..len {
            self.put(x + i, y, ch, style);
        }
    }

    /// The plain-text projection (styles dropped, rows joined by `\n`,
    /// trailing spaces trimmed) — what headless mode prints and CI greps.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity((self.w + 1) * self.h);
        for y in 0..self.h {
            let row: String = (0..self.w).map(|x| self.get(x, y).ch).collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }

    /// The full ANSI paint of this frame: home the cursor, then every
    /// row with minimal SGR switching. Used for the first frame and after
    /// a resize; steady-state repaints go through [`diff_ansi`].
    pub fn to_ansi(&self) -> String {
        let mut out = String::with_capacity(self.w * self.h * 2);
        let mut style = None;
        for y in 0..self.h {
            out.push_str(&format!("\x1b[{};1H", y + 1));
            for x in 0..self.w {
                let c = self.get(x, y);
                if style != Some(c.style) {
                    out.push_str(&format!("\x1b[{}m", c.style.sgr()));
                    style = Some(c.style);
                }
                out.push(c.ch);
            }
        }
        out.push_str("\x1b[0m");
        out
    }

    /// The double-buffered diff: ANSI escapes repainting only the cells
    /// that differ from `prev`. Falls back to a full paint when the sizes
    /// differ (a resize invalidates every position).
    pub fn diff_ansi(&self, prev: &Frame) -> String {
        if self.w != prev.w || self.h != prev.h {
            return format!("\x1b[2J{}", self.to_ansi());
        }
        let mut out = String::new();
        let mut style = None;
        // (row, col) the terminal cursor would sit at after the last
        // emitted run, so adjacent changed cells need no cursor move.
        let mut cursor: Option<(usize, usize)> = None;
        for y in 0..self.h {
            for x in 0..self.w {
                let c = self.get(x, y);
                if c == prev.get(x, y) {
                    continue;
                }
                if cursor != Some((y, x)) {
                    out.push_str(&format!("\x1b[{};{}H", y + 1, x + 1));
                }
                if style != Some(c.style) {
                    out.push_str(&format!("\x1b[{}m", c.style.sgr()));
                    style = Some(c.style);
                }
                out.push(c.ch);
                cursor = Some((y, x + 1));
            }
        }
        if !out.is_empty() {
            out.push_str("\x1b[0m");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_clip_instead_of_panicking() {
        let mut f = Frame::new(4, 2);
        f.text(2, 0, "abcdef", Style::Bold);
        f.put(99, 99, 'x', Style::Red);
        assert_eq!(f.get(2, 0).ch, 'a');
        assert_eq!(f.get(3, 0).ch, 'b');
        assert_eq!(f.get(0, 1).ch, ' ');
        assert_eq!(f.to_text(), "  ab\n\n");
    }

    #[test]
    fn diff_is_empty_for_identical_frames_and_minimal_for_one_change() {
        let mut a = Frame::new(10, 3);
        a.text(0, 1, "hello", Style::Plain);
        let b = a.clone();
        assert!(b.diff_ansi(&a).is_empty(), "no change ⇒ no bytes");

        let mut c = a.clone();
        c.put(1, 1, 'a', Style::Plain);
        let d = c.diff_ansi(&a);
        assert!(d.contains("\x1b[2;2H"), "{d:?}");
        assert!(d.contains('a'));
        assert!(!d.contains("hello"), "unchanged cells must not repaint");
    }

    #[test]
    fn size_change_forces_full_repaint() {
        let a = Frame::new(4, 2);
        let b = Frame::new(5, 2);
        assert!(b.diff_ansi(&a).starts_with("\x1b[2J"));
    }
}
