//! The dashboard renderer: a pure function from [`DashState`] to
//! [`Frame`].
//!
//! Nothing here touches the terminal, the clock, or the filesystem —
//! given the same state and dimensions the same frame comes back, so CI
//! renders headlessly and asserts on [`Frame::to_text`] while the live
//! loop feeds the identical frames through [`Frame::diff_ansi`].

use crate::frame::{Frame, Rect, Style};
use crate::state::{CellState, CellView, DashState};
use crate::widgets::{
    border, fmt_f64, fmt_ps, gauge, sparkline, GLYPH_DONE, GLYPH_FAILED, GLYPH_PENDING,
    GLYPH_RUNNING,
};

/// Heatmap cells drawn per frame row (inside the panel border).
fn heatmap_rows(total: u64, inner_w: usize) -> usize {
    if total == 0 || inner_w == 0 {
        1
    } else {
        (total as usize).div_ceil(inner_w)
    }
}

/// The frame height at which every panel — including one table row per
/// cell — fits without scrolling. Headless mode renders at this height
/// so the CI grep sees every cell key.
pub fn required_height(state: &DashState, w: usize) -> usize {
    let inner_w = w.saturating_sub(2).max(1);
    let mut h = 2; // title + gauge
    h += 2 + heatmap_rows(state.grid_total(), inner_w); // heatmap panel
    h += 3; // sparkline panel
    if state.service.is_some() {
        h += 3;
    }
    h += 3 + state.cells.len(); // table border + header + rows
    h + 1 // footer
}

/// Renders the dashboard into a `w × h` frame. Pure: no clock, no I/O.
pub fn render(state: &DashState, w: usize, h: usize) -> Frame {
    let mut f = Frame::new(w, h);
    let mut y = 0;

    // Title bar.
    f.hfill(0, y, w, ' ', Style::Inverse);
    let title = format!(
        " cata watch   cells {}   shards {}   parse errors {} ",
        state.cells.len(),
        state.shards.len().max(1),
        state.parse_errors,
    );
    f.text(0, y, &title, Style::Inverse);
    y += 1;

    // Completion gauge.
    let done = state.grid_done();
    let total = state.grid_total();
    f.text(1, y, "progress", Style::Dim);
    gauge(&mut f, 10, y, w.saturating_sub(11), done, total);
    y += 1;

    // Grid heatmap.
    let rows = heatmap_rows(total, w.saturating_sub(2).max(1));
    let hm = border(
        &mut f,
        Rect {
            x: 0,
            y,
            w,
            h: rows + 2,
        },
        "grid",
    );
    for (i, slot) in state.heat_slots().into_iter().enumerate() {
        let (gx, gy) = (i % hm.w.max(1), i / hm.w.max(1));
        let (ch, style) = match slot {
            None | Some(CellState::Pending) => GLYPH_PENDING,
            Some(CellState::Running) => GLYPH_RUNNING,
            Some(CellState::Done) => GLYPH_DONE,
            Some(CellState::Failed) => GLYPH_FAILED,
        };
        f.put(hm.x + gx, hm.y + gy, ch, style);
    }
    y += rows + 2;

    // Perf-trajectory sparkline.
    let sp = border(&mut f, Rect { x: 0, y, w, h: 3 }, "events/sec");
    if state.traj_host_mixed() {
        let hosts: Vec<&str> = state.traj_hosts.iter().map(|h| h.as_str()).collect();
        f.text(
            sp.x,
            sp.y,
            &format!("refusing cross-host mix: {}", hosts.join(", ")),
            Style::Red,
        );
    } else if state.traj.is_empty() {
        f.text(sp.x, sp.y, "no trajectory", Style::Dim);
    } else {
        let series: Vec<f64> = state.traj.iter().map(|p| p.events_per_sec).collect();
        let latest = format!(" {} ev/s", fmt_f64(series.last().copied()));
        let spark_w = sp.w.saturating_sub(latest.chars().count());
        sparkline(&mut f, sp.x, sp.y, spark_w, &series);
        f.text(sp.x + spark_w, sp.y, &latest, Style::Bold);
    }
    y += 3;

    // Service snapshot.
    if let Some(s) = &state.service {
        let sv = border(&mut f, Rect { x: 0, y, w, h: 3 }, "service");
        let line = format!(
            "arrivals {}  admitted {}  completed {}  dropped {}  in-flight {}  p99 {}  t {}",
            s.arrivals,
            s.admitted,
            s.completed,
            s.dropped,
            s.in_flight,
            fmt_ps(Some(s.p99_ps)),
            fmt_ps(Some(s.sim_time_ps)),
        );
        f.text(sv.x, sv.y, &line, Style::Plain);
        y += 3;
    }

    // Cell table or detail pane in the remaining space above the footer.
    let body_h = h.saturating_sub(y + 1);
    if body_h >= 3 {
        let area = Rect {
            x: 0,
            y,
            w,
            h: body_h,
        };
        match state.show_detail.then(|| state.selected_cell()).flatten() {
            Some(cell) => detail_pane(&mut f, area, cell),
            None => cell_table(&mut f, area, state),
        }
    }

    // Footer.
    f.text(
        1,
        h.saturating_sub(1),
        "q quit   j/k select   enter detail",
        Style::Dim,
    );
    f
}

fn cell_table(f: &mut Frame, area: Rect, state: &DashState) {
    let inner = border(f, area, "cells");
    if inner.h < 2 {
        return;
    }
    // Size the key column to the longest key so full cell names survive
    // into headless frames, but never let it squeeze out the metrics.
    let longest = state
        .cells
        .values()
        .map(|c| c.key.chars().count())
        .max()
        .unwrap_or(0);
    let key_w = longest.clamp(16, inner.w.saturating_sub(57).max(16));
    f.text(
        inner.x,
        inner.y,
        &format!(
            "{:>4} {:<key_w$} {:<7} {:>9} {:>10} {:>10} {:>5} {:>5}",
            "idx", "cell", "state", "wall_s", "edp", "p99", "flt", "memw"
        ),
        Style::Bold,
    );
    let visible = inner.h - 1;
    let first = state.selected.saturating_sub(visible.saturating_sub(1));
    for (row, cell) in state.cells.values().skip(first).take(visible).enumerate() {
        let (word, style) = match cell.state {
            CellState::Pending => ("pend", Style::Dim),
            CellState::Running => ("run", Style::Yellow),
            CellState::Done => ("done", Style::Green),
            CellState::Failed => ("FAIL", Style::Red),
        };
        // Digest-sized indices (serve cells) are identities, not grid
        // positions — a 20-digit number would wreck the columns.
        let idx = if cell.index < DashState::DENSE_INDEX_LIMIT {
            cell.index.to_string()
        } else {
            "-".into()
        };
        let line = format!(
            "{:>4} {:<key_w$} {:<7} {:>9} {:>10} {:>10} {:>5} {:>5}",
            idx,
            truncate(&cell.key, key_w),
            word,
            fmt_f64(cell.wall_s),
            fmt_f64(cell.edp),
            fmt_ps(cell.p99_ps),
            cell.faults_injected.map_or("-".into(), |v| v.to_string()),
            cell.mem_waited.map_or("-".into(), |v| v.to_string()),
        );
        let row_style = if first + row == state.selected {
            Style::Inverse
        } else {
            style
        };
        f.text(inner.x, inner.y + 1 + row, &line, row_style);
    }
}

fn detail_pane(f: &mut Frame, area: Rect, cell: &CellView) {
    let inner = border(f, area, &format!("cell {}", cell.index));
    let mut y = inner.y;
    let mut line = |f: &mut Frame, text: &str, style: Style| {
        if y < inner.y + inner.h {
            f.text(inner.x, y, text, style);
            y += 1;
        }
    };
    line(f, &format!("key      {}", cell.key), Style::Cyan);
    line(
        f,
        &format!(
            "host {}   started {}   finished {}   replayable {}",
            cell.host.as_deref().unwrap_or("-"),
            cell.started_unix_ms.map_or("-".into(), |v| v.to_string()),
            cell.finished_unix_ms.map_or("-".into(), |v| v.to_string()),
            if cell.has_spec { "yes" } else { "no" },
        ),
        Style::Plain,
    );
    let Some(r) = &cell.report else {
        line(f, "no report yet", Style::Dim);
        return;
    };
    line(
        f,
        &format!(
            "wall {}s   exec {}   energy {}J   edp {}",
            fmt_f64(cell.wall_s),
            fmt_ps(Some(r.exec_time.as_ps())),
            fmt_f64(r.energy.has_energy().then_some(r.energy.energy_j)),
            fmt_f64(cell.edp),
        ),
        Style::Plain,
    );
    line(
        f,
        &format!(
            "reconfig p50 {}  p90 {}  p99 {}   overhead {}  share {}",
            fmt_ps(Some(r.reconfig_latencies.quantile_of(0.50).as_ps())),
            fmt_ps(Some(r.reconfig_latencies.quantile_of(0.90).as_ps())),
            fmt_ps(Some(r.reconfig_latencies.quantile_of(0.99).as_ps())),
            fmt_ps(Some(r.reconfig_overhead.as_ps())),
            fmt_f64(Some(r.reconfig_time_share)),
        ),
        Style::Plain,
    );
    if let Some(s) = &r.service {
        line(
            f,
            &format!(
                "service  arrivals {}  completed {}  dropped {}  p50 {}  p99 {}",
                s.arrivals,
                s.completed,
                s.dropped,
                fmt_ps(Some(s.latency.quantile(0.50).as_ps())),
                fmt_ps(Some(s.latency.quantile(0.99).as_ps())),
            ),
            Style::Plain,
        );
    }
    if let Some(ft) = &r.fault {
        line(
            f,
            &format!(
                "faults   injected {}  displaced {}  reexecuted {}  capacity lost {}",
                ft.injected,
                ft.displaced,
                ft.reexecuted,
                fmt_ps(Some(ft.capacity_lost.as_ps())),
            ),
            Style::Plain,
        );
    }
    if let Some(m) = &r.memory {
        line(
            f,
            &format!(
                "memory   requests {}  waited {}  crit wait {}  arbitration {}",
                m.requests,
                m.waited,
                fmt_ps(Some(m.crit_wait.as_ps())),
                m.arbitration,
            ),
            Style::Plain,
        );
    }
    // Per-core utilization bars (the closure stops at the pane bottom).
    let max_bar = inner.w.saturating_sub(16).min(40);
    for (core, u) in r.core_utilization.iter().enumerate() {
        let u = u.clamp(0.0, 1.0);
        let filled = (u * max_bar as f64).round() as usize;
        let bar: String = "█".repeat(filled) + &"░".repeat(max_bar - filled);
        line(
            f,
            &format!("core {core:>2} {bar} {:>5.1}%", u * 100.0),
            Style::Plain,
        );
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ShardProgress, TrajPoint};

    fn seeded_state() -> DashState {
        let mut st = DashState::new();
        st.shards.insert(0, ShardProgress { done: 1, total: 2 });
        st.shards.insert(1, ShardProgress { done: 1, total: 2 });
        for (i, (key, state)) in [
            ("alpha@1/f1", CellState::Done),
            ("beta@1/f1", CellState::Running),
            ("gamma@1/f2", CellState::Pending),
            ("delta@1/f2", CellState::Failed),
        ]
        .into_iter()
        .enumerate()
        {
            let mut c = CellView::placeholder(i as u64);
            c.key = key.to_string();
            c.state = state;
            if state == CellState::Done {
                c.wall_s = Some(1.25);
                c.edp = Some(0.5);
                c.p99_ps = Some(123_456);
            }
            st.cells.insert(i as u64, c);
        }
        st.traj = vec![
            TrajPoint {
                host: None,
                unix_ms: None,
                events_per_sec: 100.0,
            },
            TrajPoint {
                host: None,
                unix_ms: None,
                events_per_sec: 140.0,
            },
        ];
        st
    }

    #[test]
    fn render_is_deterministic_and_contains_every_cell_key() {
        let st = seeded_state();
        let h = required_height(&st, 100);
        let a = render(&st, 100, h);
        let b = render(&st, 100, h);
        assert_eq!(a, b, "same state ⇒ identical frame");
        let text = a.to_text();
        for key in ["alpha@1/f1", "beta@1/f1", "gamma@1/f2", "delta@1/f2"] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        assert!(text.contains("2/4"), "gauge shows done/total:\n{text}");
        assert!(!text.contains("NaN") && !text.contains("inf"));
        assert!(text.contains('▶') && text.contains('█') && text.contains('✗'));
    }

    #[test]
    fn host_mix_refuses_the_sparkline() {
        let mut st = seeded_state();
        st.traj_hosts.insert("aaaa".into());
        st.traj_hosts.insert("bbbb".into());
        let text = render(&st, 100, required_height(&st, 100)).to_text();
        assert!(text.contains("refusing cross-host mix"), "{text}");
        assert!(text.contains("aaaa") && text.contains("bbbb"));
    }

    #[test]
    fn tiny_frames_render_without_panicking() {
        let st = seeded_state();
        for (w, h) in [(0, 0), (1, 1), (5, 3), (20, 5), (80, 10)] {
            let _ = render(&st, w, h);
        }
    }

    #[test]
    fn detail_pane_replaces_the_table() {
        let mut st = seeded_state();
        st.cells.get_mut(&0).unwrap().host = Some("cafe".into());
        st.selected = 0;
        st.show_detail = true;
        let text = render(&st, 100, 24).to_text();
        assert!(text.contains("cell 0"), "{text}");
        assert!(text.contains("host cafe"), "{text}");
        assert!(!text.contains("beta@1/f1"), "table hidden:\n{text}");
    }
}
