//! Reusable drawing primitives composed by the dashboard renderer.

use crate::frame::{Frame, Rect, Style};

/// Glyph + style for a grid cell that has not started.
pub const GLYPH_PENDING: (char, Style) = ('·', Style::Dim);
/// Glyph + style for a grid cell currently executing.
pub const GLYPH_RUNNING: (char, Style) = ('▶', Style::Yellow);
/// Glyph + style for a grid cell that finished successfully.
pub const GLYPH_DONE: (char, Style) = ('█', Style::Green);
/// Glyph + style for a grid cell whose attempt failed.
pub const GLYPH_FAILED: (char, Style) = ('✗', Style::Red);

/// Draws a single-line box around `area` with `title` set into the top
/// edge, returning the interior region.
pub fn border(f: &mut Frame, area: Rect, title: &str) -> Rect {
    if area.w < 2 || area.h < 2 {
        return area.inner();
    }
    let (x0, y0) = (area.x, area.y);
    let (x1, y1) = (area.x + area.w - 1, area.y + area.h - 1);
    f.put(x0, y0, '┌', Style::Dim);
    f.put(x1, y0, '┐', Style::Dim);
    f.put(x0, y1, '└', Style::Dim);
    f.put(x1, y1, '┘', Style::Dim);
    f.hfill(x0 + 1, y0, area.w - 2, '─', Style::Dim);
    f.hfill(x0 + 1, y1, area.w - 2, '─', Style::Dim);
    for y in (y0 + 1)..y1 {
        f.put(x0, y, '│', Style::Dim);
        f.put(x1, y, '│', Style::Dim);
    }
    if !title.is_empty() && area.w > 4 {
        let label = format!(" {title} ");
        f.text(x0 + 2, y0, &label, Style::Bold);
    }
    area.inner()
}

/// Draws a `[█████░░░░] done/total` completion gauge across `width`
/// columns starting at `(x, y)`.
pub fn gauge(f: &mut Frame, x: usize, y: usize, width: usize, done: u64, total: u64) {
    let label = format!(" {done}/{total}");
    let bar_w = width.saturating_sub(label.chars().count() + 2);
    if bar_w == 0 {
        f.text(x, y, label.trim_start(), Style::Bold);
        return;
    }
    let filled = if total == 0 {
        0
    } else {
        (done as usize * bar_w) / total as usize
    };
    f.put(x, y, '[', Style::Dim);
    f.hfill(x + 1, y, filled, '█', Style::Green);
    f.hfill(x + 1 + filled, y, bar_w - filled, '░', Style::Dim);
    f.put(x + 1 + bar_w, y, ']', Style::Dim);
    let style = if total > 0 && done == total {
        Style::Green
    } else {
        Style::Bold
    };
    f.text(x + bar_w + 2, y, &label, style);
}

/// Draws a unicode block sparkline of `values` scaled to their own
/// min..max, right-aligned into `width` columns at `(x, y)`. NaN or
/// non-finite samples are skipped. Returns the number of points drawn.
pub fn sparkline(f: &mut Frame, x: usize, y: usize, width: usize, values: &[f64]) -> usize {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() || width == 0 {
        return 0;
    }
    let shown = &finite[finite.len().saturating_sub(width)..];
    let lo = shown.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = shown.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let x0 = x + width - shown.len();
    for (i, v) in shown.iter().enumerate() {
        let idx = (((v - lo) / span) * 7.0).round() as usize;
        f.put(x0 + i, y, BLOCKS[idx.min(7)], Style::Cyan);
    }
    shown.len()
}

/// Formats a float for display: `-` for non-finite, trimmed precision
/// otherwise. Guarantees the frame never contains `NaN`/`inf` text.
pub fn fmt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => {
            if v == 0.0 {
                "0".into()
            } else if v.abs() >= 1000.0 {
                format!("{v:.0}")
            } else if v.abs() >= 1.0 {
                format!("{v:.3}")
            } else {
                format!("{v:.3e}")
            }
        }
        _ => "-".into(),
    }
}

/// Formats a picosecond duration as engineering-notation seconds.
pub fn fmt_ps(ps: Option<u64>) -> String {
    match ps {
        None => "-".into(),
        Some(ps) => {
            let s = ps as f64 * 1e-12;
            if s >= 1.0 {
                format!("{s:.3}s")
            } else if s >= 1e-3 {
                format!("{:.3}ms", s * 1e3)
            } else if s >= 1e-6 {
                format!("{:.3}us", s * 1e6)
            } else {
                format!("{ps}ps")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_full_and_empty() {
        let mut f = Frame::new(20, 1);
        gauge(&mut f, 0, 0, 20, 4, 4);
        let t = f.to_text();
        assert!(t.contains("4/4"), "{t}");
        assert!(t.contains('█'));
        assert!(!t.contains('░'), "full gauge has no empty run: {t}");

        let mut f = Frame::new(20, 1);
        gauge(&mut f, 0, 0, 20, 0, 4);
        let t = f.to_text();
        assert!(t.contains("0/4"), "{t}");
        assert!(!t.contains('█'));
    }

    #[test]
    fn sparkline_skips_non_finite_and_scales_to_range() {
        let mut f = Frame::new(8, 1);
        let n = sparkline(
            &mut f,
            0,
            0,
            8,
            &[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, 4.0],
        );
        assert_eq!(n, 4);
        let t = f.to_text();
        assert!(t.contains('▁') && t.contains('█'), "{t}");
        assert!(!t.contains("NaN") && !t.contains("inf"));
    }

    #[test]
    fn formatters_never_leak_nan_or_inf() {
        assert_eq!(fmt_f64(Some(f64::NAN)), "-");
        assert_eq!(fmt_f64(Some(f64::INFINITY)), "-");
        assert_eq!(fmt_f64(None), "-");
        assert_eq!(fmt_f64(Some(0.0)), "0");
        assert_eq!(fmt_ps(None), "-");
        assert_eq!(fmt_ps(Some(1_500_000_000)), "1.500ms");
    }

    #[test]
    fn border_returns_interior() {
        let mut f = Frame::new(10, 4);
        let inner = border(
            &mut f,
            Rect {
                x: 0,
                y: 0,
                w: 10,
                h: 4,
            },
            "T",
        );
        assert_eq!(
            inner,
            Rect {
                x: 1,
                y: 1,
                w: 8,
                h: 2
            }
        );
        assert!(f.to_text().contains(" T "));
    }
}
