//! Dashboard state: the merged view of stores, progress streams, and the
//! perf trajectory that the renderer projects into a frame.
//!
//! Ingestion is line-oriented and incremental — each `ingest_*` method
//! takes one JSONL line straight from a [`JsonlTail`] poll and folds it
//! into the state. Lines may arrive from several shards in any
//! interleaving; cells are keyed by their grid index, so replays and
//! cross-shard duplicates are idempotent. A line that fails to parse (or
//! carries the wrong schema tag) bumps [`DashState::parse_errors`]
//! instead of aborting: a dashboard must survive whatever a half-written
//! sidecar file throws at it.
//!
//! [`JsonlTail`]: cata_core::exp::JsonlTail

use std::collections::{BTreeMap, BTreeSet};

use cata_core::exp::{CellRecord, ProgressEvent, ProgressRecord, PROGRESS_SCHEMA, STORE_SCHEMA};
use cata_core::RunReport;
use serde::Value;

/// Schema tag of `repro perf --trajectory` lines. Duplicated from
/// `cata-bench` (which depends on this crate, so we cannot import it).
pub const TRAJECTORY_SCHEMA: &str = "cata-perf-point/v1";

/// Lifecycle of one grid cell as observed from the outside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Declared by the grid but not yet started.
    Pending,
    /// A `cell-start` heartbeat arrived, no finish yet.
    Running,
    /// Finished successfully (store record or `ok:true` heartbeat).
    Done,
    /// The attempt errored (`ok:false` heartbeat).
    Failed,
}

/// Everything the dashboard knows about one grid cell.
#[derive(Debug, Clone)]
pub struct CellView {
    /// Grid index (row-major position in the scenario grid).
    pub index: u64,
    /// Cell key (`name@scale/fN/...`), or the scenario name until the
    /// finished record supplies the full key.
    pub key: String,
    /// Observed lifecycle state.
    pub state: CellState,
    /// Wall-clock seconds of the finished attempt.
    pub wall_s: Option<f64>,
    /// Energy-delay product, when the run measured energy.
    pub edp: Option<f64>,
    /// p99 latency in picoseconds: response time for service cells,
    /// reconfiguration latency for closed-system cells.
    pub p99_ps: Option<u64>,
    /// Fault-injection events, when the run injected faults.
    pub faults_injected: Option<u64>,
    /// Memory-slot requests that had to wait, when memory was contended.
    pub mem_waited: Option<u64>,
    /// Host fingerprint the cell ran on.
    pub host: Option<String>,
    /// Wall-clock start stamp (ms since epoch).
    pub started_unix_ms: Option<u64>,
    /// Wall-clock finish stamp (ms since epoch).
    pub finished_unix_ms: Option<u64>,
    /// Whether the store record embeds a replayable [`ScenarioSpec`]
    /// (`repro replay` needs it).
    ///
    /// [`ScenarioSpec`]: cata_core::exp::ScenarioSpec
    pub has_spec: bool,
    /// The full report, for the detail pane.
    pub report: Option<RunReport>,
}

impl CellView {
    pub(crate) fn placeholder(index: u64) -> Self {
        CellView {
            index,
            key: format!("#{index}"),
            state: CellState::Pending,
            wall_s: None,
            edp: None,
            p99_ps: None,
            faults_injected: None,
            mem_waited: None,
            host: None,
            started_unix_ms: None,
            finished_unix_ms: None,
            has_spec: false,
            report: None,
        }
    }
}

/// Latest grid-completion heartbeat from one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardProgress {
    /// Cells no longer pending in this shard's slice.
    pub done: u64,
    /// Cells in this shard's slice.
    pub total: u64,
}

/// Latest service-mode snapshot (open-system runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceView {
    /// Arrivals consumed so far.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Graphs completed.
    pub completed: u64,
    /// Arrivals dropped at the door.
    pub dropped: u64,
    /// Graphs admitted but not yet complete.
    pub in_flight: u64,
    /// Running p99 response time, picoseconds.
    pub p99_ps: u64,
    /// Simulated time of the snapshot, picoseconds.
    pub sim_time_ps: u64,
}

/// One accepted perf-trajectory sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajPoint {
    /// Host fingerprint the point was measured on (absent on legacy
    /// lines predating provenance stamping).
    pub host: Option<String>,
    /// Wall-clock stamp of the measurement.
    pub unix_ms: Option<u64>,
    /// Mean events/sec across the point's workload summaries.
    pub events_per_sec: f64,
}

/// The merged, renderable view of a run in flight.
#[derive(Debug, Clone, Default)]
pub struct DashState {
    /// Cells by grid index (BTreeMap: the heatmap walks them in order).
    pub cells: BTreeMap<u64, CellView>,
    /// Latest completion heartbeat per shard.
    pub shards: BTreeMap<u64, ShardProgress>,
    /// Latest service snapshot, when an open-system run is streaming.
    pub service: Option<ServiceView>,
    /// Accepted trajectory samples, in file order.
    pub traj: Vec<TrajPoint>,
    /// Distinct host fingerprints seen across trajectory samples.
    pub traj_hosts: BTreeSet<String>,
    /// Lines that failed to parse or carried a foreign schema tag.
    pub parse_errors: u64,
    /// Cursor row in the cell table (index into `cells` iteration order).
    pub selected: usize,
    /// Whether the detail pane replaces the cell table.
    pub show_detail: bool,
}

impl DashState {
    /// A fresh, empty state.
    pub fn new() -> Self {
        DashState::default()
    }

    /// Folds one line of a results store (`cata-results/v1`) into the
    /// state. Store records are authoritative: they always mark the cell
    /// `Done` and supply the full report.
    pub fn ingest_store_line(&mut self, line: &str) {
        let rec: CellRecord = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(_) => {
                self.parse_errors += 1;
                return;
            }
        };
        if rec.schema != STORE_SCHEMA {
            self.parse_errors += 1;
            return;
        }
        let view = self
            .cells
            .entry(rec.index)
            .or_insert_with(|| CellView::placeholder(rec.index));
        view.key = rec.cell;
        view.state = CellState::Done;
        view.wall_s = Some(rec.wall_s);
        view.edp = rec
            .report
            .energy
            .has_energy()
            .then_some(rec.report.energy.edp);
        view.p99_ps = Some(match &rec.report.service {
            Some(s) => s.latency.quantile(0.99).as_ps(),
            None => rec.report.reconfig_latencies.quantile_of(0.99).as_ps(),
        });
        view.faults_injected = rec.report.fault.as_ref().map(|f| f.injected);
        view.mem_waited = rec.report.memory.as_ref().map(|m| m.waited);
        view.host = rec.host;
        view.started_unix_ms = rec.started_unix_ms;
        view.finished_unix_ms = rec.finished_unix_ms;
        view.has_spec = rec.spec.is_some();
        view.report = Some(rec.report);
    }

    /// Folds one heartbeat line (`cata-progress/v1`) into the state.
    /// Heartbeats never downgrade a cell a store record already finished.
    pub fn ingest_progress_line(&mut self, line: &str) {
        let rec: ProgressRecord = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(_) => {
                self.parse_errors += 1;
                return;
            }
        };
        if rec.schema != PROGRESS_SCHEMA {
            self.parse_errors += 1;
            return;
        }
        match rec.event {
            ProgressEvent::CellStart { index, name, .. } => {
                let view = self
                    .cells
                    .entry(index)
                    .or_insert_with(|| CellView::placeholder(index));
                if view.state == CellState::Pending {
                    view.state = CellState::Running;
                    view.key = name;
                    view.started_unix_ms = Some(rec.unix_ms);
                }
            }
            ProgressEvent::CellFinish {
                index,
                cell,
                ok,
                wall_s,
            } => {
                let view = self
                    .cells
                    .entry(index)
                    .or_insert_with(|| CellView::placeholder(index));
                if view.state != CellState::Done {
                    view.state = if ok {
                        CellState::Done
                    } else {
                        CellState::Failed
                    };
                    view.key = cell;
                    view.wall_s = Some(wall_s);
                    view.finished_unix_ms = Some(rec.unix_ms);
                }
            }
            ProgressEvent::GridProgress { done, total } => {
                self.shards.insert(rec.shard, ShardProgress { done, total });
            }
            ProgressEvent::ServiceSnapshot {
                arrivals,
                admitted,
                completed,
                dropped,
                in_flight,
                p99_ps,
                sim_time_ps,
            } => {
                let snap = ServiceView {
                    arrivals,
                    admitted,
                    completed,
                    dropped,
                    in_flight,
                    p99_ps,
                    sim_time_ps,
                };
                // Keep the furthest-along snapshot: streams may replay
                // from offset 0 after truncation.
                if self
                    .service
                    .is_none_or(|s| snap.sim_time_ps >= s.sim_time_ps)
                {
                    self.service = Some(snap);
                }
            }
        }
    }

    /// Folds one `repro perf --trajectory` line into the sparkline
    /// series. The events/sec value is the mean across the point's
    /// workload summaries.
    pub fn ingest_trajectory_line(&mut self, line: &str) {
        let v: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(_) => {
                self.parse_errors += 1;
                return;
            }
        };
        if v.get("schema").and_then(value_str) != Some(TRAJECTORY_SCHEMA.to_string()) {
            self.parse_errors += 1;
            return;
        }
        let rates: Vec<f64> = match v.get("summaries") {
            Some(Value::Seq(s)) => s
                .iter()
                .filter_map(|s| s.get("events_per_sec").and_then(value_f64))
                .collect(),
            _ => Vec::new(),
        };
        if rates.is_empty() {
            self.parse_errors += 1;
            return;
        }
        let host = v.get("host").and_then(value_str);
        if let Some(h) = &host {
            self.traj_hosts.insert(h.clone());
        }
        self.traj.push(TrajPoint {
            host,
            unix_ms: v.get("unix_ms").and_then(value_u64),
            events_per_sec: rates.iter().sum::<f64>() / rates.len() as f64,
        });
    }

    /// Whether the trajectory mixes measurements from ≥ 2 distinct
    /// hosts — the sparkline refuses to draw such a series (cross-host
    /// events/sec comparisons are meaningless).
    pub fn traj_host_mixed(&self) -> bool {
        self.traj_hosts.len() >= 2
    }

    /// Indices below this are dense grid positions (suite grids are
    /// small); records with larger indices — `serve` cells, whose index
    /// is the spec digest reinterpreted — are *appended* after the dense
    /// region instead of inflating the heatmap to digest size.
    pub const DENSE_INDEX_LIMIT: u64 = 1 << 20;

    /// Total cells: the larger of the shard-declared sum and the highest
    /// dense index + 1 (heartbeats may outrun grid declarations), plus
    /// any sparse (digest-indexed) cells.
    pub fn grid_total(&self) -> u64 {
        let declared: u64 = self.shards.values().map(|s| s.total).sum();
        let dense = self
            .cells
            .keys()
            .take_while(|&&i| i < Self::DENSE_INDEX_LIMIT)
            .last()
            .map_or(0, |i| i + 1);
        let sparse = self.sparse_cells().count() as u64;
        declared.max(dense) + sparse
    }

    /// The cells beyond the dense region, in index order.
    fn sparse_cells(&self) -> impl Iterator<Item = &CellView> {
        self.cells.range(Self::DENSE_INDEX_LIMIT..).map(|(_, c)| c)
    }

    /// The lifecycle state of each heatmap slot, in display order: the
    /// dense grid first (`None` = not yet observed), then the sparse
    /// cells. Length equals [`grid_total`](Self::grid_total) — bounded
    /// by declared totals and record counts, never by raw index values.
    pub fn heat_slots(&self) -> Vec<Option<CellState>> {
        let declared: u64 = self.shards.values().map(|s| s.total).sum();
        let dense_len = self
            .cells
            .keys()
            .take_while(|&&i| i < Self::DENSE_INDEX_LIMIT)
            .last()
            .map_or(0, |i| i + 1)
            .max(declared);
        let mut slots: Vec<Option<CellState>> = (0..dense_len)
            .map(|i| self.cells.get(&i).map(|c| c.state))
            .collect();
        slots.extend(self.sparse_cells().map(|c| Some(c.state)));
        slots
    }

    /// Cells no longer pending, per the latest shard heartbeats; falls
    /// back to counting finished cells when no heartbeats exist (store
    /// only).
    pub fn grid_done(&self) -> u64 {
        if self.shards.is_empty() {
            self.cells
                .values()
                .filter(|c| matches!(c.state, CellState::Done | CellState::Failed))
                .count() as u64
        } else {
            self.shards.values().map(|s| s.done).sum()
        }
    }

    /// Whether every declared cell has finished.
    pub fn complete(&self) -> bool {
        let total = self.grid_total();
        total > 0 && self.grid_done() >= total
    }

    /// The currently selected cell, if any.
    pub fn selected_cell(&self) -> Option<&CellView> {
        self.cells.values().nth(self.selected)
    }

    /// Moves the table cursor by `delta` rows, clamped to the table.
    pub fn move_selection(&mut self, delta: isize) {
        let n = self.cells.len();
        if n == 0 {
            self.selected = 0;
            return;
        }
        let cur = self.selected.min(n - 1) as isize;
        self.selected = (cur + delta).clamp(0, n as isize - 1) as usize;
    }
}

fn value_str(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

fn value_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(f) => Some(*f),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_core::exp::{now_unix_ms, ProgressWriter};

    fn progress_lines(shard: u64, events: Vec<ProgressEvent>) -> Vec<String> {
        // Round-trip through a real writer so tests exercise the exact
        // on-disk shape.
        let dir =
            std::env::temp_dir().join(format!("cata-obs-state-{shard}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.progress.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = ProgressWriter::open(&path, shard).unwrap();
        for e in events {
            w.emit(e).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        text.lines().map(|l| l.to_string()).collect()
    }

    #[test]
    fn interleaved_multi_shard_heartbeats_merge_into_one_grid() {
        let shard0 = progress_lines(
            0,
            vec![
                ProgressEvent::GridProgress { done: 0, total: 2 },
                ProgressEvent::CellStart {
                    index: 0,
                    name: "a".into(),
                    spec_digest: "d0".into(),
                },
                ProgressEvent::CellFinish {
                    index: 0,
                    cell: "a@1/f1".into(),
                    ok: true,
                    wall_s: 0.5,
                },
                ProgressEvent::GridProgress { done: 1, total: 2 },
            ],
        );
        let shard1 = progress_lines(
            1,
            vec![
                ProgressEvent::GridProgress { done: 0, total: 2 },
                ProgressEvent::CellStart {
                    index: 1,
                    name: "b".into(),
                    spec_digest: "d1".into(),
                },
                ProgressEvent::CellFinish {
                    index: 1,
                    cell: "b@1/f1".into(),
                    ok: false,
                    wall_s: 0.1,
                },
                ProgressEvent::GridProgress { done: 1, total: 2 },
            ],
        );

        // Interleave the shards line by line — arrival order must not
        // matter for the merged result.
        let mut st = DashState::new();
        for (a, b) in shard0.iter().zip(shard1.iter()) {
            st.ingest_progress_line(a);
            st.ingest_progress_line(b);
        }

        assert_eq!(st.grid_total(), 4, "2 shards × total 2");
        assert_eq!(st.grid_done(), 2);
        assert!(!st.complete());
        assert_eq!(st.cells[&0].state, CellState::Done);
        assert_eq!(st.cells[&0].key, "a@1/f1");
        assert_eq!(st.cells[&1].state, CellState::Failed);
        assert_eq!(st.parse_errors, 0);

        // Reversed interleaving lands in the identical cell states.
        let mut rev = DashState::new();
        for (a, b) in shard0.iter().zip(shard1.iter()) {
            rev.ingest_progress_line(b);
            rev.ingest_progress_line(a);
        }
        assert_eq!(rev.grid_done(), st.grid_done());
        assert_eq!(rev.cells[&0].state, st.cells[&0].state);
        assert_eq!(rev.cells[&1].state, st.cells[&1].state);
    }

    #[test]
    fn start_marks_running_and_finish_is_idempotent() {
        let lines = progress_lines(
            0,
            vec![ProgressEvent::CellStart {
                index: 3,
                name: "c".into(),
                spec_digest: "d".into(),
            }],
        );
        let mut st = DashState::new();
        st.ingest_progress_line(&lines[0]);
        assert_eq!(st.cells[&3].state, CellState::Running);
        assert_eq!(st.cells[&3].key, "c");
        // A duplicate start (resumed writer re-tailed from 0) is a no-op.
        st.ingest_progress_line(&lines[0]);
        assert_eq!(st.cells[&3].state, CellState::Running);
        assert_eq!(st.grid_total(), 4, "highest index + 1");
    }

    #[test]
    fn garbage_and_foreign_schema_lines_count_as_parse_errors() {
        let mut st = DashState::new();
        st.ingest_progress_line("{not json");
        st.ingest_progress_line(
            r#"{"schema":"other/v9","shard":0,"unix_ms":1,"kind":"grid","done":1,"total":1}"#,
        );
        st.ingest_store_line("also not json");
        st.ingest_trajectory_line(r#"{"schema":"wrong"}"#);
        assert_eq!(st.parse_errors, 4);
        assert!(st.cells.is_empty());
    }

    #[test]
    fn service_snapshots_keep_the_furthest_along() {
        let lines = progress_lines(
            0,
            vec![
                ProgressEvent::ServiceSnapshot {
                    arrivals: 64,
                    admitted: 60,
                    completed: 50,
                    dropped: 4,
                    in_flight: 10,
                    p99_ps: 1000,
                    sim_time_ps: 5000,
                },
                ProgressEvent::ServiceSnapshot {
                    arrivals: 128,
                    admitted: 120,
                    completed: 118,
                    dropped: 8,
                    in_flight: 2,
                    p99_ps: 1200,
                    sim_time_ps: 9000,
                },
            ],
        );
        let mut st = DashState::new();
        // Out of order: the later snapshot must win regardless.
        st.ingest_progress_line(&lines[1]);
        st.ingest_progress_line(&lines[0]);
        let s = st.service.unwrap();
        assert_eq!(s.arrivals, 128);
        assert_eq!(s.sim_time_ps, 9000);
    }

    #[test]
    fn trajectory_lines_accept_legacy_and_detect_host_mixes() {
        let mut st = DashState::new();
        // Legacy line: no host/unix_ms.
        st.ingest_trajectory_line(
            r#"{"schema":"cata-perf-point/v1","mode":"events","reps":3,"summaries":[{"workload":"w","events":10,"wall_s":1.0,"events_per_sec":100.0}],"speedup_vs_baseline":null}"#,
        );
        assert_eq!(st.traj.len(), 1);
        assert!(!st.traj_host_mixed());
        // Two stamped lines from different hosts.
        st.ingest_trajectory_line(
            r#"{"schema":"cata-perf-point/v1","mode":"events","reps":3,"summaries":[{"workload":"w","events":10,"wall_s":1.0,"events_per_sec":110.0}],"speedup_vs_baseline":null,"host":"aaaa","unix_ms":1}"#,
        );
        assert!(!st.traj_host_mixed(), "one known host is fine");
        st.ingest_trajectory_line(
            r#"{"schema":"cata-perf-point/v1","mode":"events","reps":3,"summaries":[{"workload":"w","events":10,"wall_s":1.0,"events_per_sec":120.0}],"speedup_vs_baseline":null,"host":"bbbb","unix_ms":2}"#,
        );
        assert!(st.traj_host_mixed());
        assert_eq!(st.traj.len(), 3);
        assert_eq!(st.parse_errors, 0);
        assert_eq!(st.traj[0].events_per_sec, 100.0);
    }

    #[test]
    fn digest_sized_indices_append_instead_of_inflating_the_grid() {
        // `serve` cells carry their spec digest reinterpreted as the
        // index — astronomically larger than any dense grid. The heatmap
        // must stay record-sized, not digest-sized.
        let mut st = DashState::new();
        let mut serve = CellView::placeholder(u64::MAX - 3);
        serve.key = "CATA@Dedup/f16/serve".into();
        serve.state = CellState::Done;
        st.cells.insert(serve.index, serve);
        let mut dense = CellView::placeholder(1);
        dense.state = CellState::Running;
        st.cells.insert(1, dense);

        assert_eq!(st.grid_total(), 3, "dense 0..=1 plus one sparse cell");
        let slots = st.heat_slots();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0], None, "index 0 unobserved");
        assert_eq!(slots[1], Some(CellState::Running));
        assert_eq!(slots[2], Some(CellState::Done), "sparse cell appended");
        assert!(!st.complete());
    }

    #[test]
    fn selection_clamps_to_table() {
        let mut st = DashState::new();
        st.move_selection(5);
        assert_eq!(st.selected, 0);
        let lines = progress_lines(
            0,
            vec![
                ProgressEvent::CellStart {
                    index: 0,
                    name: "a".into(),
                    spec_digest: "d".into(),
                },
                ProgressEvent::CellStart {
                    index: 1,
                    name: "b".into(),
                    spec_digest: "d".into(),
                },
            ],
        );
        for l in &lines {
            st.ingest_progress_line(l);
        }
        st.move_selection(10);
        assert_eq!(st.selected, 1);
        st.move_selection(-10);
        assert_eq!(st.selected, 0);
        let _ = now_unix_ms();
    }
}
